//! Offline stand-in for the `criterion` crate: a plain timing harness
//! with criterion's API shape. Each benchmark is warmed up, then timed
//! over enough iterations to fill a short measurement window; mean and
//! median per-iteration times are printed. No statistical analysis,
//! plots, or saved baselines — see `compat/README.md`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (ignored by the stub's timer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    measurement_window: Duration,
}

/// Floor on measured samples per bench, applied even when a single
/// iteration exceeds the measurement window (see [`Bencher::iter`]).
const MIN_SAMPLES: usize = 3;

impl Bencher {
    fn new(measurement_window: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            measurement_window,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: how many iterations fit the window?
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.measurement_window / 4 || warm_iters < 3 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // At least MIN_SAMPLES even when one iteration overruns the
        // window: a single-sample "mean" of a multi-hundred-ms bench is
        // pure noise, and the baseline checker compares means.
        let deadline = Instant::now() + self.measurement_window;
        while Instant::now() < deadline || self.samples.len() < MIN_SAMPLES {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup.
        for _ in 0..3 {
            black_box(routine(setup()));
        }
        let deadline = Instant::now() + self.measurement_window;
        while Instant::now() < deadline || self.samples.len() < MIN_SAMPLES {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 1_000_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        let median = sorted[sorted.len() / 2];
        println!(
            "{name:<50} mean {:>12?}  median {:>12?}  ({} iters)",
            mean,
            median,
            sorted.len()
        );
        append_json_record(name, mean, median, sorted.len());
    }
}

/// When `$MMSEC_BENCH_JSON` names a file, every reported benchmark also
/// appends one JSON line `{"name","mean_ns","median_ns","iters"}` to it —
/// the machine-readable feed of `cargo xtask bench-baseline` /
/// `bench-check` (the CI regression gate).
fn append_json_record(name: &str, mean: Duration, median: Duration, iters: usize) {
    let Ok(path) = std::env::var("MMSEC_BENCH_JSON") else {
        return;
    };
    let line = format!(
        "{{\"name\":\"{}\",\"mean_ns\":{},\"median_ns\":{},\"iters\":{}}}\n",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        mean.as_nanos(),
        median.as_nanos(),
        iters
    );
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = result {
        eprintln!("warning: cannot append to MMSEC_BENCH_JSON={path}: {e}");
    }
}

/// Benchmark registry/driver (stub of `criterion::Criterion`).
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let millis = std::env::var("MMSEC_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            measurement_window: Duration::from_millis(millis),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !selected(name) {
            return self;
        }
        let mut b = Bencher::new(self.measurement_window);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }
}

/// Group of related benchmarks (stub of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint (accepted, ignored — the stub times a window).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-window override.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.measurement_window = window;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        if selected(&full) {
            let mut b = Bencher::new(self.criterion.measurement_window);
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        if selected(&full) {
            let mut b = Bencher::new(self.criterion.measurement_window);
            f(&mut b, input);
            b.report(&full);
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Substring filter from the command line (`cargo bench -- <filter>`),
/// mirroring criterion's filtering.
fn selected(name: &str) -> bool {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filters: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with('-') && !a.is_empty())
        .collect();
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion {
            measurement_window: Duration::from_millis(5),
        }
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = tiny();
        c.bench_function("compat/noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn json_records_append_as_one_line_per_bench() {
        let path = std::env::temp_dir().join(format!("mmsec-bench-json-{}", std::process::id()));
        std::fs::remove_file(&path).ok();
        // The env var is process-global: set, run, unset within one test
        // (the compat crate's tests run single-threaded per process here,
        // and no other test reads this variable).
        std::env::set_var("MMSEC_BENCH_JSON", &path);
        let mut c = tiny();
        c.bench_function("compat/json-a", |b| b.iter(|| 1 + 1));
        c.bench_function("compat/json-b", |b| b.iter(|| 2 + 2));
        std::env::remove_var("MMSEC_BENCH_JSON");
        let text = std::fs::read_to_string(&path).expect("json lines written");
        std::fs::remove_file(&path).ok();
        // Other tests running concurrently in this process may also report
        // while the env var is set; only count our own records.
        let lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"name\":\"compat/json-"))
            .collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"name\":\"compat/json-a\""), "{text}");
        assert!(lines[0].contains("\"mean_ns\":"), "{text}");
        assert!(lines[1].contains("\"median_ns\":"), "{text}");
    }

    #[test]
    fn groups_and_batched_iter_run() {
        let mut c = tiny();
        let mut group = c.benchmark_group("compat");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![n; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
