//! Offline stand-in for the `proptest` crate: random-input property
//! testing with the same surface syntax (`proptest!`, strategies,
//! `prop_assert*`, `prop_assume`) but **no shrinking** — a failing case
//! reports the panic message only. Cases are generated from a seed
//! derived from the test name, so failures are reproducible.
//!
//! See `compat/README.md` for why this exists.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used by the runner (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from a test name (stable across runs — reproducible).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Outcome of one generated test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it does not count.
    Reject(String),
    /// The property failed.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (filtered input) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// Runner configuration (only `cases` is honored).
///
/// The `PROPTEST_CASES` environment variable, when set to a positive
/// integer, overrides the case count — including explicit
/// [`ProptestConfig::with_cases`] values — so CI can raise coverage of
/// selected property tests (e.g. the engine equivalence suites) without
/// code changes.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

/// `PROPTEST_CASES` parsed as a positive case count, if set and valid.
fn env_cases() -> Option<u32> {
    let cases: u32 = std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()?;
    (cases > 0).then_some(cases)
}

impl ProptestConfig {
    /// Config running `cases` cases (unless `PROPTEST_CASES` overrides it).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(128),
        }
    }
}

/// A generator of random values (mirrors `proptest::strategy::Strategy`;
/// generation only, no value tree / shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + (self.end - self.start) * rng.next_f64();
        v.min(self.end - (self.end - self.start) * f64::EPSILON)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Constant strategy (mirrors `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);

/// Whole-domain strategies (mirrors `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A type-erased value generator, as produced by [`boxed_gen`].
pub type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Weighted choice between strategies of a common value type (the
/// expansion target of [`prop_oneof!`]; mirrors
/// `proptest::strategy::Union`, generation only).
pub struct Union<V> {
    variants: Vec<(u32, BoxedGen<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    /// Builds the union; weights must not all be zero.
    pub fn new(variants: Vec<(u32, BoxedGen<V>)>) -> Self {
        let total_weight = variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union {
            variants,
            total_weight,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, gen) in &self.variants {
            let weight = *weight as u64;
            if pick < weight {
                return gen(rng);
            }
            pick -= weight;
        }
        unreachable!("pick below total weight")
    }
}

/// Type-erases a strategy into a boxed generator (the [`prop_oneof!`]
/// building block; keeps the union's value type inferred from its arms).
pub fn boxed_gen<S: Strategy + 'static>(strat: S) -> BoxedGen<S::Value> {
    Box::new(move |rng| strat.generate(rng))
}

/// Chooses between strategies, optionally weighted (`w => strategy`).
/// All arms must generate the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((($weight) as u32, $crate::boxed_gen($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Bounds on a generated collection's size.
    pub trait SizeRange {
        /// Draws a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `sizes`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        element: S,
        sizes: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.sizes.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, sizes)` — the usual collection constructor.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, sizes: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, sizes }
    }
}

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    /// Path alias so `prop::collection::vec` resolves as with the real
    /// crate's prelude.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) {…} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(<$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    ::std::module_path!(), "::", stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "too many rejected inputs in {} ({} attempts for {} cases)",
                        stringify!($name), attempts, config.cases
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        #[allow(unreachable_code)]
                        {
                            $body
                            ::std::result::Result::Ok(())
                        }
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {}/{} of {} failed: {}",
                                passed + 1, config.cases, stringify!($name), msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Property assertion: fails the current case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Filters the current case out (does not count towards `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_and_assume_work(x in (0usize..100).prop_map(|v| v * 2)) {
            prop_assume!(x != 4);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 4);
        }

        #[test]
        fn oneof_draws_from_every_arm(x in prop_oneof![0u64..10, 20u64..30]) {
            prop_assert!(x < 10 || (20..30).contains(&x));
        }
    }

    #[test]
    fn weighted_oneof_respects_zero_weight() {
        let strat = prop_oneof![0 => Just(1u64), 3 => Just(2u64)];
        let mut rng = crate::TestRng::deterministic("weighted_oneof");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng), 2u64, "zero-weight arm drawn");
        }
    }

    #[test]
    fn unweighted_oneof_eventually_draws_each_arm() {
        let strat = prop_oneof![Just(0u64), Just(1u64), Just(2u64)];
        let mut rng = crate::TestRng::deterministic("oneof_coverage");
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
