//! Offline stand-in for the `rand` crate: the API subset this workspace
//! uses, backed by xoshiro256++ (Blackman & Vigna) seeded via SplitMix64.
//!
//! The generated *stream differs* from the real `rand::rngs::StdRng`
//! (ChaCha12); everything that matters here — per-seed determinism,
//! uniformity good enough for simulation workloads — is preserved.
//! See `compat/README.md`.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing extension methods (mirrors `rand::Rng`; like the real
/// trait, not object-safe — use `dyn RngCore` instead).
pub trait Rng: RngCore {
    /// A value sampled from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution (mirrors
/// `rand::distributions::Standard`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`] (mirrors `rand::distributions::
/// uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value uniform over `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let unit = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        let unit = f32::sample_standard(rng);
        let v = self.start + (self.end - self.start) * unit;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Uniform integer in `[0, bound)` by 128-bit widening multiply (bias is
/// at most 2⁻⁶⁴, irrelevant here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty integer range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step — used to expand the seed into the xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++ — the stub's engine for both [`StdRng`] and
    /// [`SmallRng`]. NOT the real rand engines; see `compat/README.md`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut seed);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }

    /// Alias of [`StdRng`] (the real crate uses a smaller engine; the stub
    /// does not distinguish).
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_usable_through_reference() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(2);
        let v = sample(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
