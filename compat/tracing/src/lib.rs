//! Offline no-op stand-in for the `tracing` crate. The `mmsec-obs`
//! `tracing` feature compiles against this; the macros accept the real
//! crate's syntax subset used by the workspace and discard everything.
//! Replace the path in the root `Cargo.toml` with the real `tracing` to
//! forward spans/events to actual subscribers. See `compat/README.md`.

#![warn(missing_docs)]

/// Verbosity levels (mirrors `tracing::Level`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Level(&'static str);

impl Level {
    /// TRACE level.
    pub const TRACE: Level = Level("TRACE");
    /// DEBUG level.
    pub const DEBUG: Level = Level("DEBUG");
    /// INFO level.
    pub const INFO: Level = Level("INFO");
    /// WARN level.
    pub const WARN: Level = Level("WARN");
    /// ERROR level.
    pub const ERROR: Level = Level("ERROR");
}

/// A no-op span handle (mirrors `tracing::Span`).
#[derive(Clone, Debug, Default)]
pub struct Span;

impl Span {
    /// A span that records nothing.
    pub fn none() -> Span {
        Span
    }

    /// Enters the span; the guard is inert.
    pub fn enter(&self) -> Entered<'_> {
        Entered(std::marker::PhantomData)
    }
}

/// Inert guard returned by [`Span::enter`].
pub struct Entered<'a>(std::marker::PhantomData<&'a ()>);

/// No-op event macro: accepts `event!(Level::…, fmt…)` and field syntax.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $($rest:tt)*) => {{
        let _ = $lvl;
    }};
}

/// No-op span macro: returns a [`Span`].
#[macro_export]
macro_rules! span {
    ($lvl:expr, $($rest:tt)*) => {{
        let _ = $lvl;
        $crate::Span::none()
    }};
}

/// No-op `trace!`/`debug!`/`info!`/`warn!`/`error!` shorthands.
#[macro_export]
macro_rules! trace {
    ($($rest:tt)*) => {{}};
}
/// See [`trace!`].
#[macro_export]
macro_rules! debug {
    ($($rest:tt)*) => {{}};
}
/// See [`trace!`].
#[macro_export]
macro_rules! info {
    ($($rest:tt)*) => {{}};
}
/// See [`trace!`].
#[macro_export]
macro_rules! warn {
    ($($rest:tt)*) => {{}};
}
/// See [`trace!`].
#[macro_export]
macro_rules! error {
    ($($rest:tt)*) => {{}};
}

/// No-op `trace_span!`-style shorthands returning [`Span`].
#[macro_export]
macro_rules! trace_span {
    ($($rest:tt)*) => {
        $crate::Span::none()
    };
}
/// See [`trace_span!`].
#[macro_export]
macro_rules! debug_span {
    ($($rest:tt)*) => {
        $crate::Span::none()
    };
}
/// See [`trace_span!`].
#[macro_export]
macro_rules! info_span {
    ($($rest:tt)*) => {
        $crate::Span::none()
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_expand() {
        let span = crate::info_span!("decide", events = 3);
        let _guard = span.enter();
        crate::event!(crate::Level::INFO, "hello {}", 1);
        crate::trace!("x");
        crate::debug!("x");
        crate::info!("x");
        crate::error!("x");
    }
}
