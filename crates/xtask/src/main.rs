//! Repo automation tasks (`cargo xtask <task>`), following the
//! cargo-xtask convention: plain Rust instead of shell scripts, so the
//! same commands run identically on developer machines and in CI.
//!
//! Tasks:
//!
//! - `bench-baseline` — run the `micro` benchmark suite with the JSONL
//!   feed enabled (`MMSEC_BENCH_JSON`) and write the measured means to
//!   `BENCH_BASELINE.json` at the repo root. Commit the file to move
//!   the reference point.
//! - `bench-check` — re-run the same suite and compare each mean
//!   against the committed baseline. Fails (exit 1) when any benchmark
//!   regressed by more than the tolerance (default 25%). Writes a
//!   markdown report for CI artifact upload, and appends it to
//!   `$GITHUB_STEP_SUMMARY` when set so the delta table shows up on the
//!   GitHub Actions job summary page.
//!
//! Both tasks accept `--window-ms N` (per-bench measurement window,
//! default 150 — the "quick" profile used by the CI smoke gate; use a
//! larger window for a quieter baseline) and `--json PATH` to keep the
//! raw JSONL feed. `bench-check` additionally accepts
//! `--tolerance FRAC` (e.g. `0.25`) and `--report PATH`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

const BASELINE_FILE: &str = "BENCH_BASELINE.json";
const DEFAULT_WINDOW_MS: u64 = 150;
const DEFAULT_TOLERANCE: f64 = 0.25;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(task) = args.first() else {
        eprintln!("usage: cargo xtask <bench-baseline|bench-check> [options]");
        return ExitCode::from(2);
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match task.as_str() {
        "bench-baseline" => bench_baseline(&opts),
        "bench-check" => bench_check(&opts),
        other => {
            eprintln!("unknown task `{other}`; tasks: bench-baseline, bench-check");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    window_ms: u64,
    tolerance: f64,
    json: Option<PathBuf>,
    report: Option<PathBuf>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options {
            window_ms: DEFAULT_WINDOW_MS,
            tolerance: DEFAULT_TOLERANCE,
            json: None,
            report: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--window-ms" => {
                    opts.window_ms = value("--window-ms")?
                        .parse()
                        .map_err(|e| format!("--window-ms: {e}"))?
                }
                "--tolerance" => {
                    opts.tolerance = value("--tolerance")?
                        .parse()
                        .map_err(|e| format!("--tolerance: {e}"))?;
                    if !(opts.tolerance.is_finite() && opts.tolerance > 0.0) {
                        return Err("--tolerance must be positive".into());
                    }
                }
                "--json" => opts.json = Some(PathBuf::from(value("--json")?)),
                "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").exists() && p.join("crates").is_dir())
        .expect("workspace root above crates/xtask")
        .to_path_buf()
}

/// Runs `cargo bench -p mmsec-bench --bench micro` with the JSONL feed
/// enabled and returns the measured mean (ns) per benchmark name.
fn run_micro_suite(root: &Path, opts: &Options) -> Result<BTreeMap<String, u64>, String> {
    let json_path = opts
        .json
        .clone()
        .unwrap_or_else(|| root.join("target").join("bench-smoke.jsonl"));
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::remove_file(&json_path).ok();

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    eprintln!(
        "running micro benches (window {} ms) -> {}",
        opts.window_ms,
        json_path.display()
    );
    let status = Command::new(cargo)
        .args(["bench", "-p", "mmsec-bench", "--bench", "micro"])
        .current_dir(root)
        .env("MMSEC_BENCH_JSON", &json_path)
        .env("MMSEC_BENCH_WINDOW_MS", opts.window_ms.to_string())
        .status()
        .map_err(|e| format!("spawning cargo bench: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench failed: {status}"));
    }
    let text = std::fs::read_to_string(&json_path)
        .map_err(|e| format!("reading {}: {e}", json_path.display()))?;
    let means = parse_jsonl(&text);
    if means.is_empty() {
        return Err("benchmark run produced no JSONL records".into());
    }
    Ok(means)
}

/// Extracts `name -> mean_ns` from the compat-criterion JSONL feed.
/// Hand-rolled (no serde in this workspace); tolerant of unknown keys.
fn parse_jsonl(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let Some(mean) = extract_u64(line, "mean_ns") else {
            continue;
        };
        out.insert(name, mean);
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let mut value = String::new();
    let mut chars = rest.chars();
    while let Some(ch) = chars.next() {
        match ch {
            '"' => return Some(value),
            '\\' => value.push(chars.next()?),
            other => value.push(other),
        }
    }
    None
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn write_baseline(
    path: &Path,
    window_ms: u64,
    means: &BTreeMap<String, u64>,
) -> std::io::Result<()> {
    let mut text = String::from("{\n");
    text.push_str("  \"schema\": \"mmsec-bench-baseline/1\",\n");
    text.push_str(&format!("  \"window_ms\": {window_ms},\n"));
    text.push_str("  \"benches\": {\n");
    let last = means.len().saturating_sub(1);
    for (i, (name, mean)) in means.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        text.push_str(&format!("    \"{name}\": {mean}{comma}\n"));
    }
    text.push_str("  }\n}\n");
    std::fs::write(path, text)
}

/// Parses the committed baseline file back into `name -> mean_ns`.
fn parse_baseline(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        // Entries look like `"micro/foo": 1234`; skip schema/window keys.
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "schema" || key == "window_ms" || key == "benches" {
            continue;
        }
        if let Ok(mean) = value.trim().parse::<u64>() {
            out.insert(key.to_string(), mean);
        }
    }
    out
}

fn bench_baseline(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    let means = run_micro_suite(&root, opts)?;
    let path = root.join(BASELINE_FILE);
    write_baseline(&path, opts.window_ms, &means).map_err(|e| format!("writing baseline: {e}"))?;
    println!("wrote {} ({} benches)", path.display(), means.len());
    Ok(true)
}

struct Row {
    name: String,
    baseline_ns: u64,
    current_ns: u64,
    ratio: f64,
    regressed: bool,
}

/// Compares a fresh run against the baseline. Returns the per-bench
/// rows plus names present in only one of the two sets.
fn compare(
    baseline: &BTreeMap<String, u64>,
    current: &BTreeMap<String, u64>,
    tolerance: f64,
) -> (Vec<Row>, Vec<String>, Vec<String>) {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (name, &base) in baseline {
        match current.get(name) {
            Some(&cur) => {
                let ratio = cur as f64 / base.max(1) as f64;
                rows.push(Row {
                    name: name.clone(),
                    baseline_ns: base,
                    current_ns: cur,
                    ratio,
                    regressed: ratio > 1.0 + tolerance,
                });
            }
            None => missing.push(name.clone()),
        }
    }
    let new: Vec<String> = current
        .keys()
        .filter(|n| !baseline.contains_key(*n))
        .cloned()
        .collect();
    (rows, missing, new)
}

fn render_report(
    rows: &[Row],
    missing: &[String],
    new: &[String],
    tolerance: f64,
) -> (String, bool) {
    let regressions: Vec<&Row> = rows.iter().filter(|r| r.regressed).collect();
    let failed = !regressions.is_empty() || !missing.is_empty();
    let mut md = String::from("# Bench regression report\n\n");
    md.push_str(&format!(
        "Tolerance: +{:.0}% over `{}`. Result: **{}**.\n\n",
        tolerance * 100.0,
        BASELINE_FILE,
        if failed { "FAIL" } else { "OK" }
    ));
    md.push_str("| benchmark | baseline | current | ratio | status |\n");
    md.push_str("|---|---:|---:|---:|---|\n");
    for r in rows {
        md.push_str(&format!(
            "| {} | {} ns | {} ns | {:.2}x | {} |\n",
            r.name,
            r.baseline_ns,
            r.current_ns,
            r.ratio,
            if r.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    for name in missing {
        md.push_str(&format!("| {name} | — | missing | — | MISSING |\n"));
    }
    for name in new {
        md.push_str(&format!(
            "| {name} | new | — | — | new (re-run `cargo xtask bench-baseline`) |\n"
        ));
    }
    (md, failed)
}

/// On GitHub Actions, surfaces `report` on the job's summary page by
/// appending it to the file named by `GITHUB_STEP_SUMMARY` (the file
/// aggregates every step's summary, hence append). A no-op when the
/// variable is unset or empty (local runs).
fn append_step_summary(report: &str) {
    let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if summary.is_empty() {
        return;
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&summary)
        .and_then(|mut f| std::io::Write::write_all(&mut f, report.as_bytes()));
    match result {
        Ok(()) => eprintln!("report appended to GITHUB_STEP_SUMMARY ({summary})"),
        Err(e) => eprintln!("warning: cannot append to GITHUB_STEP_SUMMARY={summary}: {e}"),
    }
}

fn bench_check(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    let baseline_path = root.join(BASELINE_FILE);
    let baseline_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "reading {}: {e} (run `cargo xtask bench-baseline` first)",
            baseline_path.display()
        )
    })?;
    let baseline = parse_baseline(&baseline_text);
    if baseline.is_empty() {
        return Err(format!("{BASELINE_FILE} has no bench entries"));
    }
    let current = run_micro_suite(&root, opts)?;

    let (rows, missing, new) = compare(&baseline, &current, opts.tolerance);
    let (report, failed) = render_report(&rows, &missing, &new, opts.tolerance);
    print!("{report}");

    let report_path = opts
        .report
        .clone()
        .unwrap_or_else(|| root.join("target").join("bench-report.md"));
    if let Some(parent) = report_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&report_path, &report).map_err(|e| format!("writing report: {e}"))?;
    eprintln!("report written to {}", report_path.display());

    append_step_summary(&report);

    if failed {
        eprintln!(
            "bench-check FAILED: {} regression(s), {} missing bench(es)",
            rows.iter().filter(|r| r.regressed).count(),
            missing.len()
        );
    }
    Ok(!failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip_and_escapes() {
        let text = concat!(
            "{\"name\":\"micro/a\",\"mean_ns\":120,\"median_ns\":100,\"iters\":10}\n",
            "{\"name\":\"micro/quo\\\"te\",\"mean_ns\":7,\"median_ns\":7,\"iters\":3}\n",
            "garbage line\n",
        );
        let means = parse_jsonl(text);
        assert_eq!(means.len(), 2);
        assert_eq!(means["micro/a"], 120);
        assert_eq!(means["micro/quo\"te"], 7);
    }

    #[test]
    fn baseline_write_parse_roundtrip() {
        let mut means = BTreeMap::new();
        means.insert("micro/a".to_string(), 1500u64);
        means.insert("micro/b".to_string(), 42u64);
        let dir = std::env::temp_dir().join(format!("xtask-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        write_baseline(&path, 150, &means).unwrap();
        let parsed = parse_baseline(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed, means);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let mut baseline = BTreeMap::new();
        baseline.insert("fast".to_string(), 100u64);
        baseline.insert("slow".to_string(), 100u64);
        baseline.insert("gone".to_string(), 100u64);
        let mut current = BTreeMap::new();
        current.insert("fast".to_string(), 110u64); // +10% — within tolerance
        current.insert("slow".to_string(), 140u64); // +40% — regression
        current.insert("fresh".to_string(), 5u64);
        let (rows, missing, new) = compare(&baseline, &current, 0.25);
        assert_eq!(rows.len(), 2);
        assert!(!rows.iter().find(|r| r.name == "fast").unwrap().regressed);
        assert!(rows.iter().find(|r| r.name == "slow").unwrap().regressed);
        assert_eq!(missing, vec!["gone".to_string()]);
        assert_eq!(new, vec!["fresh".to_string()]);

        let (report, failed) = render_report(&rows, &missing, &new, 0.25);
        assert!(failed);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("MISSING"));
        assert!(report.contains("**FAIL**"));
    }

    #[test]
    fn step_summary_appends_to_the_named_file() {
        let dir = std::env::temp_dir().join(format!("xtask-summary-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summary.md");
        std::fs::write(&path, "# earlier step\n").unwrap();
        // Safety note: test-local env mutation; no other xtask test reads
        // GITHUB_STEP_SUMMARY.
        std::env::set_var("GITHUB_STEP_SUMMARY", &path);
        append_step_summary("# Bench regression report\n");
        std::env::set_var("GITHUB_STEP_SUMMARY", "");
        append_step_summary("must not crash when unset/empty");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "# earlier step\n# Bench regression report\n");
        std::env::remove_var("GITHUB_STEP_SUMMARY");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_comparison_passes() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), 100u64);
        let (rows, missing, new) = compare(&baseline, &baseline, 0.25);
        let (report, failed) = render_report(&rows, &missing, &new, 0.25);
        assert!(!failed);
        assert!(report.contains("**OK**"));
    }
}
