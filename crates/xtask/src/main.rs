//! Repo automation tasks (`cargo xtask <task>`), following the
//! cargo-xtask convention: plain Rust instead of shell scripts, so the
//! same commands run identically on developer machines and in CI.
//!
//! Tasks:
//!
//! - `bench-baseline` — run the `micro` benchmark suite with the JSONL
//!   feed enabled (`MMSEC_BENCH_JSON`) and write the measured timings to
//!   `BENCH_BASELINE.json` at the repo root. Commit the file to move
//!   the reference point.
//! - `bench-check` — re-run the same suite and compare each timing
//!   against the committed baseline. Fails (exit 1) when any benchmark
//!   regressed by more than the tolerance (default 25%). Writes a
//!   markdown report for CI artifact upload, and appends it to
//!   `$GITHUB_STEP_SUMMARY` when set so the delta table shows up on the
//!   GitHub Actions job summary page.
//!
//! - `saturate` — boot the sharded socket server (`mmsec serve
//!   --listen unix:… --shards N --once`) on a throwaway platform, drive
//!   it with the `mmsec-load` generator, and verify the accounting
//!   identity (admitted + shed + rejected == submitted). Reports
//!   sustained jobs/sec, shed rate, and p99 admission-to-completion
//!   latency; gates throughput against the committed `serve/` baseline
//!   entries (higher is better — a >tolerance *drop* fails) and, with
//!   `--record`, rewrites those entries in `BENCH_BASELINE.json` while
//!   preserving the `micro/` ones. Knobs: `--shards N` (default 8),
//!   `--jobs N` (default 1,000,000), `--tenants N` (default 16). CI's
//!   saturation-smoke job runs `--shards 4 --jobs 50000`.
//! - `obs-report` — render a `mmsec run --profile` phase-profile JSON
//!   (`--profile PATH`) as a markdown table: per-phase counts, totals,
//!   wall-time shares, and latency percentiles.
//! - `obs-overhead` — gate the telemetry overhead: compare the
//!   `micro/simulate_200_{null_observer,profiler,flight}` benchmark
//!   variants against the bare `micro/simulate_200_no_observer` run and
//!   fail (exit 1) when any exceeds the budget (`--budget FRAC`,
//!   default 50%). Reuses an existing `--json PATH` JSONL feed when the
//!   file is already there (e.g. right after `bench-check` in CI)
//!   instead of re-running the suite.
//!
//! The bench tasks accept `--window-ms N` (per-bench measurement window,
//! default 150 — the "quick" profile used by the CI smoke gate; use a
//! larger window for a quieter baseline), `--runs N` (suite passes,
//! default 3 — the per-bench *minimum* of the per-pass medians is kept,
//! which shrugs off intermittent machine contention), and `--json PATH` to
//! keep the raw JSONL feed. `bench-check` additionally accepts
//! `--tolerance FRAC` (e.g. `0.25`) and `--report PATH`; every
//! report-producing task appends to `$GITHUB_STEP_SUMMARY` when set.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};
use std::time::{Duration, Instant};

const BASELINE_FILE: &str = "BENCH_BASELINE.json";
const DEFAULT_WINDOW_MS: u64 = 150;
const DEFAULT_TOLERANCE: f64 = 0.25;
const DEFAULT_RUNS: u32 = 3;
const DEFAULT_OBS_BUDGET: f64 = 0.50;
const DEFAULT_SHARDS: u64 = 8;
const DEFAULT_LOAD_JOBS: u64 = 1_000_000;
const DEFAULT_LOAD_TENANTS: u64 = 16;
/// Baseline names in this group are produced by `saturate`, not the
/// micro suite: `bench-check` skips them, and `compare` inverts the
/// regression direction for them (throughput: higher is better).
const SERVE_GROUP_PREFIX: &str = "serve/";
/// The one `serve/` entry the saturate gate compares; the shed/latency
/// entries ride along in the baseline for tracking only.
const SERVE_GATED_BENCH: &str = "serve/saturate_jobs_per_sec";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(task) = args.first() else {
        eprintln!(
            "usage: cargo xtask <bench-baseline|bench-check|saturate|obs-report|obs-overhead> \
             [options]"
        );
        return ExitCode::from(2);
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match task.as_str() {
        "bench-baseline" => bench_baseline(&opts),
        "bench-check" => bench_check(&opts),
        "saturate" => saturate(&opts),
        "obs-report" => obs_report(&opts),
        "obs-overhead" => obs_overhead(&opts),
        other => {
            eprintln!(
                "unknown task `{other}`; tasks: bench-baseline, bench-check, \
                 saturate, obs-report, obs-overhead"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    window_ms: u64,
    runs: u32,
    tolerance: f64,
    budget: f64,
    json: Option<PathBuf>,
    report: Option<PathBuf>,
    profile: Option<PathBuf>,
    shards: u64,
    jobs: u64,
    tenants: u64,
    record: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options {
            window_ms: DEFAULT_WINDOW_MS,
            runs: DEFAULT_RUNS,
            tolerance: DEFAULT_TOLERANCE,
            budget: DEFAULT_OBS_BUDGET,
            json: None,
            report: None,
            profile: None,
            shards: DEFAULT_SHARDS,
            jobs: DEFAULT_LOAD_JOBS,
            tenants: DEFAULT_LOAD_TENANTS,
            record: false,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--window-ms" => {
                    opts.window_ms = value("--window-ms")?
                        .parse()
                        .map_err(|e| format!("--window-ms: {e}"))?
                }
                "--runs" => {
                    opts.runs = value("--runs")?
                        .parse()
                        .map_err(|e| format!("--runs: {e}"))?;
                    if opts.runs == 0 {
                        return Err("--runs must be at least 1".into());
                    }
                }
                "--tolerance" => {
                    opts.tolerance = value("--tolerance")?
                        .parse()
                        .map_err(|e| format!("--tolerance: {e}"))?;
                    if !(opts.tolerance.is_finite() && opts.tolerance > 0.0) {
                        return Err("--tolerance must be positive".into());
                    }
                }
                "--budget" => {
                    opts.budget = value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?;
                    if !(opts.budget.is_finite() && opts.budget > 0.0) {
                        return Err("--budget must be positive".into());
                    }
                }
                "--shards" => {
                    opts.shards = value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?;
                    if opts.shards == 0 {
                        return Err("--shards must be at least 1".into());
                    }
                }
                "--jobs" => {
                    opts.jobs = value("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?;
                    if opts.jobs == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                }
                "--tenants" => {
                    opts.tenants = value("--tenants")?
                        .parse()
                        .map_err(|e| format!("--tenants: {e}"))?;
                    if opts.tenants == 0 {
                        return Err("--tenants must be at least 1".into());
                    }
                }
                "--record" => opts.record = true,
                "--json" => opts.json = Some(PathBuf::from(value("--json")?)),
                "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
                "--profile" => opts.profile = Some(PathBuf::from(value("--profile")?)),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").exists() && p.join("crates").is_dir())
        .expect("workspace root above crates/xtask")
        .to_path_buf()
}

/// Runs `cargo bench -p mmsec-bench --bench micro` with the JSONL feed
/// enabled and returns the measured timing (ns) per benchmark name.
fn run_micro_suite(root: &Path, opts: &Options) -> Result<BTreeMap<String, u64>, String> {
    let json_path = opts
        .json
        .clone()
        .unwrap_or_else(|| root.join("target").join("bench-smoke.jsonl"));
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::remove_file(&json_path).ok();

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    // Run the suite `opts.runs` times, appending every pass to the same
    // JSONL feed; `parse_jsonl` keeps the per-bench MINIMUM of the
    // per-pass medians. The median absorbs in-pass contention spikes and
    // the minimum absorbs whole passes landing in a noisy window —
    // contention only ever inflates a measurement, so the smallest of N
    // passes is the closest to the code's true cost.
    for pass in 1..=opts.runs {
        eprintln!(
            "running micro benches (window {} ms, pass {pass}/{}) -> {}",
            opts.window_ms,
            opts.runs,
            json_path.display()
        );
        let status = Command::new(&cargo)
            .args(["bench", "-p", "mmsec-bench", "--bench", "micro"])
            .current_dir(root)
            .env("MMSEC_BENCH_JSON", &json_path)
            .env("MMSEC_BENCH_WINDOW_MS", opts.window_ms.to_string())
            .status()
            .map_err(|e| format!("spawning cargo bench: {e}"))?;
        if !status.success() {
            return Err(format!("cargo bench failed: {status}"));
        }
    }
    let text = std::fs::read_to_string(&json_path)
        .map_err(|e| format!("reading {}: {e}", json_path.display()))?;
    let means = parse_jsonl(&text);
    if means.is_empty() {
        return Err("benchmark run produced no JSONL records".into());
    }
    Ok(means)
}

/// Extracts `name -> median_ns` from the compat-criterion JSONL feed.
/// Hand-rolled (no serde in this workspace); tolerant of unknown keys.
/// The per-pass *median* (robust to in-pass contention spikes) is used
/// rather than the mean; duplicate names (multiple suite passes appended
/// to one feed) keep the minimum — see the rationale in
/// [`run_micro_suite`].
fn parse_jsonl(text: &str) -> BTreeMap<String, u64> {
    let mut out: BTreeMap<String, u64> = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let Some(ns) = extract_u64(line, "median_ns") else {
            continue;
        };
        out.entry(name)
            .and_modify(|m| *m = (*m).min(ns))
            .or_insert(ns);
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let mut value = String::new();
    let mut chars = rest.chars();
    while let Some(ch) = chars.next() {
        match ch {
            '"' => return Some(value),
            '\\' => value.push(chars.next()?),
            other => value.push(other),
        }
    }
    None
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn write_baseline(
    path: &Path,
    window_ms: u64,
    means: &BTreeMap<String, u64>,
) -> std::io::Result<()> {
    let mut text = String::from("{\n");
    text.push_str("  \"schema\": \"mmsec-bench-baseline/1\",\n");
    text.push_str(&format!("  \"window_ms\": {window_ms},\n"));
    text.push_str("  \"benches\": {\n");
    let last = means.len().saturating_sub(1);
    for (i, (name, mean)) in means.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        text.push_str(&format!("    \"{name}\": {mean}{comma}\n"));
    }
    text.push_str("  }\n}\n");
    std::fs::write(path, text)
}

/// Parses the committed baseline file back into `name -> mean_ns`.
fn parse_baseline(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        // Entries look like `"micro/foo": 1234`; skip schema/window keys.
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "schema" || key == "window_ms" || key == "benches" {
            continue;
        }
        if let Ok(mean) = value.trim().parse::<u64>() {
            out.insert(key.to_string(), mean);
        }
    }
    out
}

fn bench_baseline(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    let means = run_micro_suite(&root, opts)?;
    let path = root.join(BASELINE_FILE);
    write_baseline(&path, opts.window_ms, &means).map_err(|e| format!("writing baseline: {e}"))?;
    println!("wrote {} ({} benches)", path.display(), means.len());
    Ok(true)
}

struct Row {
    name: String,
    baseline_ns: u64,
    current_ns: u64,
    ratio: f64,
    regressed: bool,
}

/// Compares a fresh run against the baseline. Returns the per-bench
/// rows plus names present in only one of the two sets.
///
/// Direction depends on the group: `micro/…` entries are timings
/// (lower is better — regression means the ratio *rose* past the
/// tolerance), while `serve/…` entries are throughput-style (higher is
/// better — regression means the ratio *fell* below `1 - tolerance`).
fn compare(
    baseline: &BTreeMap<String, u64>,
    current: &BTreeMap<String, u64>,
    tolerance: f64,
) -> (Vec<Row>, Vec<String>, Vec<String>) {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (name, &base) in baseline {
        match current.get(name) {
            Some(&cur) => {
                let ratio = cur as f64 / base.max(1) as f64;
                let regressed = if name.starts_with(SERVE_GROUP_PREFIX) {
                    ratio < 1.0 - tolerance
                } else {
                    ratio > 1.0 + tolerance
                };
                rows.push(Row {
                    name: name.clone(),
                    baseline_ns: base,
                    current_ns: cur,
                    ratio,
                    regressed,
                });
            }
            None => missing.push(name.clone()),
        }
    }
    let new: Vec<String> = current
        .keys()
        .filter(|n| !baseline.contains_key(*n))
        .cloned()
        .collect();
    (rows, missing, new)
}

fn render_report(
    rows: &[Row],
    missing: &[String],
    new: &[String],
    tolerance: f64,
) -> (String, bool) {
    let regressions: Vec<&Row> = rows.iter().filter(|r| r.regressed).collect();
    let failed = !regressions.is_empty() || !missing.is_empty();
    let mut md = String::from("# Bench regression report\n\n");
    md.push_str(&format!(
        "Tolerance: +{:.0}% over `{}`. Result: **{}**.\n\n",
        tolerance * 100.0,
        BASELINE_FILE,
        if failed { "FAIL" } else { "OK" }
    ));
    md.push_str("| benchmark | baseline | current | ratio | status |\n");
    md.push_str("|---|---:|---:|---:|---|\n");
    for r in rows {
        md.push_str(&format!(
            "| {} | {} ns | {} ns | {:.2}x | {} |\n",
            r.name,
            r.baseline_ns,
            r.current_ns,
            r.ratio,
            if r.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    for name in missing {
        md.push_str(&format!("| {name} | — | missing | — | MISSING |\n"));
    }
    for name in new {
        md.push_str(&format!(
            "| {name} | new | — | — | new (re-run `cargo xtask bench-baseline`) |\n"
        ));
    }
    (md, failed)
}

/// On GitHub Actions, surfaces `report` on the job's summary page by
/// appending it to the file named by `GITHUB_STEP_SUMMARY` (the file
/// aggregates every step's summary, hence append). A no-op when the
/// variable is unset or empty (local runs).
fn append_step_summary(report: &str) {
    let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if summary.is_empty() {
        return;
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&summary)
        .and_then(|mut f| std::io::Write::write_all(&mut f, report.as_bytes()));
    match result {
        Ok(()) => eprintln!("report appended to GITHUB_STEP_SUMMARY ({summary})"),
        Err(e) => eprintln!("warning: cannot append to GITHUB_STEP_SUMMARY={summary}: {e}"),
    }
}

fn bench_check(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    let baseline_path = root.join(BASELINE_FILE);
    let baseline_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "reading {}: {e} (run `cargo xtask bench-baseline` first)",
            baseline_path.display()
        )
    })?;
    // `serve/…` entries are measured and gated by `cargo xtask
    // saturate` against a live socket server; the micro suite never
    // emits them, so they must not count as "missing" here.
    let baseline: BTreeMap<String, u64> = parse_baseline(&baseline_text)
        .into_iter()
        .filter(|(name, _)| !name.starts_with(SERVE_GROUP_PREFIX))
        .collect();
    if baseline.is_empty() {
        return Err(format!("{BASELINE_FILE} has no micro bench entries"));
    }
    let current = run_micro_suite(&root, opts)?;

    let (rows, missing, new) = compare(&baseline, &current, opts.tolerance);
    if !missing.is_empty() {
        // A baseline bench with no JSONL record means the harness never
        // measured it: the bench was renamed/removed without
        // re-baselining, or it produced zero samples inside the
        // measurement window (compat-criterion then prints "(no
        // samples)" and emits no record). Either way the wall cannot
        // vouch for it — fail loudly instead of letting the gap ride.
        return Err(format!(
            "bench(es) present in {BASELINE_FILE} but absent from the run's JSONL feed: \
             {}. Causes: bench renamed/removed (re-run `cargo xtask bench-baseline`) \
             or zero samples in the {} ms window (raise --window-ms).",
            missing.join(", "),
            opts.window_ms
        ));
    }
    let (report, failed) = render_report(&rows, &missing, &new, opts.tolerance);
    print!("{report}");

    let report_path = opts
        .report
        .clone()
        .unwrap_or_else(|| root.join("target").join("bench-report.md"));
    if let Some(parent) = report_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&report_path, &report).map_err(|e| format!("writing report: {e}"))?;
    eprintln!("report written to {}", report_path.display());

    append_step_summary(&report);

    if failed {
        eprintln!(
            "bench-check FAILED: {} regression(s), {} missing bench(es)",
            rows.iter().filter(|r| r.regressed).count(),
            missing.len()
        );
    }
    Ok(!failed)
}

/// Parses a (possibly fractional) JSON number field out of a flat
/// NDJSON line. Returns `None` for `null` or absent fields.
fn extract_f64(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let token: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    token.parse().ok()
}

/// The `window_ms` recorded in a baseline file, if any (kept verbatim
/// when `saturate --record` rewrites the `serve/` entries so the
/// `micro/` reference point stays self-describing).
fn baseline_window_ms(text: &str) -> Option<u64> {
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some((key, value)) = line.split_once(':') {
            if key.trim().trim_matches('"') == "window_ms" {
                return value.trim().parse().ok();
            }
        }
    }
    None
}

/// Everything `saturate` needs from the `mmsec-load` result line.
struct LoadResult {
    submitted: u64,
    admitted: u64,
    shed: u64,
    rejected: u64,
    completed: u64,
    wall_secs: f64,
    jobs_per_sec: f64,
    shed_rate: f64,
    p99_latency_ms: Option<f64>,
}

/// Finds and parses the `load-result` line in `mmsec-load` stdout.
fn parse_load_result(stdout: &str) -> Result<LoadResult, String> {
    let line = stdout
        .lines()
        .find(|l| l.contains("\"type\":\"load-result\""))
        .ok_or("mmsec-load printed no load-result line")?;
    let int = |key: &str| {
        extract_u64(line, key).ok_or_else(|| format!("load-result line has no `{key}` field"))
    };
    let num = |key: &str| {
        extract_f64(line, key).ok_or_else(|| format!("load-result line has no `{key}` field"))
    };
    Ok(LoadResult {
        submitted: int("submitted")?,
        admitted: int("admitted")?,
        shed: int("shed")?,
        rejected: int("rejected")?,
        completed: int("completed")?,
        wall_secs: num("wall_secs")?,
        jobs_per_sec: num("jobs_per_sec")?,
        shed_rate: num("shed_rate")?,
        p99_latency_ms: extract_f64(line, "p99_latency_ms"),
    })
}

/// Converts a load result into baseline-style `serve/` entries. Only
/// [`SERVE_GATED_BENCH`] is regression-gated (throughput, inverted
/// direction); the shed/latency entries are recorded for tracking.
fn serve_entries(res: &LoadResult) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    out.insert(
        SERVE_GATED_BENCH.to_string(),
        res.jobs_per_sec.round() as u64,
    );
    out.insert(
        "serve/saturate_shed_per_million".to_string(),
        (res.shed_rate * 1e6).round() as u64,
    );
    if let Some(p99) = res.p99_latency_ms {
        out.insert(
            "serve/saturate_p99_latency_us".to_string(),
            (p99 * 1e3).round() as u64,
        );
    }
    out
}

/// Renders the saturation report; returns `(markdown, failed)` where
/// failure means the throughput gate tripped against the baseline.
fn render_saturate(
    res: &LoadResult,
    baseline: &BTreeMap<String, u64>,
    shards: u64,
    tolerance: f64,
) -> (String, bool) {
    let mut md = String::from("# Serve saturation report\n\n");
    md.push_str(&format!(
        "- shards: {shards}, submitted: {}, wall: {:.3} s\n\
         - admitted: {}, shed: {}, rejected: {}, completed: {}\n\
         - throughput: **{:.0} jobs/sec**, shed rate: {:.4}%\n\
         - p99 admission-to-completion latency: {}\n\n",
        res.submitted,
        res.wall_secs,
        res.admitted,
        res.shed,
        res.rejected,
        res.completed,
        res.jobs_per_sec,
        res.shed_rate * 100.0,
        res.p99_latency_ms
            .map_or("n/a (nothing completed)".to_string(), |ms| {
                format!("{ms:.3} ms")
            }),
    ));
    let current = serve_entries(res);
    let gated: BTreeMap<String, u64> = baseline
        .iter()
        .filter(|(name, _)| name.as_str() == SERVE_GATED_BENCH)
        .map(|(name, &v)| (name.clone(), v))
        .collect();
    if gated.is_empty() {
        md.push_str(&format!(
            "No `{SERVE_GATED_BENCH}` baseline entry — throughput gate skipped \
             (record one with `cargo xtask saturate --record`).\n"
        ));
        return (md, false);
    }
    let (rows, _, _) = compare(&gated, &current, tolerance);
    let failed = rows.iter().any(|r| r.regressed);
    md.push_str(&format!(
        "Throughput gate: drop of more than {:.0}% below the baseline fails. \
         Result: **{}**.\n\n",
        tolerance * 100.0,
        if failed { "FAIL" } else { "OK" }
    ));
    md.push_str("| benchmark | baseline | current | ratio | status |\n");
    md.push_str("|---|---:|---:|---:|---|\n");
    for r in &rows {
        md.push_str(&format!(
            "| {} | {} jobs/s | {} jobs/s | {:.2}x | {} |\n",
            r.name,
            r.baseline_ns,
            r.current_ns,
            r.ratio,
            if r.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    (md, failed)
}

/// Boots a sharded socket server, saturates it with `mmsec-load`, and
/// checks accounting plus the throughput gate. See the module docs.
fn saturate(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    eprintln!("building release mmsec + mmsec-load");
    let status = Command::new(&cargo)
        .args([
            "build",
            "--release",
            "-p",
            "mmsec-apps",
            "--bin",
            "mmsec",
            "--bin",
            "mmsec-load",
        ])
        .current_dir(&root)
        .status()
        .map_err(|e| format!("spawning cargo build: {e}"))?;
    if !status.success() {
        return Err(format!("cargo build failed: {status}"));
    }
    let bin = root.join("target").join("release");

    let dir = std::env::temp_dir().join(format!("mmsec-saturate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let platform = dir.join("platform.txt");
    // Two edges + two clouds: small enough that lane replay stays
    // cheap, heterogeneous enough that placement has real choices.
    std::fs::write(
        &platform,
        "# mmsec-instance v1\nedge 1.0\nedge 1.0\ncloud 2.0\ncloud 2.0\n",
    )
    .map_err(|e| format!("writing platform file: {e}"))?;
    let sock = dir.join("serve.sock");
    let listen = format!("unix:{}", sock.display());

    eprintln!("booting server: {} shard(s) on {listen}", opts.shards);
    let mut server = Command::new(bin.join("mmsec"))
        .args([
            "serve",
            "--instance",
            &platform.display().to_string(),
            "--listen",
            &listen,
            "--shards",
            &opts.shards.to_string(),
            "--once",
        ])
        .current_dir(&root)
        .spawn()
        .map_err(|e| format!("spawning mmsec serve: {e}"))?;

    // The socket file appears once the listener is bound; --once makes
    // the server exit on its own after our connection closes.
    let deadline = Instant::now() + Duration::from_secs(30);
    let ready = loop {
        if sock.exists() {
            break Ok(());
        }
        match server.try_wait() {
            Ok(Some(status)) => break Err(format!("server exited before binding: {status}")),
            Ok(None) => {}
            Err(e) => break Err(format!("polling server: {e}")),
        }
        if Instant::now() > deadline {
            break Err("server did not bind its socket within 30s".to_string());
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    if let Err(e) = ready {
        server.kill().ok();
        server.wait().ok();
        std::fs::remove_dir_all(&dir).ok();
        return Err(e);
    }

    eprintln!(
        "driving {} jobs across {} tenant(s)",
        opts.jobs, opts.tenants
    );
    let load = Command::new(bin.join("mmsec-load"))
        .args([
            "--connect",
            &listen,
            "--jobs",
            &opts.jobs.to_string(),
            "--tenants",
            &opts.tenants.to_string(),
            "--edges",
            "2",
        ])
        .current_dir(&root)
        .output();
    let server_status = server.wait();
    std::fs::remove_dir_all(&dir).ok();

    let load = load.map_err(|e| format!("spawning mmsec-load: {e}"))?;
    if !load.status.success() {
        return Err(format!(
            "mmsec-load failed ({}): {}",
            load.status,
            String::from_utf8_lossy(&load.stderr).trim()
        ));
    }
    let server_status = server_status.map_err(|e| format!("waiting for server: {e}"))?;
    if !server_status.success() {
        return Err(format!("server exited uncleanly: {server_status}"));
    }
    let res = parse_load_result(&String::from_utf8_lossy(&load.stdout))?;

    // The overload contract: every submission is exactly one of
    // admitted, shed, or rejected — nothing blocks, nothing vanishes.
    if res.admitted + res.shed + res.rejected != res.submitted {
        return Err(format!(
            "accounting violated: admitted {} + shed {} + rejected {} != submitted {}",
            res.admitted, res.shed, res.rejected, res.submitted
        ));
    }
    if res.completed == 0 || res.jobs_per_sec <= 0.0 {
        return Err(format!(
            "server sustained no throughput: completed {}, {:.1} jobs/sec",
            res.completed, res.jobs_per_sec
        ));
    }

    let baseline_path = root.join(BASELINE_FILE);
    let baseline_text = std::fs::read_to_string(&baseline_path).unwrap_or_default();
    let baseline = parse_baseline(&baseline_text);
    let (report, failed) = render_saturate(&res, &baseline, opts.shards, opts.tolerance);
    print!("{report}");
    if let Some(report_path) = &opts.report {
        if let Some(parent) = report_path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(report_path, &report).map_err(|e| format!("writing report: {e}"))?;
        eprintln!("report written to {}", report_path.display());
    }
    append_step_summary(&report);

    if opts.record {
        let mut merged: BTreeMap<String, u64> = baseline
            .into_iter()
            .filter(|(name, _)| !name.starts_with(SERVE_GROUP_PREFIX))
            .collect();
        merged.extend(serve_entries(&res));
        let window_ms = baseline_window_ms(&baseline_text).unwrap_or(opts.window_ms);
        write_baseline(&baseline_path, window_ms, &merged)
            .map_err(|e| format!("writing baseline: {e}"))?;
        println!(
            "recorded serve/ entries into {} ({} total benches)",
            baseline_path.display(),
            merged.len()
        );
    } else if failed {
        eprintln!("saturate FAILED: throughput below the baseline gate");
    }
    Ok(opts.record || !failed)
}

/// Formats a duration in seconds human-readably (µs/ms/s).
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Renders a `mmsec run --profile` JSON document as markdown.
fn render_profile(doc: &mmsec_obs::json::Json) -> Result<String, String> {
    let str_of = |k: &str| doc.get(k).and_then(|v| v.as_str().map(str::to_string));
    let num_of = |k: &str| doc.get(k).and_then(|v| v.as_f64());
    let schema = str_of("schema").ok_or("profile JSON has no schema field")?;
    if schema != "mmsec-profile/1" {
        return Err(format!(
            "unsupported profile schema {schema:?} (expected mmsec-profile/1)"
        ));
    }
    let mut md = String::from("# Engine phase profile\n\n");
    md.push_str(&format!(
        "- policy: `{}`\n",
        str_of("policy").unwrap_or_default()
    ));
    for key in ["steps", "decides", "decide_skips"] {
        md.push_str(&format!(
            "- {}: {}\n",
            key.replace('_', " "),
            num_of(key).unwrap_or(0.0) as u64
        ));
    }
    md.push_str(&format!(
        "- skip ratio: {:.1}%\n",
        num_of("skip_ratio").unwrap_or(0.0) * 100.0
    ));
    md.push_str(&format!(
        "- loop wall: {}\n",
        fmt_secs(num_of("loop_wall_seconds").unwrap_or(0.0))
    ));
    md.push_str(&format!(
        "- phase coverage: {:.1}% of loop wall\n\n",
        num_of("coverage").unwrap_or(0.0) * 100.0
    ));
    md.push_str("| phase | count | total | share | mean | p50 | p99 | max |\n");
    md.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    let phases = doc
        .get("phases")
        .and_then(|v| v.as_arr())
        .ok_or("profile JSON has no phases array")?;
    for ph in phases {
        let g = |k: &str| ph.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        md.push_str(&format!(
            "| {} | {} | {} | {:.1}% | {} | {} | {} | {} |\n",
            ph.get("phase").and_then(|v| v.as_str()).unwrap_or("?"),
            g("count") as u64,
            fmt_secs(g("sum_seconds")),
            g("share") * 100.0,
            fmt_secs(g("mean_seconds")),
            fmt_secs(g("p50_seconds")),
            fmt_secs(g("p99_seconds")),
            fmt_secs(g("max_seconds")),
        ));
    }
    Ok(md)
}

fn obs_report(opts: &Options) -> Result<bool, String> {
    let Some(path) = &opts.profile else {
        return Err("obs-report requires --profile PATH (a `mmsec run --profile` artifact)".into());
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc =
        mmsec_obs::json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    let report = render_profile(&doc)?;
    print!("{report}");
    if let Some(report_path) = &opts.report {
        if let Some(parent) = report_path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(report_path, &report).map_err(|e| format!("writing report: {e}"))?;
        eprintln!("report written to {}", report_path.display());
    }
    append_step_summary(&report);
    Ok(true)
}

/// The bare-run reference point of the telemetry overhead gate.
const OBS_BASE_BENCH: &str = "micro/simulate_200_no_observer";
/// Telemetry variants gated against [`OBS_BASE_BENCH`].
const OBS_VARIANTS: &[(&str, &str)] = &[
    ("null observer", "micro/simulate_200_null_observer"),
    ("phase profiler", "micro/simulate_200_profiler"),
    ("flight recorder", "micro/simulate_200_flight"),
];

/// Renders the overhead table; returns `(markdown, failed)`.
fn render_overhead(means: &BTreeMap<String, u64>, budget: f64) -> Result<(String, bool), String> {
    let base = *means
        .get(OBS_BASE_BENCH)
        .ok_or(format!("bench feed has no `{OBS_BASE_BENCH}` record"))?;
    let mut md = String::from("# Telemetry overhead report\n\n");
    let mut failed = false;
    let mut rows = String::new();
    for (label, name) in OBS_VARIANTS {
        match means.get(*name) {
            Some(&cur) => {
                let overhead = cur as f64 / base.max(1) as f64 - 1.0;
                let over = overhead > budget;
                failed |= over;
                rows.push_str(&format!(
                    "| {label} | `{name}` | {cur} ns | {:+.1}% | {} |\n",
                    overhead * 100.0,
                    if over { "OVER BUDGET" } else { "ok" }
                ));
            }
            None => {
                failed = true;
                rows.push_str(&format!("| {label} | `{name}` | missing | — | MISSING |\n"));
            }
        }
    }
    md.push_str(&format!(
        "Budget: +{:.0}% over `{OBS_BASE_BENCH}` ({base} ns). Result: **{}**.\n\n",
        budget * 100.0,
        if failed { "FAIL" } else { "OK" }
    ));
    md.push_str("| variant | benchmark | timing | overhead | status |\n");
    md.push_str("|---|---|---:|---:|---|\n");
    md.push_str(&rows);
    Ok((md, failed))
}

fn obs_overhead(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    // Reuse the feed a preceding bench run left behind (CI runs this
    // right after bench-check); re-run the suite otherwise.
    let json_path = opts
        .json
        .clone()
        .unwrap_or_else(|| root.join("target").join("bench-smoke.jsonl"));
    let means = if json_path.is_file() {
        eprintln!("reusing bench feed {}", json_path.display());
        let text = std::fs::read_to_string(&json_path)
            .map_err(|e| format!("reading {}: {e}", json_path.display()))?;
        parse_jsonl(&text)
    } else {
        run_micro_suite(&root, opts)?
    };
    let (report, failed) = render_overhead(&means, opts.budget)?;
    print!("{report}");
    if let Some(report_path) = &opts.report {
        if let Some(parent) = report_path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(report_path, &report).map_err(|e| format!("writing report: {e}"))?;
        eprintln!("report written to {}", report_path.display());
    }
    append_step_summary(&report);
    if failed {
        eprintln!("obs-overhead FAILED: telemetry overhead above budget");
    }
    Ok(!failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip_and_escapes() {
        let text = concat!(
            "{\"name\":\"micro/a\",\"mean_ns\":120,\"median_ns\":100,\"iters\":10}\n",
            "{\"name\":\"micro/quo\\\"te\",\"mean_ns\":7,\"median_ns\":7,\"iters\":3}\n",
            "garbage line\n",
        );
        let means = parse_jsonl(text);
        assert_eq!(means.len(), 2);
        assert_eq!(means["micro/a"], 100, "per-pass median is the statistic");
        assert_eq!(means["micro/quo\"te"], 7);
    }

    #[test]
    fn jsonl_duplicates_keep_minimum() {
        let text = concat!(
            "{\"name\":\"micro/a\",\"mean_ns\":120,\"median_ns\":100,\"iters\":10}\n",
            "{\"name\":\"micro/a\",\"mean_ns\":90,\"median_ns\":85,\"iters\":11}\n",
            "{\"name\":\"micro/a\",\"mean_ns\":300,\"median_ns\":290,\"iters\":4}\n",
        );
        let means = parse_jsonl(text);
        assert_eq!(means.len(), 1);
        assert_eq!(means["micro/a"], 85, "min of the per-pass medians wins");
    }

    #[test]
    fn baseline_write_parse_roundtrip() {
        let mut means = BTreeMap::new();
        means.insert("micro/a".to_string(), 1500u64);
        means.insert("micro/b".to_string(), 42u64);
        let dir = std::env::temp_dir().join(format!("xtask-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        write_baseline(&path, 150, &means).unwrap();
        let parsed = parse_baseline(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed, means);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let mut baseline = BTreeMap::new();
        baseline.insert("fast".to_string(), 100u64);
        baseline.insert("slow".to_string(), 100u64);
        baseline.insert("gone".to_string(), 100u64);
        let mut current = BTreeMap::new();
        current.insert("fast".to_string(), 110u64); // +10% — within tolerance
        current.insert("slow".to_string(), 140u64); // +40% — regression
        current.insert("fresh".to_string(), 5u64);
        let (rows, missing, new) = compare(&baseline, &current, 0.25);
        assert_eq!(rows.len(), 2);
        assert!(!rows.iter().find(|r| r.name == "fast").unwrap().regressed);
        assert!(rows.iter().find(|r| r.name == "slow").unwrap().regressed);
        assert_eq!(missing, vec!["gone".to_string()]);
        assert_eq!(new, vec!["fresh".to_string()]);

        let (report, failed) = render_report(&rows, &missing, &new, 0.25);
        assert!(failed);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("MISSING"));
        assert!(report.contains("**FAIL**"));
    }

    #[test]
    fn compare_inverts_direction_for_serve_entries() {
        let mut baseline = BTreeMap::new();
        baseline.insert("serve/saturate_jobs_per_sec".to_string(), 1000u64);
        baseline.insert("micro/timing".to_string(), 1000u64);

        // Throughput dropped 40%: regression for serve/, but a 600 ns
        // timing would be a big *win* for micro/.
        let mut current = BTreeMap::new();
        current.insert("serve/saturate_jobs_per_sec".to_string(), 600u64);
        current.insert("micro/timing".to_string(), 600u64);
        let (rows, _, _) = compare(&baseline, &current, 0.25);
        let row = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(row("serve/saturate_jobs_per_sec").regressed);
        assert!(!row("micro/timing").regressed);

        // Throughput up 40%: fine for serve/, regression for micro/.
        current.insert("serve/saturate_jobs_per_sec".to_string(), 1400u64);
        current.insert("micro/timing".to_string(), 1400u64);
        let (rows, _, _) = compare(&baseline, &current, 0.25);
        let row = |n: &str| rows.iter().find(|r| r.name == n).unwrap();
        assert!(!row("serve/saturate_jobs_per_sec").regressed);
        assert!(row("micro/timing").regressed);

        // A 20% drop sits inside the 25% tolerance.
        current.insert("serve/saturate_jobs_per_sec".to_string(), 800u64);
        let (rows, _, _) = compare(&baseline, &current, 0.25);
        assert!(
            !rows
                .iter()
                .find(|r| r.name == "serve/saturate_jobs_per_sec")
                .unwrap()
                .regressed
        );
    }

    #[test]
    fn load_result_parses_and_maps_to_serve_entries() {
        let stdout = concat!(
            "noise line\n",
            "{\"type\":\"load-result\",\"submitted\":50000,\"admitted\":49000,",
            "\"shed\":1000,\"rejected\":0,\"completed\":49000,\"server_lines\":50000,",
            "\"server_tenants\":8,\"wall_secs\":2.500,\"jobs_per_sec\":20000.4,",
            "\"shed_rate\":0.020000,\"p50_latency_ms\":1.250,\"p99_latency_ms\":10.500}\n",
        );
        let res = parse_load_result(stdout).unwrap();
        assert_eq!(res.submitted, 50000);
        assert_eq!(res.admitted + res.shed + res.rejected, res.submitted);
        assert_eq!(res.completed, 49000);
        assert!((res.jobs_per_sec - 20000.4).abs() < 1e-9);
        assert_eq!(res.p99_latency_ms, Some(10.5));

        let entries = serve_entries(&res);
        assert_eq!(entries["serve/saturate_jobs_per_sec"], 20000);
        assert_eq!(entries["serve/saturate_shed_per_million"], 20000);
        assert_eq!(entries["serve/saturate_p99_latency_us"], 10500);

        // `null` latencies (nothing completed) parse as absent.
        let none = parse_load_result(
            "{\"type\":\"load-result\",\"submitted\":1,\"admitted\":0,\"shed\":1,\
             \"rejected\":0,\"completed\":0,\"server_lines\":1,\"server_tenants\":1,\
             \"wall_secs\":0.010,\"jobs_per_sec\":100.0,\"shed_rate\":1.0,\
             \"p50_latency_ms\":null,\"p99_latency_ms\":null}",
        )
        .unwrap();
        assert_eq!(none.p99_latency_ms, None);
        assert!(!serve_entries(&none).contains_key("serve/saturate_p99_latency_us"));

        assert!(parse_load_result("no result line here").is_err());
    }

    #[test]
    fn saturate_report_gates_throughput_against_the_baseline() {
        let res = LoadResult {
            submitted: 1_000_000,
            admitted: 990_000,
            shed: 10_000,
            rejected: 0,
            completed: 990_000,
            wall_secs: 10.0,
            jobs_per_sec: 60_000.0,
            shed_rate: 0.01,
            p99_latency_ms: Some(25.0),
        };
        let mut baseline = BTreeMap::new();
        baseline.insert(SERVE_GATED_BENCH.to_string(), 100_000u64);
        let (report, failed) = render_saturate(&res, &baseline, 8, 0.25);
        assert!(failed, "a 40% throughput drop must trip the 25% gate");
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("**FAIL**"));

        baseline.insert(SERVE_GATED_BENCH.to_string(), 60_000u64);
        let (report, failed) = render_saturate(&res, &baseline, 8, 0.25);
        assert!(!failed);
        assert!(report.contains("**OK**"));

        // No serve/ baseline yet: report only, gate skipped.
        let (report, failed) = render_saturate(&res, &BTreeMap::new(), 8, 0.25);
        assert!(!failed);
        assert!(report.contains("gate skipped"));
    }

    #[test]
    fn baseline_window_survives_serve_rewrites() {
        let mut means = BTreeMap::new();
        means.insert("micro/a".to_string(), 1500u64);
        means.insert("serve/saturate_jobs_per_sec".to_string(), 90_000u64);
        let dir = std::env::temp_dir().join(format!("xtask-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        write_baseline(&path, 450, &means).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(baseline_window_ms(&text), Some(450));
        let parsed = parse_baseline(&text);
        assert_eq!(parsed, means);
        // bench-check's view excludes the serve group.
        let micro: BTreeMap<String, u64> = parsed
            .into_iter()
            .filter(|(name, _)| !name.starts_with(SERVE_GROUP_PREFIX))
            .collect();
        assert_eq!(micro.len(), 1);
        assert!(micro.contains_key("micro/a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn step_summary_appends_to_the_named_file() {
        let dir = std::env::temp_dir().join(format!("xtask-summary-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summary.md");
        std::fs::write(&path, "# earlier step\n").unwrap();
        // Safety note: test-local env mutation; no other xtask test reads
        // GITHUB_STEP_SUMMARY.
        std::env::set_var("GITHUB_STEP_SUMMARY", &path);
        append_step_summary("# Bench regression report\n");
        std::env::set_var("GITHUB_STEP_SUMMARY", "");
        append_step_summary("must not crash when unset/empty");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "# earlier step\n# Bench regression report\n");
        std::env::remove_var("GITHUB_STEP_SUMMARY");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overhead_gate_flags_only_over_budget_variants() {
        let mut means = BTreeMap::new();
        means.insert(OBS_BASE_BENCH.to_string(), 1000u64);
        means.insert("micro/simulate_200_null_observer".to_string(), 1010u64);
        means.insert("micro/simulate_200_profiler".to_string(), 1200u64);
        means.insert("micro/simulate_200_flight".to_string(), 1900u64);
        let (report, failed) = render_overhead(&means, 0.50).unwrap();
        assert!(failed, "flight at +90% must trip a 50% budget");
        assert!(report.contains("OVER BUDGET"));
        assert!(report.contains("**FAIL**"));

        let (report, failed) = render_overhead(&means, 1.0).unwrap();
        assert!(!failed);
        assert!(report.contains("**OK**"));

        means.remove("micro/simulate_200_profiler");
        let (report, failed) = render_overhead(&means, 1.0).unwrap();
        assert!(failed, "a missing variant must fail the gate");
        assert!(report.contains("MISSING"));

        means.remove(OBS_BASE_BENCH);
        assert!(render_overhead(&means, 1.0).is_err());
    }

    #[test]
    fn profile_report_renders_phases() {
        let text = r#"{
            "schema": "mmsec-profile/1",
            "policy": "srpt",
            "steps": 10,
            "decides": 8,
            "decide_skips": 2,
            "skip_ratio": 0.2,
            "loop_wall_seconds": 0.5,
            "coverage": 0.99,
            "phases": [
                {"phase": "decide", "count": 8, "sum_seconds": 0.4,
                 "mean_seconds": 0.05, "p50_seconds": 0.04,
                 "p99_seconds": 0.09, "max_seconds": 0.1, "share": 0.8}
            ]
        }"#;
        let doc = mmsec_obs::json::parse(text).unwrap();
        let md = render_profile(&doc).unwrap();
        assert!(md.contains("`srpt`"));
        assert!(md.contains("| decide | 8 |"));
        assert!(md.contains("phase coverage: 99.0%"));

        let bad = mmsec_obs::json::parse("{\"schema\": \"other/9\"}").unwrap();
        assert!(render_profile(&bad).is_err());
    }

    #[test]
    fn clean_comparison_passes() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), 100u64);
        let (rows, missing, new) = compare(&baseline, &baseline, 0.25);
        let (report, failed) = render_report(&rows, &missing, &new, 0.25);
        assert!(!failed);
        assert!(report.contains("**OK**"));
    }
}
