//! Repo automation tasks (`cargo xtask <task>`), following the
//! cargo-xtask convention: plain Rust instead of shell scripts, so the
//! same commands run identically on developer machines and in CI.
//!
//! Tasks:
//!
//! - `bench-baseline` — run the `micro` benchmark suite with the JSONL
//!   feed enabled (`MMSEC_BENCH_JSON`) and write the measured timings to
//!   `BENCH_BASELINE.json` at the repo root. Commit the file to move
//!   the reference point.
//! - `bench-check` — re-run the same suite and compare each timing
//!   against the committed baseline. Fails (exit 1) when any benchmark
//!   regressed by more than the tolerance (default 25%). Writes a
//!   markdown report for CI artifact upload, and appends it to
//!   `$GITHUB_STEP_SUMMARY` when set so the delta table shows up on the
//!   GitHub Actions job summary page.
//!
//! - `obs-report` — render a `mmsec run --profile` phase-profile JSON
//!   (`--profile PATH`) as a markdown table: per-phase counts, totals,
//!   wall-time shares, and latency percentiles.
//! - `obs-overhead` — gate the telemetry overhead: compare the
//!   `micro/simulate_200_{null_observer,profiler,flight}` benchmark
//!   variants against the bare `micro/simulate_200_no_observer` run and
//!   fail (exit 1) when any exceeds the budget (`--budget FRAC`,
//!   default 50%). Reuses an existing `--json PATH` JSONL feed when the
//!   file is already there (e.g. right after `bench-check` in CI)
//!   instead of re-running the suite.
//!
//! The bench tasks accept `--window-ms N` (per-bench measurement window,
//! default 150 — the "quick" profile used by the CI smoke gate; use a
//! larger window for a quieter baseline), `--runs N` (suite passes,
//! default 3 — the per-bench *minimum* of the per-pass medians is kept,
//! which shrugs off intermittent machine contention), and `--json PATH` to
//! keep the raw JSONL feed. `bench-check` additionally accepts
//! `--tolerance FRAC` (e.g. `0.25`) and `--report PATH`; every
//! report-producing task appends to `$GITHUB_STEP_SUMMARY` when set.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

const BASELINE_FILE: &str = "BENCH_BASELINE.json";
const DEFAULT_WINDOW_MS: u64 = 150;
const DEFAULT_TOLERANCE: f64 = 0.25;
const DEFAULT_RUNS: u32 = 3;
const DEFAULT_OBS_BUDGET: f64 = 0.50;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(task) = args.first() else {
        eprintln!(
            "usage: cargo xtask <bench-baseline|bench-check|obs-report|obs-overhead> [options]"
        );
        return ExitCode::from(2);
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match task.as_str() {
        "bench-baseline" => bench_baseline(&opts),
        "bench-check" => bench_check(&opts),
        "obs-report" => obs_report(&opts),
        "obs-overhead" => obs_overhead(&opts),
        other => {
            eprintln!(
                "unknown task `{other}`; tasks: bench-baseline, bench-check, \
                 obs-report, obs-overhead"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

struct Options {
    window_ms: u64,
    runs: u32,
    tolerance: f64,
    budget: f64,
    json: Option<PathBuf>,
    report: Option<PathBuf>,
    profile: Option<PathBuf>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options {
            window_ms: DEFAULT_WINDOW_MS,
            runs: DEFAULT_RUNS,
            tolerance: DEFAULT_TOLERANCE,
            budget: DEFAULT_OBS_BUDGET,
            json: None,
            report: None,
            profile: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--window-ms" => {
                    opts.window_ms = value("--window-ms")?
                        .parse()
                        .map_err(|e| format!("--window-ms: {e}"))?
                }
                "--runs" => {
                    opts.runs = value("--runs")?
                        .parse()
                        .map_err(|e| format!("--runs: {e}"))?;
                    if opts.runs == 0 {
                        return Err("--runs must be at least 1".into());
                    }
                }
                "--tolerance" => {
                    opts.tolerance = value("--tolerance")?
                        .parse()
                        .map_err(|e| format!("--tolerance: {e}"))?;
                    if !(opts.tolerance.is_finite() && opts.tolerance > 0.0) {
                        return Err("--tolerance must be positive".into());
                    }
                }
                "--budget" => {
                    opts.budget = value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?;
                    if !(opts.budget.is_finite() && opts.budget > 0.0) {
                        return Err("--budget must be positive".into());
                    }
                }
                "--json" => opts.json = Some(PathBuf::from(value("--json")?)),
                "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
                "--profile" => opts.profile = Some(PathBuf::from(value("--profile")?)),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn repo_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::current_dir().expect("cwd"));
    manifest
        .ancestors()
        .find(|p| p.join("Cargo.toml").exists() && p.join("crates").is_dir())
        .expect("workspace root above crates/xtask")
        .to_path_buf()
}

/// Runs `cargo bench -p mmsec-bench --bench micro` with the JSONL feed
/// enabled and returns the measured timing (ns) per benchmark name.
fn run_micro_suite(root: &Path, opts: &Options) -> Result<BTreeMap<String, u64>, String> {
    let json_path = opts
        .json
        .clone()
        .unwrap_or_else(|| root.join("target").join("bench-smoke.jsonl"));
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::remove_file(&json_path).ok();

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    // Run the suite `opts.runs` times, appending every pass to the same
    // JSONL feed; `parse_jsonl` keeps the per-bench MINIMUM of the
    // per-pass medians. The median absorbs in-pass contention spikes and
    // the minimum absorbs whole passes landing in a noisy window —
    // contention only ever inflates a measurement, so the smallest of N
    // passes is the closest to the code's true cost.
    for pass in 1..=opts.runs {
        eprintln!(
            "running micro benches (window {} ms, pass {pass}/{}) -> {}",
            opts.window_ms,
            opts.runs,
            json_path.display()
        );
        let status = Command::new(&cargo)
            .args(["bench", "-p", "mmsec-bench", "--bench", "micro"])
            .current_dir(root)
            .env("MMSEC_BENCH_JSON", &json_path)
            .env("MMSEC_BENCH_WINDOW_MS", opts.window_ms.to_string())
            .status()
            .map_err(|e| format!("spawning cargo bench: {e}"))?;
        if !status.success() {
            return Err(format!("cargo bench failed: {status}"));
        }
    }
    let text = std::fs::read_to_string(&json_path)
        .map_err(|e| format!("reading {}: {e}", json_path.display()))?;
    let means = parse_jsonl(&text);
    if means.is_empty() {
        return Err("benchmark run produced no JSONL records".into());
    }
    Ok(means)
}

/// Extracts `name -> median_ns` from the compat-criterion JSONL feed.
/// Hand-rolled (no serde in this workspace); tolerant of unknown keys.
/// The per-pass *median* (robust to in-pass contention spikes) is used
/// rather than the mean; duplicate names (multiple suite passes appended
/// to one feed) keep the minimum — see the rationale in
/// [`run_micro_suite`].
fn parse_jsonl(text: &str) -> BTreeMap<String, u64> {
    let mut out: BTreeMap<String, u64> = BTreeMap::new();
    for line in text.lines() {
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let Some(ns) = extract_u64(line, "median_ns") else {
            continue;
        };
        out.entry(name)
            .and_modify(|m| *m = (*m).min(ns))
            .or_insert(ns);
    }
    out
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let rest = &line[start..];
    let mut value = String::new();
    let mut chars = rest.chars();
    while let Some(ch) = chars.next() {
        match ch {
            '"' => return Some(value),
            '\\' => value.push(chars.next()?),
            other => value.push(other),
        }
    }
    None
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let marker = format!("\"{key}\":");
    let start = line.find(&marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn write_baseline(
    path: &Path,
    window_ms: u64,
    means: &BTreeMap<String, u64>,
) -> std::io::Result<()> {
    let mut text = String::from("{\n");
    text.push_str("  \"schema\": \"mmsec-bench-baseline/1\",\n");
    text.push_str(&format!("  \"window_ms\": {window_ms},\n"));
    text.push_str("  \"benches\": {\n");
    let last = means.len().saturating_sub(1);
    for (i, (name, mean)) in means.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        text.push_str(&format!("    \"{name}\": {mean}{comma}\n"));
    }
    text.push_str("  }\n}\n");
    std::fs::write(path, text)
}

/// Parses the committed baseline file back into `name -> mean_ns`.
fn parse_baseline(text: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        // Entries look like `"micro/foo": 1234`; skip schema/window keys.
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if key == "schema" || key == "window_ms" || key == "benches" {
            continue;
        }
        if let Ok(mean) = value.trim().parse::<u64>() {
            out.insert(key.to_string(), mean);
        }
    }
    out
}

fn bench_baseline(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    let means = run_micro_suite(&root, opts)?;
    let path = root.join(BASELINE_FILE);
    write_baseline(&path, opts.window_ms, &means).map_err(|e| format!("writing baseline: {e}"))?;
    println!("wrote {} ({} benches)", path.display(), means.len());
    Ok(true)
}

struct Row {
    name: String,
    baseline_ns: u64,
    current_ns: u64,
    ratio: f64,
    regressed: bool,
}

/// Compares a fresh run against the baseline. Returns the per-bench
/// rows plus names present in only one of the two sets.
fn compare(
    baseline: &BTreeMap<String, u64>,
    current: &BTreeMap<String, u64>,
    tolerance: f64,
) -> (Vec<Row>, Vec<String>, Vec<String>) {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (name, &base) in baseline {
        match current.get(name) {
            Some(&cur) => {
                let ratio = cur as f64 / base.max(1) as f64;
                rows.push(Row {
                    name: name.clone(),
                    baseline_ns: base,
                    current_ns: cur,
                    ratio,
                    regressed: ratio > 1.0 + tolerance,
                });
            }
            None => missing.push(name.clone()),
        }
    }
    let new: Vec<String> = current
        .keys()
        .filter(|n| !baseline.contains_key(*n))
        .cloned()
        .collect();
    (rows, missing, new)
}

fn render_report(
    rows: &[Row],
    missing: &[String],
    new: &[String],
    tolerance: f64,
) -> (String, bool) {
    let regressions: Vec<&Row> = rows.iter().filter(|r| r.regressed).collect();
    let failed = !regressions.is_empty() || !missing.is_empty();
    let mut md = String::from("# Bench regression report\n\n");
    md.push_str(&format!(
        "Tolerance: +{:.0}% over `{}`. Result: **{}**.\n\n",
        tolerance * 100.0,
        BASELINE_FILE,
        if failed { "FAIL" } else { "OK" }
    ));
    md.push_str("| benchmark | baseline | current | ratio | status |\n");
    md.push_str("|---|---:|---:|---:|---|\n");
    for r in rows {
        md.push_str(&format!(
            "| {} | {} ns | {} ns | {:.2}x | {} |\n",
            r.name,
            r.baseline_ns,
            r.current_ns,
            r.ratio,
            if r.regressed { "REGRESSED" } else { "ok" }
        ));
    }
    for name in missing {
        md.push_str(&format!("| {name} | — | missing | — | MISSING |\n"));
    }
    for name in new {
        md.push_str(&format!(
            "| {name} | new | — | — | new (re-run `cargo xtask bench-baseline`) |\n"
        ));
    }
    (md, failed)
}

/// On GitHub Actions, surfaces `report` on the job's summary page by
/// appending it to the file named by `GITHUB_STEP_SUMMARY` (the file
/// aggregates every step's summary, hence append). A no-op when the
/// variable is unset or empty (local runs).
fn append_step_summary(report: &str) {
    let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if summary.is_empty() {
        return;
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&summary)
        .and_then(|mut f| std::io::Write::write_all(&mut f, report.as_bytes()));
    match result {
        Ok(()) => eprintln!("report appended to GITHUB_STEP_SUMMARY ({summary})"),
        Err(e) => eprintln!("warning: cannot append to GITHUB_STEP_SUMMARY={summary}: {e}"),
    }
}

fn bench_check(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    let baseline_path = root.join(BASELINE_FILE);
    let baseline_text = std::fs::read_to_string(&baseline_path).map_err(|e| {
        format!(
            "reading {}: {e} (run `cargo xtask bench-baseline` first)",
            baseline_path.display()
        )
    })?;
    let baseline = parse_baseline(&baseline_text);
    if baseline.is_empty() {
        return Err(format!("{BASELINE_FILE} has no bench entries"));
    }
    let current = run_micro_suite(&root, opts)?;

    let (rows, missing, new) = compare(&baseline, &current, opts.tolerance);
    if !missing.is_empty() {
        // A baseline bench with no JSONL record means the harness never
        // measured it: the bench was renamed/removed without
        // re-baselining, or it produced zero samples inside the
        // measurement window (compat-criterion then prints "(no
        // samples)" and emits no record). Either way the wall cannot
        // vouch for it — fail loudly instead of letting the gap ride.
        return Err(format!(
            "bench(es) present in {BASELINE_FILE} but absent from the run's JSONL feed: \
             {}. Causes: bench renamed/removed (re-run `cargo xtask bench-baseline`) \
             or zero samples in the {} ms window (raise --window-ms).",
            missing.join(", "),
            opts.window_ms
        ));
    }
    let (report, failed) = render_report(&rows, &missing, &new, opts.tolerance);
    print!("{report}");

    let report_path = opts
        .report
        .clone()
        .unwrap_or_else(|| root.join("target").join("bench-report.md"));
    if let Some(parent) = report_path.parent() {
        std::fs::create_dir_all(parent).ok();
    }
    std::fs::write(&report_path, &report).map_err(|e| format!("writing report: {e}"))?;
    eprintln!("report written to {}", report_path.display());

    append_step_summary(&report);

    if failed {
        eprintln!(
            "bench-check FAILED: {} regression(s), {} missing bench(es)",
            rows.iter().filter(|r| r.regressed).count(),
            missing.len()
        );
    }
    Ok(!failed)
}

/// Formats a duration in seconds human-readably (µs/ms/s).
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Renders a `mmsec run --profile` JSON document as markdown.
fn render_profile(doc: &mmsec_obs::json::Json) -> Result<String, String> {
    let str_of = |k: &str| doc.get(k).and_then(|v| v.as_str().map(str::to_string));
    let num_of = |k: &str| doc.get(k).and_then(|v| v.as_f64());
    let schema = str_of("schema").ok_or("profile JSON has no schema field")?;
    if schema != "mmsec-profile/1" {
        return Err(format!(
            "unsupported profile schema {schema:?} (expected mmsec-profile/1)"
        ));
    }
    let mut md = String::from("# Engine phase profile\n\n");
    md.push_str(&format!(
        "- policy: `{}`\n",
        str_of("policy").unwrap_or_default()
    ));
    for key in ["steps", "decides", "decide_skips"] {
        md.push_str(&format!(
            "- {}: {}\n",
            key.replace('_', " "),
            num_of(key).unwrap_or(0.0) as u64
        ));
    }
    md.push_str(&format!(
        "- skip ratio: {:.1}%\n",
        num_of("skip_ratio").unwrap_or(0.0) * 100.0
    ));
    md.push_str(&format!(
        "- loop wall: {}\n",
        fmt_secs(num_of("loop_wall_seconds").unwrap_or(0.0))
    ));
    md.push_str(&format!(
        "- phase coverage: {:.1}% of loop wall\n\n",
        num_of("coverage").unwrap_or(0.0) * 100.0
    ));
    md.push_str("| phase | count | total | share | mean | p50 | p99 | max |\n");
    md.push_str("|---|---:|---:|---:|---:|---:|---:|---:|\n");
    let phases = doc
        .get("phases")
        .and_then(|v| v.as_arr())
        .ok_or("profile JSON has no phases array")?;
    for ph in phases {
        let g = |k: &str| ph.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        md.push_str(&format!(
            "| {} | {} | {} | {:.1}% | {} | {} | {} | {} |\n",
            ph.get("phase").and_then(|v| v.as_str()).unwrap_or("?"),
            g("count") as u64,
            fmt_secs(g("sum_seconds")),
            g("share") * 100.0,
            fmt_secs(g("mean_seconds")),
            fmt_secs(g("p50_seconds")),
            fmt_secs(g("p99_seconds")),
            fmt_secs(g("max_seconds")),
        ));
    }
    Ok(md)
}

fn obs_report(opts: &Options) -> Result<bool, String> {
    let Some(path) = &opts.profile else {
        return Err("obs-report requires --profile PATH (a `mmsec run --profile` artifact)".into());
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc =
        mmsec_obs::json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    let report = render_profile(&doc)?;
    print!("{report}");
    if let Some(report_path) = &opts.report {
        if let Some(parent) = report_path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(report_path, &report).map_err(|e| format!("writing report: {e}"))?;
        eprintln!("report written to {}", report_path.display());
    }
    append_step_summary(&report);
    Ok(true)
}

/// The bare-run reference point of the telemetry overhead gate.
const OBS_BASE_BENCH: &str = "micro/simulate_200_no_observer";
/// Telemetry variants gated against [`OBS_BASE_BENCH`].
const OBS_VARIANTS: &[(&str, &str)] = &[
    ("null observer", "micro/simulate_200_null_observer"),
    ("phase profiler", "micro/simulate_200_profiler"),
    ("flight recorder", "micro/simulate_200_flight"),
];

/// Renders the overhead table; returns `(markdown, failed)`.
fn render_overhead(means: &BTreeMap<String, u64>, budget: f64) -> Result<(String, bool), String> {
    let base = *means
        .get(OBS_BASE_BENCH)
        .ok_or(format!("bench feed has no `{OBS_BASE_BENCH}` record"))?;
    let mut md = String::from("# Telemetry overhead report\n\n");
    let mut failed = false;
    let mut rows = String::new();
    for (label, name) in OBS_VARIANTS {
        match means.get(*name) {
            Some(&cur) => {
                let overhead = cur as f64 / base.max(1) as f64 - 1.0;
                let over = overhead > budget;
                failed |= over;
                rows.push_str(&format!(
                    "| {label} | `{name}` | {cur} ns | {:+.1}% | {} |\n",
                    overhead * 100.0,
                    if over { "OVER BUDGET" } else { "ok" }
                ));
            }
            None => {
                failed = true;
                rows.push_str(&format!("| {label} | `{name}` | missing | — | MISSING |\n"));
            }
        }
    }
    md.push_str(&format!(
        "Budget: +{:.0}% over `{OBS_BASE_BENCH}` ({base} ns). Result: **{}**.\n\n",
        budget * 100.0,
        if failed { "FAIL" } else { "OK" }
    ));
    md.push_str("| variant | benchmark | timing | overhead | status |\n");
    md.push_str("|---|---|---:|---:|---|\n");
    md.push_str(&rows);
    Ok((md, failed))
}

fn obs_overhead(opts: &Options) -> Result<bool, String> {
    let root = repo_root();
    // Reuse the feed a preceding bench run left behind (CI runs this
    // right after bench-check); re-run the suite otherwise.
    let json_path = opts
        .json
        .clone()
        .unwrap_or_else(|| root.join("target").join("bench-smoke.jsonl"));
    let means = if json_path.is_file() {
        eprintln!("reusing bench feed {}", json_path.display());
        let text = std::fs::read_to_string(&json_path)
            .map_err(|e| format!("reading {}: {e}", json_path.display()))?;
        parse_jsonl(&text)
    } else {
        run_micro_suite(&root, opts)?
    };
    let (report, failed) = render_overhead(&means, opts.budget)?;
    print!("{report}");
    if let Some(report_path) = &opts.report {
        if let Some(parent) = report_path.parent() {
            std::fs::create_dir_all(parent).ok();
        }
        std::fs::write(report_path, &report).map_err(|e| format!("writing report: {e}"))?;
        eprintln!("report written to {}", report_path.display());
    }
    append_step_summary(&report);
    if failed {
        eprintln!("obs-overhead FAILED: telemetry overhead above budget");
    }
    Ok(!failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip_and_escapes() {
        let text = concat!(
            "{\"name\":\"micro/a\",\"mean_ns\":120,\"median_ns\":100,\"iters\":10}\n",
            "{\"name\":\"micro/quo\\\"te\",\"mean_ns\":7,\"median_ns\":7,\"iters\":3}\n",
            "garbage line\n",
        );
        let means = parse_jsonl(text);
        assert_eq!(means.len(), 2);
        assert_eq!(means["micro/a"], 100, "per-pass median is the statistic");
        assert_eq!(means["micro/quo\"te"], 7);
    }

    #[test]
    fn jsonl_duplicates_keep_minimum() {
        let text = concat!(
            "{\"name\":\"micro/a\",\"mean_ns\":120,\"median_ns\":100,\"iters\":10}\n",
            "{\"name\":\"micro/a\",\"mean_ns\":90,\"median_ns\":85,\"iters\":11}\n",
            "{\"name\":\"micro/a\",\"mean_ns\":300,\"median_ns\":290,\"iters\":4}\n",
        );
        let means = parse_jsonl(text);
        assert_eq!(means.len(), 1);
        assert_eq!(means["micro/a"], 85, "min of the per-pass medians wins");
    }

    #[test]
    fn baseline_write_parse_roundtrip() {
        let mut means = BTreeMap::new();
        means.insert("micro/a".to_string(), 1500u64);
        means.insert("micro/b".to_string(), 42u64);
        let dir = std::env::temp_dir().join(format!("xtask-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        write_baseline(&path, 150, &means).unwrap();
        let parsed = parse_baseline(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed, means);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let mut baseline = BTreeMap::new();
        baseline.insert("fast".to_string(), 100u64);
        baseline.insert("slow".to_string(), 100u64);
        baseline.insert("gone".to_string(), 100u64);
        let mut current = BTreeMap::new();
        current.insert("fast".to_string(), 110u64); // +10% — within tolerance
        current.insert("slow".to_string(), 140u64); // +40% — regression
        current.insert("fresh".to_string(), 5u64);
        let (rows, missing, new) = compare(&baseline, &current, 0.25);
        assert_eq!(rows.len(), 2);
        assert!(!rows.iter().find(|r| r.name == "fast").unwrap().regressed);
        assert!(rows.iter().find(|r| r.name == "slow").unwrap().regressed);
        assert_eq!(missing, vec!["gone".to_string()]);
        assert_eq!(new, vec!["fresh".to_string()]);

        let (report, failed) = render_report(&rows, &missing, &new, 0.25);
        assert!(failed);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("MISSING"));
        assert!(report.contains("**FAIL**"));
    }

    #[test]
    fn step_summary_appends_to_the_named_file() {
        let dir = std::env::temp_dir().join(format!("xtask-summary-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("summary.md");
        std::fs::write(&path, "# earlier step\n").unwrap();
        // Safety note: test-local env mutation; no other xtask test reads
        // GITHUB_STEP_SUMMARY.
        std::env::set_var("GITHUB_STEP_SUMMARY", &path);
        append_step_summary("# Bench regression report\n");
        std::env::set_var("GITHUB_STEP_SUMMARY", "");
        append_step_summary("must not crash when unset/empty");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "# earlier step\n# Bench regression report\n");
        std::env::remove_var("GITHUB_STEP_SUMMARY");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overhead_gate_flags_only_over_budget_variants() {
        let mut means = BTreeMap::new();
        means.insert(OBS_BASE_BENCH.to_string(), 1000u64);
        means.insert("micro/simulate_200_null_observer".to_string(), 1010u64);
        means.insert("micro/simulate_200_profiler".to_string(), 1200u64);
        means.insert("micro/simulate_200_flight".to_string(), 1900u64);
        let (report, failed) = render_overhead(&means, 0.50).unwrap();
        assert!(failed, "flight at +90% must trip a 50% budget");
        assert!(report.contains("OVER BUDGET"));
        assert!(report.contains("**FAIL**"));

        let (report, failed) = render_overhead(&means, 1.0).unwrap();
        assert!(!failed);
        assert!(report.contains("**OK**"));

        means.remove("micro/simulate_200_profiler");
        let (report, failed) = render_overhead(&means, 1.0).unwrap();
        assert!(failed, "a missing variant must fail the gate");
        assert!(report.contains("MISSING"));

        means.remove(OBS_BASE_BENCH);
        assert!(render_overhead(&means, 1.0).is_err());
    }

    #[test]
    fn profile_report_renders_phases() {
        let text = r#"{
            "schema": "mmsec-profile/1",
            "policy": "srpt",
            "steps": 10,
            "decides": 8,
            "decide_skips": 2,
            "skip_ratio": 0.2,
            "loop_wall_seconds": 0.5,
            "coverage": 0.99,
            "phases": [
                {"phase": "decide", "count": 8, "sum_seconds": 0.4,
                 "mean_seconds": 0.05, "p50_seconds": 0.04,
                 "p99_seconds": 0.09, "max_seconds": 0.1, "share": 0.8}
            ]
        }"#;
        let doc = mmsec_obs::json::parse(text).unwrap();
        let md = render_profile(&doc).unwrap();
        assert!(md.contains("`srpt`"));
        assert!(md.contains("| decide | 8 |"));
        assert!(md.contains("phase coverage: 99.0%"));

        let bad = mmsec_obs::json::parse("{\"schema\": \"other/9\"}").unwrap();
        assert!(render_profile(&bad).is_err());
    }

    #[test]
    fn clean_comparison_passes() {
        let mut baseline = BTreeMap::new();
        baseline.insert("a".to_string(), 100u64);
        let (rows, missing, new) = compare(&baseline, &baseline, 0.25);
        let (report, failed) = render_report(&rows, &missing, &new, 0.25);
        assert!(!failed);
        assert!(report.contains("**OK**"));
    }
}
