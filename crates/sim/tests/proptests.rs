//! Property-based tests for the simulation substrate.

use mmsec_sim::interval::{Interval, IntervalSet};
use mmsec_sim::time::Time;
use mmsec_sim::{CalendarQueue, EventQueue};
use proptest::prelude::*;

/// Strategy: a well-formed interval with endpoints in [0, 1000].
fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0.0f64..1000.0, 0.0f64..50.0).prop_map(|(start, len)| Interval::from_secs(start, start + len))
}

proptest! {
    /// Inserting intervals one by one never yields overlapping members,
    /// and the total length equals the sum of successfully inserted ones.
    #[test]
    fn interval_set_stays_disjoint(ivs in prop::collection::vec(interval_strategy(), 0..40)) {
        let mut set = IntervalSet::new();
        let mut accepted_len = 0.0f64;
        for iv in ivs {
            if set.insert(iv).is_ok() {
                accepted_len += iv.length().seconds();
            }
        }
        // Members are sorted and pairwise non-overlapping.
        let members: Vec<_> = set.iter().copied().collect();
        for w in members.windows(2) {
            prop_assert!(!w[0].overlaps(&w[1]));
            prop_assert!(w[0].start() <= w[1].start());
        }
        // Total measure is preserved by insertion/merging.
        let total = set.total_length().seconds();
        prop_assert!((total - accepted_len).abs() <= 1e-6 * accepted_len.max(1.0));
    }

    /// `overlaps` on a set agrees with the naive any-member check.
    #[test]
    fn set_overlap_matches_naive(
        ivs in prop::collection::vec(interval_strategy(), 0..25),
        probe in interval_strategy(),
    ) {
        let mut set = IntervalSet::new();
        let mut members = Vec::new();
        for iv in ivs {
            if set.insert(iv).is_ok() {
                members.push(iv);
            }
        }
        // Merging may have coalesced touching members, but measure-overlap
        // with the probe is invariant under coalescing.
        let naive = members.iter().any(|m| m.overlaps(&probe));
        prop_assert_eq!(set.overlaps(&probe), naive);
    }

    /// Event queue pops in non-decreasing time order regardless of the push
    /// order, and returns exactly the pushed payloads.
    #[test]
    fn event_queue_sorts(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::new(t), 0, i);
        }
        let mut last = f64::MIN;
        let mut seen = vec![false; times.len()];
        while let Some((t, i)) = q.pop() {
            prop_assert!(t.seconds() >= last);
            last = t.seconds();
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// The calendar queue's pop stream is bit-identical to the reference
    /// heap's under an arbitrary interleaving of pushes (including
    /// simultaneous instants, rank ties, and far-future outliers) and
    /// pops. This is the substrate half of the engine's queue-equivalence
    /// guarantee.
    #[test]
    fn calendar_queue_matches_heap(
        ops in prop::collection::vec(
            // (is_push, time offset kind, rank) — offsets picked so pushes
            // never precede the popped frontier.
            (any::<bool>(), 0u8..6, 0u8..4, 0.0f64..32.0),
            1..300,
        ),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut frontier = 0.0f64;
        let mut id = 0u64;
        for (is_push, kind, rank, jitter) in ops {
            if is_push {
                let offset = match kind {
                    0 => 0.0,            // exactly simultaneous
                    1 => 1.0e8,          // far-future outlier
                    2 => jitter * 1e-4,  // sub-bucket spacing
                    _ => jitter,
                };
                let t = Time::new(frontier + offset);
                cal.push(t, rank, id);
                heap.push(t, rank, id);
                id += 1;
            } else {
                prop_assert_eq!(cal.peek_time(), heap.peek_time());
                let a = cal.pop_ranked();
                let b = heap.pop_ranked();
                prop_assert_eq!(a, b);
                if let Some((t, _, _)) = a {
                    frontier = t.seconds();
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        loop {
            let a = cal.pop_ranked();
            let b = heap.pop_ranked();
            prop_assert_eq!(a, b);
            if a.is_none() { break; }
        }
    }

    /// Derived seeds are collision-free over a sizeable index range.
    #[test]
    fn seed_derive_no_trivial_collisions(root in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for i in 0..512u64 {
            prop_assert!(seen.insert(mmsec_sim::seed::derive(root, "instance", i)));
        }
    }
}
