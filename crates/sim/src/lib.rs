//! `mmsec-sim` — virtual-time substrate for the max-stretch edge-cloud
//! scheduling simulator.
//!
//! This crate holds the domain-agnostic pieces every other crate builds on:
//!
//! * [`time::Time`] — finite, totally ordered virtual time;
//! * [`interval::Interval`] / [`interval::IntervalSet`] — the disjoint
//!   interval families a schedule is made of (paper §III-B);
//! * [`event_queue::EventQueue`] — deterministic future-event list for the
//!   event-based algorithms of paper §V (binary-heap reference);
//! * [`calendar::CalendarQueue`] — the calendar/bucket variant with a
//!   bit-identical pop order, used by the engine hot path;
//! * [`seed`] — deterministic seed derivation for reproducible experiments.

#![warn(missing_docs)]

pub mod calendar;
pub mod event_queue;
pub mod interval;
pub mod seed;
pub mod time;

pub use calendar::CalendarQueue;
pub use event_queue::EventQueue;
pub use interval::{Interval, IntervalSet};
pub use time::{Time, TIME_EPS};
