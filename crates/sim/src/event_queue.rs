//! Deterministic future-event list.
//!
//! A binary-heap priority queue keyed by `(time, rank, sequence)`:
//! * `time` — virtual instant at which the event fires;
//! * `rank` — caller-supplied small integer used to order simultaneous
//!   events of different kinds deterministically (e.g. completions before
//!   releases, so that freed resources are visible to newly released jobs);
//! * `sequence` — monotonically increasing insertion counter that breaks
//!   the remaining ties, making the pop order a pure function of the push
//!   order.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a virtual instant.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry<E> {
    time: Time,
    rank: u8,
    seq: u64,
    payload: E,
}

impl<E: Eq> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority queue of timed events.
#[derive(Clone, Debug)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped_until: Time,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped_until: Time::new(f64::MIN),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at `time` with tie-break `rank` (lower fires
    /// first among simultaneous events).
    ///
    /// Panics (debug builds) if the event is scheduled strictly before an
    /// already-popped instant: the simulation must never travel back in
    /// time.
    pub fn push(&mut self, time: Time, rank: u8, payload: E) {
        debug_assert!(
            time.approx_ge(self.popped_until),
            "event at {time:?} scheduled before current time {:?}",
            self.popped_until
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            rank,
            seq,
            payload,
        });
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the next event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_ranked().map(|(t, _, payload)| (t, payload))
    }

    /// Removes and returns the next event as `(time, rank, payload)`.
    ///
    /// Exposing the rank lets callers classify the event without matching
    /// on the payload — e.g. the simulation engine tags which rank classes
    /// are decision-relevant (can change a scheduling decision) when
    /// maintaining its decision epoch.
    pub fn pop_ranked(&mut self) -> Option<(Time, u8, E)> {
        let e = self.heap.pop()?;
        self.popped_until = e.time;
        Some((e.time, e.rank, e.payload))
    }

    /// Removes every event scheduled at (approximately) the same instant as
    /// the head, in deterministic order.
    pub fn pop_simultaneous(&mut self) -> Vec<(Time, E)> {
        let Some(head) = self.peek_time() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while let Some(t) = self.peek_time() {
            if t.approx_eq(head) {
                out.push(self.pop().expect("peeked"));
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::new(3.0), 0, "c");
        q.push(Time::new(1.0), 0, "a");
        q.push(Time::new(2.0), 0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Time::new(1.0), "a")));
        assert_eq!(q.pop(), Some((Time::new(2.0), "b")));
        assert_eq!(q.pop(), Some((Time::new(3.0), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn rank_breaks_simultaneous_ties() {
        let mut q = EventQueue::new();
        q.push(Time::new(1.0), 2, "release");
        q.push(Time::new(1.0), 0, "completion");
        q.push(Time::new(1.0), 1, "comm");
        assert_eq!(q.pop().unwrap().1, "completion");
        assert_eq!(q.pop().unwrap().1, "comm");
        assert_eq!(q.pop().unwrap().1, "release");
    }

    #[test]
    fn sequence_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        q.push(Time::new(1.0), 0, "first");
        q.push(Time::new(1.0), 0, "second");
        q.push(Time::new(1.0), 0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn pop_ranked_exposes_the_rank() {
        let mut q = EventQueue::new();
        q.push(Time::new(1.0), 2, "release");
        q.push(Time::new(1.0), 0, "boundary");
        assert_eq!(q.pop_ranked(), Some((Time::new(1.0), 0, "boundary")));
        assert_eq!(q.pop_ranked(), Some((Time::new(1.0), 2, "release")));
        assert_eq!(q.pop_ranked(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::new(5.0), 0, 42u32);
        assert_eq!(q.peek_time(), Some(Time::new(5.0)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::new(5.0), 42)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_simultaneous_groups_same_instant() {
        let mut q = EventQueue::new();
        q.push(Time::new(1.0), 0, 1u32);
        q.push(Time::new(1.0), 1, 2);
        q.push(Time::new(2.0), 0, 3);
        let batch = q.pop_simultaneous();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].1, 1);
        assert_eq!(batch[1].1, 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_simultaneous().len(), 1);
        assert!(q.pop_simultaneous().is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled before")]
    fn rejects_time_travel() {
        let mut q = EventQueue::new();
        q.push(Time::new(2.0), 0, ());
        q.pop();
        q.push(Time::new(1.0), 0, ());
    }
}
