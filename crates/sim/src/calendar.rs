//! Calendar (bucket) future-event queue.
//!
//! A drop-in replacement for [`EventQueue`](crate::EventQueue) keyed by the
//! same `(time, rank, sequence)` total order, so the pop stream is
//! **bit-identical** to the binary heap's — the engine can swap one for the
//! other without perturbing a single scheduling decision. The win is the
//! access pattern: simulation event times advance almost monotonically, so
//! a calendar queue turns the heap's `O(log n)` pointer-chasing sift into
//! an `O(1)` amortized append/pop on a short, contiguous, mostly-sorted
//! day bucket.
//!
//! # Layout
//!
//! * Virtual time is cut into *days* of `width` seconds starting at
//!   `origin`; day `d` covers `[origin + d·width, origin + (d+1)·width)`.
//! * `nb` (a power of two) day buckets form a ring: day `d` lands in
//!   bucket `d & (nb − 1)`. Each bucket is kept sorted **descending** by
//!   `(time, rank, seq)`, so the next event of a day is always the
//!   bucket's tail — pops are `Vec::pop`.
//! * Events more than `nb` days ahead of the rebuild point go to an
//!   unsorted *overflow* calendar (with its running minimum cached for
//!   `O(1)` peeks); when the bucketed window drains, the overflow is
//!   redistributed into a fresh window.
//!
//! # Bucket sizing
//!
//! `width` is the *observed mean event spacing* — `(t_max − t_min)/(N−1)`
//! over the events present at rebuild time — and `nb` the event count
//! rounded up to a power of two. That targets one event per bucket on
//! average regardless of the workload's time scale. When occupancy drifts
//! (`bucketed > 2·nb` after growth), the whole calendar is rebuilt with
//! re-observed spacing. None of these heuristics affect the pop order —
//! only how much memory is touched to find it.

use crate::time::Time;

/// An event scheduled at a virtual instant, tagged with its day index.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Entry<E> {
    time: Time,
    rank: u8,
    seq: u64,
    day: i64,
    payload: E,
}

impl<E> Entry<E> {
    /// The total-order key shared with the reference heap queue.
    #[inline]
    fn key(&self) -> (Time, u8, u64) {
        (self.time, self.rank, self.seq)
    }
}

/// Largest permitted bucket count (bounds rebuild allocation).
const MAX_BUCKETS: usize = 1 << 22;

/// Day indices are clamped into this range so ring arithmetic can never
/// overflow, whatever `width` the sizing heuristic picked.
const MAX_DAY: i64 = i64::MAX / 4;

/// A deterministic min-priority calendar queue of timed events.
///
/// Same contract as [`EventQueue`](crate::EventQueue): pops come in
/// `(time, rank, seq)` order, where `seq` is the insertion counter — the
/// pop order is a pure function of the push order, and identical to the
/// heap's for any push sequence.
#[derive(Clone, Debug)]
pub struct CalendarQueue<E: Eq> {
    /// Ring of day buckets, each sorted descending by key (pop the tail).
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket count; always a power of two (0 until the first rebuild).
    nb: usize,
    /// Seconds per day bucket.
    width: f64,
    /// Virtual time of day 0.
    origin: f64,
    /// Lower bound on the day of every bucketed entry (the pop cursor).
    cur_day: i64,
    /// Entries with `day >= overflow_day` live in `overflow`.
    overflow_day: i64,
    /// Far-future events, unsorted.
    overflow: Vec<Entry<E>>,
    /// Cached minimum key in `overflow` (for O(1) peeks while drained).
    overflow_min: Option<(Time, u8, u64)>,
    /// Number of entries currently in `buckets`.
    bucketed: usize,
    next_seq: u64,
    popped_until: Time,
}

impl<E: Eq> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: Vec::new(),
            nb: 0,
            width: 1.0,
            origin: 0.0,
            cur_day: 0,
            overflow_day: 0,
            overflow: Vec::new(),
            overflow_min: None,
            bucketed: 0,
            next_seq: 0,
            popped_until: Time::new(f64::MIN),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.bucketed + self.overflow.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Day index of `time` under the current calendar parameters.
    #[inline]
    fn day_of(&self, time: Time) -> i64 {
        let d = ((time.seconds() - self.origin) / self.width).floor();
        // `as` saturates; clamp keeps ring/window arithmetic overflow-free.
        (d as i64).clamp(-MAX_DAY, MAX_DAY)
    }

    /// Schedules `payload` at `time` with tie-break `rank` (lower fires
    /// first among simultaneous events).
    ///
    /// Panics (debug builds) if the event is scheduled strictly before an
    /// already-popped instant: the simulation must never travel back in
    /// time.
    pub fn push(&mut self, time: Time, rank: u8, payload: E) {
        debug_assert!(
            time.approx_ge(self.popped_until),
            "event at {time:?} scheduled before current time {:?}",
            self.popped_until
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            time,
            rank,
            seq,
            day: 0,
            payload,
        };
        self.insert(entry);
        if self.nb > 0 && self.bucketed > 2 * self.nb {
            self.rebuild();
        }
    }

    /// Places an entry in its bucket or the overflow calendar.
    fn insert(&mut self, mut entry: Entry<E>) {
        if self.nb == 0 {
            // No calendar yet: stage everything in overflow; the first pop
            // builds the window.
            Self::note_overflow_min(&mut self.overflow_min, &entry);
            self.overflow.push(entry);
            return;
        }
        // Clamp the day up to the pop cursor: an event within tolerance of
        // the current instant must stay reachable by the forward scan. Its
        // key still sorts it to the bucket tail, so pop order is unharmed.
        let day = self.day_of(entry.time).max(self.cur_day);
        if day >= self.overflow_day {
            Self::note_overflow_min(&mut self.overflow_min, &entry);
            self.overflow.push(entry);
            return;
        }
        entry.day = day;
        let slot = (day as usize) & (self.nb - 1);
        let bucket = &mut self.buckets[slot];
        // Keep the bucket sorted descending by key; keys are unique (seq).
        let key = entry.key();
        let pos = bucket
            .binary_search_by(|probe| key.cmp(&probe.key()))
            .unwrap_err();
        bucket.insert(pos, entry);
        self.bucketed += 1;
    }

    #[inline]
    fn note_overflow_min(min: &mut Option<(Time, u8, u64)>, entry: &Entry<E>) {
        let key = entry.key();
        if min.map_or(true, |m| key < m) {
            *min = Some(key);
        }
    }

    /// Rebuilds the calendar window from every pending entry, re-observing
    /// the event spacing. Pop order is unaffected (it is defined by the
    /// entry keys alone).
    fn rebuild(&mut self) {
        for bucket in &mut self.buckets {
            self.overflow.append(bucket);
        }
        self.bucketed = 0;
        let count = self.overflow.len();
        if count == 0 {
            self.overflow_min = None;
            return;
        }
        // Observed event spacing: the *median* positive gap between sorted
        // event times. The median (unlike the mean) is robust to a few
        // far-future outliers, which would otherwise stretch the window so
        // wide that the near cluster collapses into a single bucket.
        let mut times: Vec<f64> = self.overflow.iter().map(|e| e.time.seconds()).collect();
        times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite by Time invariant"));
        let t_min = times[0];
        let mut gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.retain(|&g| g > 0.0);
        self.width = if gaps.is_empty() {
            // Degenerate span (all simultaneous): one bucket-day per second.
            1.0
        } else {
            let mid = gaps.len() / 2;
            let (_, median, _) =
                gaps.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("finite"));
            *median
        };
        self.origin = t_min;
        let nb = count.next_power_of_two().clamp(4, MAX_BUCKETS);
        if self.nb != nb {
            self.nb = nb;
            self.buckets.clear();
            self.buckets.resize_with(nb, Vec::new);
        }
        self.cur_day = 0;
        self.overflow_day = nb as i64;
        self.overflow_min = None;
        let mut staged = std::mem::take(&mut self.overflow);
        for mut entry in staged.drain(..) {
            let day = self.day_of(entry.time).max(self.cur_day);
            if day >= self.overflow_day {
                Self::note_overflow_min(&mut self.overflow_min, &entry);
                self.overflow.push(entry);
            } else {
                entry.day = day;
                self.buckets[(day as usize) & (self.nb - 1)].push(entry);
                self.bucketed += 1;
            }
        }
        // Reuse the drained staging vector's allocation if the overflow
        // ended up empty (cheap; both are usually small here).
        if self.overflow.capacity() < staged.capacity() && self.overflow.is_empty() {
            self.overflow = staged;
        }
        for bucket in &mut self.buckets {
            bucket.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        }
    }

    /// Finds the day whose bucket tail is the global minimum, or `None`
    /// when the window is drained. Only scans empty ring slots, so the
    /// cost is bounded by the window span and amortized by pops advancing
    /// `cur_day`.
    #[inline]
    fn find_day(&self) -> Option<i64> {
        if self.bucketed == 0 {
            return None;
        }
        let mask = self.nb - 1;
        let mut d = self.cur_day;
        while d < self.overflow_day {
            if let Some(last) = self.buckets[(d as usize) & mask].last() {
                if last.day == d {
                    return Some(d);
                }
            }
            d += 1;
        }
        // Unreachable by the window invariant (every bucketed entry has
        // `cur_day <= day < overflow_day`); kept total for safety.
        debug_assert!(false, "bucketed entry outside the calendar window");
        None
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        match self.find_day() {
            Some(d) => self.buckets[(d as usize) & (self.nb - 1)]
                .last()
                .map(|e| e.time),
            // Window drained: the minimum (if any) is in overflow. Day
            // monotonicity in time guarantees overflow keys exceed every
            // bucketed key, so this branch is only correct — and only
            // taken — when the window is empty.
            None => self.overflow_min.map(|(t, _, _)| t),
        }
    }

    /// Removes and returns the next event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_ranked().map(|(t, _, payload)| (t, payload))
    }

    /// Removes and returns the next event as `(time, rank, payload)`.
    pub fn pop_ranked(&mut self) -> Option<(Time, u8, E)> {
        if self.bucketed == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.rebuild();
        }
        let d = match self.find_day() {
            Some(d) => d,
            None => {
                // Defensive: re-window and retry once.
                self.rebuild();
                self.find_day()?
            }
        };
        self.cur_day = d;
        let entry = self.buckets[(d as usize) & (self.nb - 1)]
            .pop()
            .expect("find_day returned a non-empty bucket");
        self.bucketed -= 1;
        self.popped_until = entry.time;
        Some((entry.time, entry.rank, entry.payload))
    }

    /// Removes every event scheduled at (approximately) the same instant as
    /// the head, in deterministic order.
    pub fn pop_simultaneous(&mut self) -> Vec<(Time, E)> {
        let Some(head) = self.peek_time() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        while let Some(t) = self.peek_time() {
            if t.approx_eq(head) {
                out.push(self.pop().expect("peeked"));
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(Time::new(3.0), 0, "c");
        q.push(Time::new(1.0), 0, "a");
        q.push(Time::new(2.0), 0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((Time::new(1.0), "a")));
        assert_eq!(q.pop(), Some((Time::new(2.0), "b")));
        assert_eq!(q.pop(), Some((Time::new(3.0), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn rank_breaks_simultaneous_ties() {
        let mut q = CalendarQueue::new();
        q.push(Time::new(1.0), 2, "release");
        q.push(Time::new(1.0), 0, "completion");
        q.push(Time::new(1.0), 1, "comm");
        assert_eq!(q.pop().unwrap().1, "completion");
        assert_eq!(q.pop().unwrap().1, "comm");
        assert_eq!(q.pop().unwrap().1, "release");
    }

    #[test]
    fn sequence_breaks_remaining_ties() {
        let mut q = CalendarQueue::new();
        q.push(Time::new(1.0), 0, "first");
        q.push(Time::new(1.0), 0, "second");
        q.push(Time::new(1.0), 0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn pop_ranked_exposes_the_rank() {
        let mut q = CalendarQueue::new();
        q.push(Time::new(1.0), 2, "release");
        q.push(Time::new(1.0), 0, "boundary");
        assert_eq!(q.pop_ranked(), Some((Time::new(1.0), 0, "boundary")));
        assert_eq!(q.pop_ranked(), Some((Time::new(1.0), 2, "release")));
        assert_eq!(q.pop_ranked(), None);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = CalendarQueue::new();
        q.push(Time::new(5.0), 0, 42u32);
        assert_eq!(q.peek_time(), Some(Time::new(5.0)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::new(5.0), 42)));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn pop_simultaneous_groups_same_instant() {
        let mut q = CalendarQueue::new();
        q.push(Time::new(1.0), 0, 1u32);
        q.push(Time::new(1.0), 1, 2);
        q.push(Time::new(2.0), 0, 3);
        let batch = q.pop_simultaneous();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].1, 1);
        assert_eq!(batch[1].1, 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_simultaneous().len(), 1);
        assert!(q.pop_simultaneous().is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled before")]
    fn rejects_time_travel() {
        let mut q = CalendarQueue::new();
        q.push(Time::new(2.0), 0, ());
        q.pop();
        q.push(Time::new(1.0), 0, ());
    }

    #[test]
    fn far_future_events_spill_to_overflow_and_refill() {
        // A dense near cluster plus events millennia ahead: the cluster
        // defines the bucket width, the tail overflows, and draining the
        // window rebuilds a new one from the overflow.
        let mut q = CalendarQueue::new();
        for i in 0..64u32 {
            q.push(Time::new(f64::from(i) * 0.5), 0, i);
        }
        for i in 0..16u32 {
            q.push(Time::new(1.0e9 + f64::from(i)), 0, 1000 + i);
        }
        // Force the initial window build, then verify the far tail is in
        // overflow rather than the window.
        assert_eq!(q.peek_time(), Some(Time::new(0.0)));
        assert_eq!(q.pop().unwrap().1, 0);
        assert!(!q.overflow.is_empty(), "far-future tail should overflow");
        let mut got = Vec::new();
        while let Some((t, v)) = q.pop() {
            got.push((t, v));
        }
        assert_eq!(got.len(), 79);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(got.last().unwrap().1, 1015);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn drained_queue_accepts_late_pushes() {
        // Drain completely, then push later events (a `Session::submit`
        // while blocked does exactly this) and pop them in order.
        let mut q = CalendarQueue::new();
        q.push(Time::new(1.0), 0, "a");
        q.push(Time::new(2.0), 0, "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
        q.push(Time::new(10.0), 1, "late");
        q.push(Time::new(10.0), 0, "later-but-ranked-first");
        q.push(Time::new(5.0), 3, "soon");
        assert_eq!(q.peek_time(), Some(Time::new(5.0)));
        assert_eq!(q.pop().unwrap().1, "soon");
        assert_eq!(q.pop().unwrap().1, "later-but-ranked-first");
        assert_eq!(q.pop().unwrap().1, "late");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        // Deterministic pseudo-random interleaving of pushes and pops,
        // mirrored into the reference heap queue; streams must agree
        // exactly (times, ranks, and payload identity).
        let mut cal = CalendarQueue::new();
        let mut heap = crate::EventQueue::new();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next_time = 0.0f64;
        let mut id = 0u32;
        for _ in 0..4000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let r = (state >> 33) as u32;
            if r % 3 < 2 {
                // Push at the current frontier plus a varied offset; every
                // fourth push is far-future, every fifth simultaneous.
                let offset = match r % 5 {
                    0 => 0.0,
                    1 => 1.0e7,
                    _ => f64::from(r % 97) * 0.125,
                };
                let t = Time::new(next_time + offset);
                let rank = (r % 4) as u8;
                cal.push(t, rank, id);
                heap.push(t, rank, id);
                id += 1;
            } else {
                assert_eq!(cal.peek_time(), heap.peek_time());
                let a = cal.pop_ranked();
                let b = heap.pop_ranked();
                assert_eq!(a, b);
                if let Some((t, _, _)) = a {
                    next_time = t.seconds();
                }
            }
            assert_eq!(cal.len(), heap.len());
        }
        loop {
            let a = cal.pop_ranked();
            let b = heap.pop_ranked();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn all_simultaneous_degenerate_span() {
        // Zero time span: the width heuristic has no spacing to observe;
        // ordering must still hold by (rank, seq).
        let mut q = CalendarQueue::new();
        for i in 0..100u32 {
            q.push(Time::new(7.0), (i % 3) as u8, i);
        }
        let mut prev: Option<(u8, u32)> = None;
        let mut n = 0;
        while let Some((t, rank, v)) = q.pop_ranked() {
            assert_eq!(t, Time::new(7.0));
            if let Some((pr, pv)) = prev {
                assert!(rank > pr || (rank == pr && v > pv));
            }
            prev = Some((rank, v));
            n += 1;
        }
        assert_eq!(n, 100);
    }

    #[test]
    fn growth_triggers_rebuild_without_reordering() {
        // Push far more events than the initial window was sized for, in a
        // pattern that forces occupancy past the rebuild threshold.
        let mut q = CalendarQueue::new();
        q.push(Time::new(0.0), 0, 0u32);
        assert_eq!(q.pop().unwrap().1, 0); // builds a tiny window
        let mut expect = Vec::new();
        for i in 0..500u32 {
            let t = Time::new(1.0 + f64::from(i % 50) * 0.01);
            q.push(t, 0, i + 1);
            expect.push((t, i + 1));
        }
        expect.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut got = Vec::new();
        while let Some((t, v)) = q.pop() {
            got.push((t, v));
        }
        assert_eq!(got, expect);
    }
}
