//! Deterministic seed derivation.
//!
//! Experiments run thousands of independently seeded instances, possibly in
//! parallel; every instance seed must be a pure function of the experiment
//! seed and the instance index so that results are reproducible regardless
//! of thread scheduling. We derive sub-seeds with SplitMix64 (Steele,
//! Lea & Flood, OOPSLA'14), a tiny, high-quality 64-bit mixer that needs no
//! external dependency.

/// SplitMix64 stream: a deterministic sequence of 64-bit values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Derives the seed for sub-stream `index` of the stream named `label`
/// under the experiment seed `root`.
///
/// `label` keeps different uses (e.g. "instance", "shuffle") statistically
/// independent even at the same index.
pub fn derive(root: u64, label: &str, index: u64) -> u64 {
    // Fold the label into the root with FNV-1a, then mix with the index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ root;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut sm = SplitMix64::new(h ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 (cross-checked against the
        // published SplitMix64 C implementation).
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Same seed, same prefix.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut sm = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = sm.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn derive_depends_on_all_inputs() {
        let base = derive(1, "instance", 0);
        assert_ne!(base, derive(2, "instance", 0), "root changes seed");
        assert_ne!(base, derive(1, "shuffle", 0), "label changes seed");
        assert_ne!(base, derive(1, "instance", 1), "index changes seed");
        assert_eq!(base, derive(1, "instance", 0), "deterministic");
    }

    #[test]
    fn derive_spreads_indices() {
        // Adjacent indices must not produce adjacent seeds.
        let s0 = derive(99, "x", 0);
        let s1 = derive(99, "x", 1);
        assert!(s0.abs_diff(s1) > 1 << 20);
    }
}
