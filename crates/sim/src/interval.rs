//! Half-open time intervals and disjoint interval sets.
//!
//! A schedule in the paper's model (§III-B) is a family of *disjoint
//! execution intervals* per job plus disjoint uplink/downlink communication
//! intervals; the validity checker reasons entirely in terms of these sets.
//! Intervals are half-open `[start, end)` so that back-to-back activities
//! (one ending exactly when the next begins) do not overlap.

use crate::time::{approx, Time};
use std::fmt;

/// A half-open interval `[start, end)` of virtual time with `start ≤ end`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Interval {
    start: Time,
    end: Time,
}

impl Interval {
    /// Creates an interval; panics if `end < start` (beyond tolerance).
    pub fn new(start: Time, end: Time) -> Self {
        assert!(
            end.approx_ge(start),
            "interval end {end:?} precedes start {start:?}"
        );
        Interval {
            start,
            end: end.max(start),
        }
    }

    /// Convenience constructor from raw seconds.
    pub fn from_secs(start: f64, end: f64) -> Self {
        Interval::new(Time::new(start), Time::new(end))
    }

    /// Left endpoint (inclusive).
    #[inline]
    pub fn start(&self) -> Time {
        self.start
    }

    /// Right endpoint (exclusive).
    #[inline]
    pub fn end(&self) -> Time {
        self.end
    }

    /// Interval length `end − start` (always ≥ 0).
    #[inline]
    pub fn length(&self) -> Time {
        (self.end - self.start).clamp_non_negative()
    }

    /// True when the interval has (approximately) zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.length().is_zero_or_negative()
    }

    /// True when `t ∈ [start, end)`.
    pub fn contains(&self, t: Time) -> bool {
        t >= self.start && t < self.end
    }

    /// True when the two intervals overlap on a set of positive measure
    /// (touching endpoints do NOT count as overlap, up to tolerance).
    pub fn overlaps(&self, other: &Interval) -> bool {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        approx::gt(hi.seconds(), lo.seconds())
    }

    /// Intersection, if of positive measure.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        if approx::gt(hi.seconds(), lo.seconds()) {
            Some(Interval::new(lo, hi))
        } else {
            None
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6})",
            self.start.seconds(),
            self.end.seconds()
        )
    }
}

/// A set of pairwise-disjoint intervals, kept sorted by start time.
///
/// Inserting an interval that overlaps an existing member is an error at
/// the call site that the structure reports (the engine never produces
/// overlapping activity intervals on one resource; the validity checker
/// uses this to detect violations).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntervalSet {
    /// Sorted by start; pairwise disjoint (positive-measure sense).
    items: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of member intervals.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the set has no member intervals.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Member intervals, sorted by start time.
    pub fn iter(&self) -> impl Iterator<Item = &Interval> {
        self.items.iter()
    }

    /// Inserts an interval, merging with adjacent members when they touch.
    ///
    /// Returns `Err(conflicting)` if the new interval overlaps an existing
    /// member on positive measure.
    pub fn insert(&mut self, iv: Interval) -> Result<(), Interval> {
        if iv.is_empty() {
            return Ok(());
        }
        // Find insertion position by start time.
        let pos = self.items.partition_point(|m| m.start() < iv.start());
        // Overlap may only involve the predecessor or the successor run.
        if pos > 0 && self.items[pos - 1].overlaps(&iv) {
            return Err(self.items[pos - 1]);
        }
        if pos < self.items.len() && self.items[pos].overlaps(&iv) {
            return Err(self.items[pos]);
        }
        // Merge with touching neighbours to keep the representation
        // small. Touching must be EXACT equality: the engine reuses the
        // same float for adjacent window boundaries, whereas two windows
        // separated by a genuine (if tiny) gap may enclose another job's
        // sliver of activity on the same resource — merging across such a
        // gap with a tolerance would fabricate a resource overlap.
        let mut start = iv.start();
        let mut end = iv.end();
        let mut lo = pos;
        let mut hi = pos;
        if pos > 0 && self.items[pos - 1].end() == iv.start() {
            lo = pos - 1;
            start = self.items[pos - 1].start();
        }
        if pos < self.items.len() && self.items[pos].start() == iv.end() {
            hi = pos + 1;
            end = self.items[pos].end();
        }
        self.items.splice(lo..hi, [Interval::new(start, end)]);
        Ok(())
    }

    /// Total measure of the set.
    pub fn total_length(&self) -> Time {
        self.items
            .iter()
            .fold(Time::ZERO, |acc, iv| acc + iv.length())
    }

    /// Earliest start over all members (`min(E)` in the paper).
    pub fn min_start(&self) -> Option<Time> {
        self.items.first().map(|iv| iv.start())
    }

    /// Latest end over all members (`max(E)` in the paper).
    pub fn max_end(&self) -> Option<Time> {
        self.items.last().map(|iv| iv.end())
    }

    /// True when some member interval overlaps `iv` on positive measure.
    pub fn overlaps(&self, iv: &Interval) -> bool {
        let pos = self.items.partition_point(|m| m.end() <= iv.start());
        self.items[pos..]
            .iter()
            .take_while(|m| m.start() < iv.end())
            .any(|m| m.overlaps(iv))
    }

    /// True when the two sets overlap on positive measure.
    pub fn intersects(&self, other: &IntervalSet) -> bool {
        // Linear merge scan.
        let (mut i, mut j) = (0, 0);
        while i < self.items.len() && j < other.items.len() {
            let a = &self.items[i];
            let b = &other.items[j];
            if a.overlaps(b) {
                return true;
            }
            if a.end() <= b.end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }
}

impl FromIterator<Interval> for IntervalSet {
    /// Builds a set from intervals, panicking on overlap (test helper).
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut set = IntervalSet::new();
        for iv in iter {
            set.insert(iv).expect("overlapping intervals in from_iter");
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: f64, b: f64) -> Interval {
        Interval::from_secs(a, b)
    }

    #[test]
    fn interval_basics() {
        let i = iv(1.0, 3.0);
        assert_eq!(i.start(), Time::new(1.0));
        assert_eq!(i.end(), Time::new(3.0));
        assert_eq!(i.length(), Time::new(2.0));
        assert!(!i.is_empty());
        assert!(iv(2.0, 2.0).is_empty());
        assert!(i.contains(Time::new(1.0)));
        assert!(i.contains(Time::new(2.9)));
        assert!(!i.contains(Time::new(3.0)));
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn interval_rejects_reversed() {
        let _ = iv(3.0, 1.0);
    }

    #[test]
    fn overlap_semantics_half_open() {
        assert!(iv(0.0, 2.0).overlaps(&iv(1.0, 3.0)));
        // Touching endpoints: no overlap.
        assert!(!iv(0.0, 2.0).overlaps(&iv(2.0, 3.0)));
        assert!(!iv(2.0, 3.0).overlaps(&iv(0.0, 2.0)));
        // Nested.
        assert!(iv(0.0, 10.0).overlaps(&iv(4.0, 5.0)));
    }

    #[test]
    fn intersection() {
        assert_eq!(iv(0.0, 2.0).intersect(&iv(1.0, 3.0)), Some(iv(1.0, 2.0)));
        assert_eq!(iv(0.0, 1.0).intersect(&iv(2.0, 3.0)), None);
        assert_eq!(iv(0.0, 1.0).intersect(&iv(1.0, 3.0)), None);
    }

    #[test]
    fn set_insert_disjoint() {
        let mut s = IntervalSet::new();
        s.insert(iv(5.0, 6.0)).unwrap();
        s.insert(iv(1.0, 2.0)).unwrap();
        s.insert(iv(3.0, 4.0)).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_length(), Time::new(3.0));
        assert_eq!(s.min_start(), Some(Time::new(1.0)));
        assert_eq!(s.max_end(), Some(Time::new(6.0)));
    }

    #[test]
    fn set_insert_rejects_overlap() {
        let mut s = IntervalSet::new();
        s.insert(iv(1.0, 3.0)).unwrap();
        assert_eq!(s.insert(iv(2.0, 4.0)), Err(iv(1.0, 3.0)));
        assert_eq!(s.insert(iv(0.0, 1.5)), Err(iv(1.0, 3.0)));
        assert_eq!(s.insert(iv(0.0, 5.0)), Err(iv(1.0, 3.0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_insert_merges_adjacent() {
        let mut s = IntervalSet::new();
        s.insert(iv(1.0, 2.0)).unwrap();
        s.insert(iv(2.0, 3.0)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_length(), Time::new(2.0));
        // Merge on both sides at once.
        s.insert(iv(4.0, 5.0)).unwrap();
        s.insert(iv(3.0, 4.0)).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.max_end(), Some(Time::new(5.0)));
    }

    #[test]
    fn set_ignores_empty_intervals() {
        let mut s = IntervalSet::new();
        s.insert(iv(2.0, 2.0)).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn set_overlap_queries() {
        let s: IntervalSet = [iv(0.0, 1.0), iv(2.0, 3.0), iv(5.0, 8.0)]
            .into_iter()
            .collect();
        assert!(s.overlaps(&iv(0.5, 0.6)));
        assert!(s.overlaps(&iv(2.5, 6.0)));
        assert!(!s.overlaps(&iv(1.0, 2.0)));
        assert!(!s.overlaps(&iv(8.0, 9.0)));

        let t: IntervalSet = [iv(1.0, 2.0), iv(3.0, 5.0)].into_iter().collect();
        assert!(!s.intersects(&t));
        let u: IntervalSet = [iv(0.5, 0.7)].into_iter().collect();
        assert!(s.intersects(&u));
        assert!(u.intersects(&s));
    }

    #[test]
    fn min_max_on_empty() {
        let s = IntervalSet::new();
        assert_eq!(s.min_start(), None);
        assert_eq!(s.max_end(), None);
        assert_eq!(s.total_length(), Time::ZERO);
    }
}
