//! Virtual time for the edge-cloud simulation.
//!
//! Time is continuous in the paper's model (job works and speeds are real
//! numbers, e.g. the Kang edge speeds 6/11 and 6/37), so we represent
//! instants as finite `f64` seconds wrapped in a [`Time`] newtype that
//! provides a *total* order and rejects NaN/infinite values at
//! construction. All tolerance-aware comparisons used by the validity
//! checker go through [`approx`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Absolute tolerance used when comparing virtual-time quantities.
///
/// The engine produces event times by summing and dividing job parameters;
/// round-off of a few ULPs accumulates, so validity checks and schedulers
/// must not distinguish quantities closer than this.
pub const TIME_EPS: f64 = 1e-7;

/// An instant (or duration) of virtual time, in abstract "seconds".
///
/// `Time` is a thin wrapper over `f64` that
/// * guarantees the value is finite (checked in [`Time::new`]),
/// * implements `Ord`/`Eq` (total order), so it can key heaps and maps,
/// * offers saturating/tolerant helpers used throughout the engine.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Time(f64);

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time value; panics on NaN or infinite input.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(seconds.is_finite(), "non-finite time: {seconds}");
        Time(seconds)
    }

    /// Returns the underlying seconds value.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// `max(self, other)`.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True when `self` is within [`TIME_EPS`] of `other`.
    #[inline]
    pub fn approx_eq(self, other: Time) -> bool {
        approx::eq(self.0, other.0)
    }

    /// True when `self ≤ other + ε`.
    #[inline]
    pub fn approx_le(self, other: Time) -> bool {
        approx::le(self.0, other.0)
    }

    /// True when `self ≥ other − ε`.
    #[inline]
    pub fn approx_ge(self, other: Time) -> bool {
        approx::ge(self.0, other.0)
    }

    /// True when the value is within ε of zero or below.
    #[inline]
    pub fn is_zero_or_negative(self) -> bool {
        self.0 <= TIME_EPS
    }

    /// Clamps tiny negative round-off to exactly zero.
    #[inline]
    pub fn clamp_non_negative(self) -> Time {
        if self.0 < 0.0 {
            debug_assert!(
                self.0 > -TIME_EPS,
                "clamping a significantly negative time: {}",
                self.0
            );
            Time(0.0)
        } else {
            self
        }
    }
}

impl Eq for Time {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("finite by invariant")
    }
}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{:.6}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}", prec, self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl From<f64> for Time {
    #[inline]
    fn from(seconds: f64) -> Self {
        Time::new(seconds)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time::new(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time::new(-self.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::new(self.0 * rhs)
    }
}

impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time::new(self.0 / rhs)
    }
}

/// Tolerant `f64` comparisons shared by the whole workspace.
pub mod approx {
    use super::TIME_EPS;

    /// `a == b` up to the global tolerance.
    #[inline]
    pub fn eq(a: f64, b: f64) -> bool {
        (a - b).abs() <= tol(a, b)
    }

    /// `a ≤ b` up to the global tolerance.
    #[inline]
    pub fn le(a: f64, b: f64) -> bool {
        a <= b + tol(a, b)
    }

    /// `a ≥ b` up to the global tolerance.
    #[inline]
    pub fn ge(a: f64, b: f64) -> bool {
        a >= b - tol(a, b)
    }

    /// `a < b` by strictly more than the tolerance.
    #[inline]
    pub fn lt(a: f64, b: f64) -> bool {
        a < b - tol(a, b)
    }

    /// `a > b` by strictly more than the tolerance.
    #[inline]
    pub fn gt(a: f64, b: f64) -> bool {
        a > b + tol(a, b)
    }

    /// `a == 0` up to the global tolerance. The canonical "is this volume
    /// exhausted?" test — policies and the validity checker must use this
    /// instead of hand-rolled `x > TIME_EPS` comparisons so that every
    /// layer agrees on when a phase is empty.
    #[inline]
    pub fn zero(a: f64) -> bool {
        eq(a, 0.0)
    }

    /// `a > 0` by strictly more than the tolerance: the complement of
    /// [`zero`] for non-negative quantities (remaining volumes, durations).
    #[inline]
    pub fn positive(a: f64) -> bool {
        gt(a, 0.0)
    }

    /// Mixed absolute/relative tolerance: absolute near zero, relative for
    /// large magnitudes (long simulations reach times ≫ 1).
    #[inline]
    fn tol(a: f64, b: f64) -> f64 {
        let scale = a.abs().max(b.abs()).max(1.0);
        TIME_EPS * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Time::new(2.5);
        assert_eq!(t.seconds(), 2.5);
        assert_eq!(Time::ZERO.seconds(), 0.0);
        assert_eq!(Time::from(1.0), Time::new(1.0));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_infinity() {
        let _ = Time::new(f64::INFINITY);
    }

    #[test]
    fn arithmetic() {
        let a = Time::new(3.0);
        let b = Time::new(1.5);
        assert_eq!((a + b).seconds(), 4.5);
        assert_eq!((a - b).seconds(), 1.5);
        assert_eq!((a * 2.0).seconds(), 6.0);
        assert_eq!((a / 2.0).seconds(), 1.5);
        let mut c = a;
        c += b;
        assert_eq!(c.seconds(), 4.5);
        c -= b;
        assert_eq!(c.seconds(), 3.0);
        assert_eq!((-a).seconds(), -3.0);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![Time::new(3.0), Time::new(-1.0), Time::new(0.5)];
        v.sort();
        assert_eq!(v, vec![Time::new(-1.0), Time::new(0.5), Time::new(3.0)]);
        assert_eq!(Time::new(2.0).max(Time::new(3.0)), Time::new(3.0));
        assert_eq!(Time::new(2.0).min(Time::new(3.0)), Time::new(2.0));
    }

    #[test]
    fn approx_comparisons() {
        let a = Time::new(1.0);
        let b = Time::new(1.0 + TIME_EPS / 2.0);
        assert!(a.approx_eq(b));
        assert!(a.approx_le(b));
        assert!(b.approx_ge(a));
        assert!(a.approx_le(Time::new(2.0)));
        assert!(!Time::new(2.0).approx_le(a));
    }

    #[test]
    fn approx_zero_and_positive() {
        assert!(approx::zero(0.0));
        assert!(approx::zero(TIME_EPS / 2.0));
        assert!(approx::zero(-TIME_EPS / 2.0));
        assert!(!approx::zero(1e-3));
        assert!(approx::positive(1e-3));
        assert!(!approx::positive(TIME_EPS / 2.0));
        assert!(!approx::positive(0.0));
        // positive() is the exact complement of zero() on x ≥ 0.
        for x in [0.0, TIME_EPS / 3.0, TIME_EPS, 2.0 * TIME_EPS, 0.5, 7.0] {
            assert_ne!(approx::zero(x), approx::positive(x), "x = {x}");
        }
    }

    #[test]
    fn approx_relative_scale() {
        // At magnitude 1e6, a 1e-3 absolute gap is below the relative
        // tolerance of 1e-7 * 1e6 = 0.1 and must compare equal.
        assert!(approx::eq(1.0e6, 1.0e6 + 1e-3));
        assert!(!approx::eq(1.0, 1.0 + 1e-3));
        assert!(approx::lt(1.0, 1.1));
        assert!(approx::gt(1.1, 1.0));
        assert!(!approx::lt(1.0, 1.0));
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(Time::new(-1e-9).clamp_non_negative(), Time::ZERO);
        assert_eq!(Time::new(2.0).clamp_non_negative(), Time::new(2.0));
    }

    #[test]
    fn zero_or_negative() {
        assert!(Time::new(0.0).is_zero_or_negative());
        assert!(Time::new(1e-9).is_zero_or_negative());
        assert!(!Time::new(1e-3).is_zero_or_negative());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:.2}", Time::new(1.234)), "1.23");
        assert_eq!(format!("{}", Time::new(1.5)), "1.5");
        assert_eq!(format!("{:?}", Time::new(1.5)), "t1.500000");
    }
}
