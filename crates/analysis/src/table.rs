//! Plain-text table and CSV rendering for experiment reports.
//!
//! The harness regenerates the paper's figures as data series; these
//! helpers print them as aligned ASCII/markdown tables (for the terminal
//! and EXPERIMENTS.md) and as CSV (for external plotting).

use std::fmt::Write as _;

/// A simple column-oriented table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity differs from the header.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity does not match header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cells of data row `i` (header order).
    pub fn row(&self, i: usize) -> &[String] {
        &self.rows[i]
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let widths = self.column_widths();
        let mut out = String::new();
        let render_row = |cells: &[String], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(&widths) {
                let _ = write!(out, " {c:<w$} |", w = *w);
            }
            out.push('\n');
        };
        render_row(&self.headers, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<w$}|", "", w = *w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Renders as CSV (minimal quoting: fields containing `,` or `"` are
    /// quoted with doubled quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let render = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        render(&self.headers, &mut out);
        for row in &self.rows {
            render(row, &mut out);
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        widths
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Formats a float with a sensible fixed precision for reports.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(["ccr", "srpt", "ssf-edf"]);
        t.push_row(["0.1", "1.02", "1.01"]);
        t.push_row(["10", "2.50", "2.10"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| ccr"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[3].contains("2.50"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["plain", "with,comma"]);
        t.push_row(["with\"quote", "x"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(1.2345), "1.234");
        assert_eq!(fmt_num(12.345), "12.35");
        // {:.0} rounds half-to-even.
        assert_eq!(fmt_num(1234.6), "1235");
    }
}
