//! `mmsec-analysis` — statistics, report rendering, and a deterministic
//! parallel trial runner for the experiment harness.
//!
//! * [`stats::Summary`] — per-point aggregation (mean, CI95, percentiles);
//! * [`table::Table`] — markdown/CSV rendering of result series;
//! * [`runner::run_indexed`] — fan trials over crossbeam scoped threads
//!   with results independent of the interleaving.

#![warn(missing_docs)]

pub mod convergence;
pub mod runner;
pub mod stats;
pub mod table;

pub use convergence::{run_until_converged, AdaptiveResult, Convergence};
pub use runner::{default_threads, run_indexed};
pub use stats::Summary;
pub use table::Table;
