//! Deterministic parallel experiment runner.
//!
//! Every point of the paper's plots averages many independently seeded
//! trials. Trials are embarrassingly parallel: we fan them out over
//! `std::thread::scope` workers with a shared atomic work counter. Each
//! trial is a pure function of its index, so the result vector is
//! identical whatever the thread interleaving — reproducibility does not
//! depend on the machine's core count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `trials` invocations of `f` (one per index, 0-based) across
/// `threads` workers and returns the results in index order.
pub fn run_indexed<T, F>(trials: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if trials == 0 {
        return Vec::new();
    }
    let threads = threads.min(trials);
    if threads == 1 {
        return (0..trials).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    // One slot per trial, each behind its own lock: workers write disjoint
    // indices, so a whole-vector mutex would serialize nothing but still
    // contend on every store. Per-slot cells keep stores contention-free
    // (the work counter is the only shared atomic on the hot path) while
    // preserving index order.
    let slots: Vec<Mutex<Option<T>>> = (0..trials).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("runner slot poisoned") = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("runner slot poisoned")
                .expect("every trial index was produced")
        })
        .collect()
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn results_are_in_index_order() {
        let out = run_indexed(100, 8, |i| i * 2);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicU32::new(0);
        let out = run_indexed(257, 7, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 257);
        let set: HashSet<usize> = out.into_iter().collect();
        assert_eq!(set.len(), 257);
    }

    #[test]
    fn single_thread_and_zero_trials() {
        assert_eq!(run_indexed(5, 1, |i| i), vec![0, 1, 2, 3, 4]);
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn slow_early_trials_do_not_scramble_order() {
        // Earlier indices finish *after* later ones (reverse-staggered
        // sleeps), so any ordering bug in the slot writes would surface.
        let out = run_indexed(16, 8, |i| {
            std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
            i * 3
        });
        assert_eq!(out, (0..16).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        // Deterministic trial function: results must not depend on the
        // worker count.
        let f = |i: usize| mmsec_sim::seed::derive(42, "trial", i as u64);
        let serial = run_indexed(64, 1, f);
        let parallel = run_indexed(64, 8, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = run_indexed(1, 0, |i| i);
    }
}
