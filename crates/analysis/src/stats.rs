//! Summary statistics for experiment aggregation.
//!
//! Each point of the paper's plots is the average of many independently
//! seeded instances (1000 in the paper); we report the mean together with
//! dispersion measures so the harness can print honest error bars.

/// Summary of a sample of real values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub std: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (linear interpolation).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of `values`; panics on an empty sample.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std = var.sqrt();
        let sem = std / (n as f64).sqrt();
        Summary {
            n,
            mean,
            std,
            sem,
            ci95: 1.96 * sem,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            median: percentile(values, 50.0),
        }
    }
}

/// The `p`-th percentile (0–100) with linear interpolation.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Geometric mean (used for ratio aggregation across heterogeneous
/// workloads).
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "empty sample");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean needs positives"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std with Bessel correction: sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert!(s.ci95 > 0.0 && s.ci95 < s.std);
    }

    #[test]
    fn single_value_summary() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = Summary::of(&[]);
    }
}
