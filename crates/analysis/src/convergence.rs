//! Adaptive replication: run trials until the confidence interval of the
//! mean is tight enough (or a cap is reached).
//!
//! The paper fixes 1000 instances per point; on constrained hardware it
//! is often smarter to stop when the 95% CI half-width drops below a
//! target fraction of the mean. Trials stay deterministic: trial `i`
//! always uses index `i`, so an adaptive run is a prefix of the fixed run.

use crate::stats::Summary;

/// Stopping rule for adaptive replication.
#[derive(Clone, Copy, Debug)]
pub struct Convergence {
    /// Minimum trials before the rule may stop (CI needs some support).
    pub min_trials: usize,
    /// Hard cap on trials.
    pub max_trials: usize,
    /// Stop when `ci95 / mean` falls below this.
    pub rel_ci_target: f64,
}

impl Default for Convergence {
    fn default() -> Self {
        Convergence {
            min_trials: 5,
            max_trials: 1000,
            rel_ci_target: 0.05,
        }
    }
}

/// Result of an adaptive run.
#[derive(Clone, Debug)]
pub struct AdaptiveResult {
    /// Summary over the executed trials.
    pub summary: Summary,
    /// Whether the CI target was met (false ⇒ the cap stopped the run).
    pub converged: bool,
    /// Raw trial values, in index order.
    pub values: Vec<f64>,
}

/// Runs `trial(i)` for `i = 0, 1, …` until [`Convergence`] stops it.
/// Sequential by design: the stopping decision depends on the prefix.
pub fn run_until_converged<F: FnMut(usize) -> f64>(
    rule: Convergence,
    mut trial: F,
) -> AdaptiveResult {
    assert!(rule.min_trials >= 2, "CI needs at least two trials");
    assert!(rule.max_trials >= rule.min_trials);
    assert!(rule.rel_ci_target > 0.0);
    let mut values = Vec::with_capacity(rule.min_trials);
    loop {
        values.push(trial(values.len()));
        if values.len() >= rule.min_trials {
            let s = Summary::of(&values);
            let rel = if s.mean.abs() > f64::MIN_POSITIVE {
                s.ci95 / s.mean.abs()
            } else {
                0.0
            };
            if rel <= rule.rel_ci_target {
                return AdaptiveResult {
                    summary: s,
                    converged: true,
                    values,
                };
            }
            if values.len() >= rule.max_trials {
                return AdaptiveResult {
                    summary: s,
                    converged: false,
                    values,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_sim::seed::SplitMix64;

    #[test]
    fn constant_trials_converge_immediately() {
        let r = run_until_converged(Convergence::default(), |_| 7.0);
        assert!(r.converged);
        assert_eq!(r.values.len(), Convergence::default().min_trials);
        assert_eq!(r.summary.mean, 7.0);
        assert_eq!(r.summary.ci95, 0.0);
    }

    #[test]
    fn noisy_trials_run_longer_but_converge() {
        let mut rng = SplitMix64::new(5);
        let r = run_until_converged(
            Convergence {
                min_trials: 5,
                max_trials: 10_000,
                rel_ci_target: 0.02,
            },
            move |_| 10.0 + rng.next_f64(), // U(10, 11): CV ≈ 2.8%
        );
        assert!(r.converged, "took {} trials", r.values.len());
        assert!(r.values.len() > 5);
        assert!((r.summary.mean - 10.5).abs() < 0.2);
    }

    #[test]
    fn cap_stops_divergent_sequences() {
        let mut x = 0.0;
        let r = run_until_converged(
            Convergence {
                min_trials: 3,
                max_trials: 20,
                rel_ci_target: 1e-6,
            },
            move |_| {
                x += 1.0;
                x * if x as usize % 2 == 0 { 1.0 } else { -1.0 }
            },
        );
        assert!(!r.converged);
        assert_eq!(r.values.len(), 20);
    }

    #[test]
    fn adaptive_is_prefix_of_fixed() {
        let trial = |i: usize| mmsec_sim::seed::derive(9, "t", i as u64) as f64 / u64::MAX as f64;
        let adaptive = run_until_converged(
            Convergence {
                min_trials: 5,
                max_trials: 50,
                rel_ci_target: 0.5,
            },
            trial,
        );
        let fixed: Vec<f64> = (0..adaptive.values.len()).map(trial).collect();
        assert_eq!(adaptive.values, fixed);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_min_below_two() {
        let _ = run_until_converged(
            Convergence {
                min_trials: 1,
                max_trials: 5,
                rel_ci_target: 0.1,
            },
            |_| 1.0,
        );
    }
}
