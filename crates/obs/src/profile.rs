//! Engine phase profiler.
//!
//! [`PhaseProfiler`] aggregates monotonic-clock span timings from the
//! engine's inner loop into per-phase [`Log2Histogram`]s. The engine
//! threads an `Option<&mut PhaseProfiler>` next to its observer: when no
//! profiler is attached the instrumentation is a handful of untaken
//! branches and zero clock reads, and when attached it costs a few
//! `Instant::now()` calls per step (the step's phase boundaries are
//! fenceposts, so each clock read closes one span and opens the next).
//!
//! The profiler is pure telemetry: it never reads or writes simulation
//! state, so a profiled run is bit-identical to a bare run (pinned by the
//! telemetry-equivalence proptest in `crates/core/tests`).

use crate::hist::Log2Histogram;
use crate::json::Json;
use std::time::Duration;

/// The engine's internal run-loop phases, in execution order.
///
/// Each engine step walks these phases once (some may be empty); together
/// they partition the step's wall time, so the per-phase histogram sums
/// account for essentially all of [`PhaseProfiler::loop_wall`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EnginePhase {
    /// Popping and ranking due events from the event queue (releases,
    /// horizon boundaries), excluding fault replay.
    EventPop,
    /// Applying fault-plan events: crash/recovery bookkeeping, killing
    /// in-flight work, link capacity changes.
    FaultReplay,
    /// The policy's `decide` call itself (wall time of the scheduler).
    Decide,
    /// Sanitizing/deduplicating the returned directives, or replaying the
    /// previous directives when decision-epoch gating skipped the call.
    Sanitize,
    /// The grant walk: applying commitments, computing blocked sets,
    /// greedy allocation, and link-capacity scaling.
    Grant,
    /// Committing the outcome: horizon scan, time advance, work accrual,
    /// trace recording, and completion detection.
    Commit,
}

impl EnginePhase {
    /// Every phase, in execution order.
    pub const ALL: [EnginePhase; 6] = [
        EnginePhase::EventPop,
        EnginePhase::FaultReplay,
        EnginePhase::Decide,
        EnginePhase::Sanitize,
        EnginePhase::Grant,
        EnginePhase::Commit,
    ];

    /// Stable kebab-case label used in JSON output and reports.
    pub fn label(self) -> &'static str {
        match self {
            EnginePhase::EventPop => "event-pop",
            EnginePhase::FaultReplay => "fault-replay",
            EnginePhase::Decide => "decide",
            EnginePhase::Sanitize => "sanitize",
            EnginePhase::Grant => "grant",
            EnginePhase::Commit => "commit",
        }
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// Aggregated phase timings for one engine run (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct PhaseProfiler {
    policy: String,
    phases: [Log2Histogram; 6],
    steps: u64,
    decides: u64,
    decide_skips: u64,
    loop_wall: Duration,
}

impl PhaseProfiler {
    /// A fresh profiler with no recorded spans.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Sets the display name of the profiled policy (the engine calls
    /// this when the session starts).
    pub fn set_policy(&mut self, name: &str) {
        self.policy = name.to_string();
    }

    /// Name of the profiled policy (empty until a session starts).
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Records one span of `phase`.
    #[inline]
    pub fn record(&mut self, phase: EnginePhase, span: Duration) {
        self.phases[phase.index()].record(span.as_secs_f64());
    }

    /// Adds one full pass through the run loop to the wall-time total.
    #[inline]
    pub fn add_step(&mut self, wall: Duration) {
        self.steps += 1;
        self.loop_wall += wall;
    }

    /// Counts one invoked `decide`.
    #[inline]
    pub fn note_decide(&mut self) {
        self.decides += 1;
    }

    /// Counts one gating-skipped `decide`.
    #[inline]
    pub fn note_skip(&mut self) {
        self.decide_skips += 1;
    }

    /// The span histogram of one phase (values are seconds).
    pub fn phase(&self, phase: EnginePhase) -> &Log2Histogram {
        &self.phases[phase.index()]
    }

    /// Number of engine steps timed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Invoked `decide` calls.
    pub fn decides(&self) -> u64 {
        self.decides
    }

    /// Gating-skipped `decide` calls.
    pub fn decide_skips(&self) -> u64 {
        self.decide_skips
    }

    /// Fraction of decision points the gate skipped (0 when none seen).
    pub fn skip_ratio(&self) -> f64 {
        let total = self.decides + self.decide_skips;
        if total == 0 {
            0.0
        } else {
            self.decide_skips as f64 / total as f64
        }
    }

    /// Total wall time spent inside the run loop.
    pub fn loop_wall(&self) -> Duration {
        self.loop_wall
    }

    /// Sum of all phase-span totals, in seconds.
    pub fn phase_total(&self) -> f64 {
        self.phases.iter().map(Log2Histogram::sum).sum()
    }

    /// Fraction of the measured loop wall time the phase spans account
    /// for (1.0 when no wall time was recorded). The acceptance bar is
    /// ≥ 0.95: the phases partition each step with fencepost clock reads,
    /// so in practice this sits at ~0.99.
    pub fn coverage(&self) -> f64 {
        let wall = self.loop_wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.phase_total() / wall
        }
    }

    /// Serializes the profile (`schema: "mmsec-profile/1"`).
    pub fn to_json(&self) -> Json {
        let wall = self.loop_wall.as_secs_f64();
        let phases: Vec<Json> = EnginePhase::ALL
            .iter()
            .map(|&ph| {
                let h = self.phase(ph);
                Json::obj(vec![
                    ("phase", Json::str(ph.label())),
                    ("count", Json::Num(h.count() as f64)),
                    ("sum_seconds", Json::Num(h.sum())),
                    ("mean_seconds", Json::Num(h.mean())),
                    ("p50_seconds", Json::Num(h.percentile(50.0))),
                    ("p99_seconds", Json::Num(h.percentile(99.0))),
                    ("max_seconds", Json::Num(h.max())),
                    (
                        "share",
                        Json::Num(if wall > 0.0 { h.sum() / wall } else { 0.0 }),
                    ),
                    ("buckets", h.to_json().get("buckets").cloned().unwrap()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::str("mmsec-profile/1")),
            ("policy", Json::str(self.policy.clone())),
            ("steps", Json::Num(self.steps as f64)),
            ("decides", Json::Num(self.decides as f64)),
            ("decide_skips", Json::Num(self.decide_skips as f64)),
            ("skip_ratio", Json::Num(self.skip_ratio())),
            ("loop_wall_seconds", Json::Num(wall)),
            ("coverage", Json::Num(self.coverage())),
            ("phases", Json::Arr(phases)),
        ])
    }

    /// Pretty-printed JSON document (see [`PhaseProfiler::to_json`]).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_per_phase() {
        let mut p = PhaseProfiler::new();
        p.set_policy("test");
        p.record(EnginePhase::Decide, Duration::from_micros(10));
        p.record(EnginePhase::Decide, Duration::from_micros(20));
        p.record(EnginePhase::Grant, Duration::from_micros(5));
        p.note_decide();
        p.note_decide();
        p.note_skip();
        p.add_step(Duration::from_micros(36));
        assert_eq!(p.phase(EnginePhase::Decide).count(), 2);
        assert_eq!(p.phase(EnginePhase::Grant).count(), 1);
        assert_eq!(p.phase(EnginePhase::Commit).count(), 0);
        assert!((p.skip_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.phase_total() - 35e-6).abs() < 1e-12);
        // 35 µs of spans over 36 µs of wall → coverage just under 1.
        assert!((p.coverage() - 35.0 / 36.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut p = PhaseProfiler::new();
        p.set_policy("srpt");
        p.record(EnginePhase::EventPop, Duration::from_nanos(500));
        p.add_step(Duration::from_nanos(600));
        let json = p.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("mmsec-profile/1")
        );
        assert_eq!(json.get("policy").and_then(Json::as_str), Some("srpt"));
        let phases = json.get("phases").and_then(Json::as_arr).unwrap();
        assert_eq!(phases.len(), EnginePhase::ALL.len());
        assert_eq!(
            phases[0].get("phase").and_then(Json::as_str),
            Some("event-pop")
        );
        assert!(phases[0].get("share").and_then(Json::as_f64).unwrap() > 0.5);
        // Round-trips through the parser.
        let text = p.to_json_string();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("coverage").and_then(Json::as_f64),
            json.get("coverage").and_then(Json::as_f64)
        );
    }

    #[test]
    fn empty_profiler_reports_full_coverage() {
        let p = PhaseProfiler::new();
        assert_eq!(p.coverage(), 1.0);
        assert_eq!(p.skip_ratio(), 0.0);
        assert_eq!(p.steps(), 0);
    }
}
