//! Minimal JSON value, writer, and parser.
//!
//! The workspace builds offline without serde, and the observability
//! outputs (metrics JSON, Chrome trace JSON) only need a small, strict
//! subset: finite numbers, UTF-8 strings, arrays, and objects with
//! insertion-ordered keys. The parser exists so round-trip tests can
//! verify the writers produce well-formed documents.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`, matching
    /// what browsers' `JSON.stringify` does).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object node from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String node helper.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Integer node helper (exact for |n| < 2⁵³).
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key in an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The node as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The node as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The node as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the document compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes the document with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Parses a JSON document. Strict: trailing input, comments, `NaN`, and
/// unpaired surrogates are rejected.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Error from [`parse`], with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate escapes unsupported"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // just consumed; its length follows from the lead byte.
                    let len = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 lead byte")),
                    };
                    let start = self.pos - 1;
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let ch = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .expect("non-empty slice");
                    out.push(ch);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::str("edge-0 \"fast\"")),
            ("count", Json::int(42)),
            ("ratio", Json::Num(0.125)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::int(1), Json::str("two\n"), Json::Null]),
            ),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Json::int(7).to_string_compact(), "7");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::Num(1.5).to_string_compact(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\":1,\"a\":2}").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse("{\"a\": [1, 2.5], \"b\": \"x\"}").unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        let arr = doc.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert!(doc.get("missing").is_none());
    }
}
