//! Chrome trace-event JSON export.
//!
//! [`ChromeTraceWriter`] turns the event stream into the JSON Array
//! Format understood by Perfetto (<https://ui.perfetto.dev>) and the
//! legacy `chrome://tracing` viewer:
//!
//! * one thread track per resource (`edge-j cpu`, `edge-j uplink`,
//!   `edge-j downlink`, `cloud-k cpu`) carrying `B`/`E` duration pairs
//!   for every committed activity interval;
//! * a `policy` track with `X` (complete) events for each `decide` call;
//! * `i` (instant) events for releases, completions, restarts, and
//!   binary-search probes;
//! * a `C` (counter) track for the ready-queue depth;
//! * `M` (metadata) records naming the process and every thread track.
//!
//! Virtual seconds are mapped to trace microseconds (`ts = t * 1e6`).
//! Tracks carry mutually disjoint intervals under the one-port model, so
//! `B`/`E` pairs on a track never overlap and viewers render them
//! without inventing nesting.

use crate::json::Json;
use crate::{Event, Observer, PhaseKind, Unit};

const PID: usize = 1;
/// Thread id of the policy track; resource tracks start above it.
const POLICY_TID: usize = 2;
const QUEUE_TID: usize = 3;
const UNIT_TID_BASE: usize = 10;

/// Observer that accumulates Chrome trace events; call
/// [`ChromeTraceWriter::to_json_string`] once the run finished.
#[derive(Clone, Debug, Default)]
pub struct ChromeTraceWriter {
    events: Vec<Json>,
    tracks: Vec<(usize, String)>,   // (tid, name), insertion-ordered
    pending_decide_ts: Option<f64>, // ts_us of the open DecideStart
}

impl ChromeTraceWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        ChromeTraceWriter::default()
    }

    /// Number of trace records accumulated so far (excluding metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn tid_for(&mut self, unit: Unit, phase: PhaseKind) -> usize {
        let name = unit.track(phase);
        if let Some((tid, _)) = self.tracks.iter().find(|(_, n)| *n == name) {
            return *tid;
        }
        let tid = UNIT_TID_BASE + self.tracks.len();
        self.tracks.push((tid, name));
        tid
    }

    fn push(&mut self, mut fields: Vec<(&str, Json)>) {
        fields.insert(0, ("pid", Json::int(PID)));
        self.events.push(Json::obj(fields));
    }

    fn instant(&mut self, name: &str, ts_us: f64, tid: usize, args: Vec<(&str, Json)>) {
        self.push(vec![
            ("tid", Json::int(tid)),
            ("ts", Json::Num(ts_us)),
            ("ph", Json::str("i")),
            ("s", Json::str("t")),
            ("name", Json::str(name)),
            ("args", Json::obj(args)),
        ]);
    }

    /// Serializes the accumulated trace, sorted by timestamp, wrapped in
    /// the `{"traceEvents": …}` envelope.
    pub fn to_json(&self) -> Json {
        let mut records = Vec::with_capacity(self.events.len() + self.tracks.len() + 3);
        records.push(metadata(
            "process_name",
            0,
            vec![("name", Json::str("mmsec simulation"))],
        ));
        records.push(metadata(
            "thread_name",
            POLICY_TID,
            vec![("name", Json::str("policy"))],
        ));
        records.push(metadata(
            "thread_name",
            QUEUE_TID,
            vec![("name", Json::str("ready queue"))],
        ));
        for (tid, name) in &self.tracks {
            records.push(metadata(
                "thread_name",
                *tid,
                vec![("name", Json::str(name.clone()))],
            ));
        }
        let mut timed = self.events.clone();
        // Stable sort: records at equal ts keep emission order, so an E at
        // time t precedes the next B at the same t on the same track only
        // if it was emitted first — which the engine guarantees.
        timed.sort_by(|a, b| {
            let ta = a.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
            let tb = b.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
            ta.partial_cmp(&tb).expect("trace timestamps are finite")
        });
        records.extend(timed);
        Json::obj(vec![
            ("traceEvents", Json::Arr(records)),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }

    /// Pretty-printed trace document (see [`ChromeTraceWriter::to_json`]).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

fn metadata(name: &str, tid: usize, args: Vec<(&str, Json)>) -> Json {
    Json::obj(vec![
        ("pid", Json::int(PID)),
        ("tid", Json::int(tid)),
        ("ts", Json::int(0)),
        ("ph", Json::str("M")),
        ("name", Json::str(name)),
        ("args", Json::obj(args)),
    ])
}

fn us(t: mmsec_sim::Time) -> f64 {
    t.seconds() * 1e6
}

impl Observer for ChromeTraceWriter {
    fn on_event(&mut self, event: &Event) {
        match event {
            Event::RunStart {
                policy,
                jobs,
                edges,
                clouds,
            } => {
                self.instant(
                    "run-start",
                    0.0,
                    POLICY_TID,
                    vec![
                        ("policy", Json::str(policy.clone())),
                        ("jobs", Json::int(*jobs)),
                        ("edges", Json::int(*edges)),
                        ("clouds", Json::int(*clouds)),
                    ],
                );
            }
            Event::JobSubmitted { t, job } => {
                self.instant("submit", us(*t), POLICY_TID, vec![("job", Json::int(*job))]);
            }
            Event::JobReleased { t, job } => {
                self.instant(
                    "release",
                    us(*t),
                    POLICY_TID,
                    vec![("job", Json::int(*job))],
                );
            }
            Event::DecideStart { t, pending } => {
                self.pending_decide_ts = Some(us(*t));
                // Counter sample of the ready-queue depth at each decision.
                self.push(vec![
                    ("tid", Json::int(QUEUE_TID)),
                    ("ts", Json::Num(us(*t))),
                    ("ph", Json::str("C")),
                    ("name", Json::str("ready-queue")),
                    ("args", Json::obj(vec![("depth", Json::int(*pending))])),
                ]);
            }
            Event::DecideSkipped { t, pending } => {
                // Keep the ready-queue counter track continuous even at
                // skipped decisions so its samples match the event grid.
                self.push(vec![
                    ("tid", Json::int(QUEUE_TID)),
                    ("ts", Json::Num(us(*t))),
                    ("ph", Json::str("C")),
                    ("name", Json::str("ready-queue")),
                    ("args", Json::obj(vec![("depth", Json::int(*pending))])),
                ]);
            }
            Event::DecideEnd {
                t,
                wall,
                directives,
            } => {
                let ts = self.pending_decide_ts.take().unwrap_or_else(|| us(*t));
                // `dur` is the real decide latency; it is usually tiny
                // relative to virtual time, so the slice stays readable.
                self.push(vec![
                    ("tid", Json::int(POLICY_TID)),
                    ("ts", Json::Num(ts)),
                    ("ph", Json::str("X")),
                    ("dur", Json::Num(wall.as_secs_f64() * 1e6)),
                    ("name", Json::str("decide")),
                    (
                        "args",
                        Json::obj(vec![("directives", Json::int(*directives))]),
                    ),
                ]);
            }
            Event::Placed {
                job,
                origin,
                target,
                phase,
                interval,
                volume,
            } => {
                let tid = self.tid_for(*target, *phase);
                let name = format!("job-{job} {}", phase.label());
                let args = vec![
                    ("job", Json::int(*job)),
                    ("origin", Json::int(*origin)),
                    ("phase", Json::str(phase.label())),
                    ("volume", Json::Num(*volume)),
                ];
                self.push(vec![
                    ("tid", Json::int(tid)),
                    ("ts", Json::Num(us(interval.start()))),
                    ("ph", Json::str("B")),
                    ("name", Json::str(name.clone())),
                    ("args", Json::obj(args)),
                ]);
                self.push(vec![
                    ("tid", Json::int(tid)),
                    ("ts", Json::Num(us(interval.end()))),
                    ("ph", Json::str("E")),
                    ("name", Json::str(name)),
                ]);
            }
            Event::Restarted { t, job, from, to } => {
                self.instant(
                    "restart",
                    us(*t),
                    POLICY_TID,
                    vec![
                        ("job", Json::int(*job)),
                        ("from", Json::str(from.to_string())),
                        ("to", Json::str(to.to_string())),
                    ],
                );
            }
            Event::Completed {
                t,
                job,
                response,
                stretch,
            } => {
                self.instant(
                    "complete",
                    us(*t),
                    POLICY_TID,
                    vec![
                        ("job", Json::int(*job)),
                        ("response", Json::Num(*response)),
                        ("stretch", Json::Num(*stretch)),
                    ],
                );
            }
            Event::BinarySearchProbe {
                t,
                stretch,
                feasible,
            } => {
                self.instant(
                    "probe",
                    us(*t),
                    POLICY_TID,
                    vec![
                        ("stretch", Json::Num(*stretch)),
                        ("feasible", Json::Bool(*feasible)),
                    ],
                );
            }
            Event::UnitDown { t, unit } => {
                self.instant(
                    "unit-down",
                    us(*t),
                    POLICY_TID,
                    vec![("unit", Json::str(unit.to_string()))],
                );
            }
            Event::UnitUp { t, unit } => {
                self.instant(
                    "unit-up",
                    us(*t),
                    POLICY_TID,
                    vec![("unit", Json::str(unit.to_string()))],
                );
            }
            Event::LinkDegraded { t, edge, factor } => {
                self.instant(
                    "link-degraded",
                    us(*t),
                    POLICY_TID,
                    vec![("edge", Json::int(*edge)), ("factor", Json::Num(*factor))],
                );
            }
            Event::JobKilled { t, job, unit } => {
                self.instant(
                    "job-killed",
                    us(*t),
                    POLICY_TID,
                    vec![
                        ("job", Json::int(*job)),
                        ("unit", Json::str(unit.to_string())),
                    ],
                );
            }
            Event::PlatformChanged {
                t,
                version,
                op,
                unit,
            } => {
                self.instant(
                    "platform-changed",
                    us(*t),
                    POLICY_TID,
                    vec![
                        ("op", Json::str(*op)),
                        ("version", Json::int(*version as usize)),
                        ("unit", Json::str(unit.to_string())),
                    ],
                );
            }
            Event::RunEnd { makespan } => {
                self.instant(
                    "run-end",
                    us(*makespan),
                    POLICY_TID,
                    vec![("makespan", Json::Num(makespan.seconds()))],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use mmsec_sim::{Interval, Time};
    use std::time::Duration;

    fn feed(writer: &mut ChromeTraceWriter) {
        writer.on_event(&Event::RunStart {
            policy: "test".into(),
            jobs: 1,
            edges: 1,
            clouds: 1,
        });
        writer.on_event(&Event::DecideStart {
            t: Time::ZERO,
            pending: 1,
        });
        writer.on_event(&Event::DecideEnd {
            t: Time::ZERO,
            wall: Duration::from_micros(3),
            directives: 1,
        });
        writer.on_event(&Event::Placed {
            job: 0,
            origin: 0,
            target: Unit::Edge(0),
            phase: PhaseKind::Compute,
            interval: Interval::from_secs(0.0, 1.5),
            volume: 0.0,
        });
        writer.on_event(&Event::Placed {
            job: 0,
            origin: 0,
            target: Unit::Cloud(0),
            phase: PhaseKind::Compute,
            interval: Interval::from_secs(1.5, 2.0),
            volume: 0.0,
        });
        writer.on_event(&Event::Completed {
            t: Time::new(2.0),
            job: 0,
            response: 2.0,
            stretch: 1.0,
        });
        writer.on_event(&Event::RunEnd {
            makespan: Time::new(2.0),
        });
    }

    #[test]
    fn output_is_valid_sorted_chrome_json() {
        let mut writer = ChromeTraceWriter::new();
        feed(&mut writer);
        let doc = json::parse(&writer.to_json_string()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty());
        // Timestamps are monotone over the non-metadata records.
        let mut last = f64::NEG_INFINITY;
        for e in events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        {
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last, "ts went backwards: {ts} < {last}");
            last = ts;
        }
    }

    #[test]
    fn duration_pairs_balance_per_track() {
        let mut writer = ChromeTraceWriter::new();
        feed(&mut writer);
        let doc = writer.to_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let mut open: std::collections::BTreeMap<i64, i64> = Default::default();
        for e in events {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            let tid = e.get("tid").and_then(Json::as_f64).unwrap() as i64;
            match ph {
                "B" => *open.entry(tid).or_insert(0) += 1,
                "E" => {
                    let n = open.entry(tid).or_insert(0);
                    *n -= 1;
                    assert!(*n >= 0, "E without matching B on track {tid}");
                }
                _ => {}
            }
        }
        assert!(open.values().all(|&n| n == 0), "unbalanced B/E: {open:?}");
    }

    #[test]
    fn tracks_get_metadata_names() {
        let mut writer = ChromeTraceWriter::new();
        feed(&mut writer);
        let doc = writer.to_json();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"policy"));
        assert!(names.contains(&"edge-0 cpu"));
        assert!(names.contains(&"cloud-0 cpu"));
    }
}
