//! Shared fixed-bucket log₂ histogram.
//!
//! Every distribution the telemetry layer tracks — decide latency, engine
//! phase spans, job stretch — lands in the same [`Log2Histogram`] type.
//! Buckets are powers of two, derived from the IEEE-754 exponent of the
//! recorded value, so recording is a handful of integer operations with no
//! allocation, no `log`, and no branching beyond range clamps. That makes
//! it cheap enough to sit inside the engine's inner loop.

use crate::json::Json;
use std::time::Duration;

/// Smallest binary exponent with its own bucket; values below `2^EXP_MIN`
/// (including zero and subnormals) fall into the underflow bucket.
const EXP_MIN: i32 = -64;
/// One-past-largest binary exponent with its own bucket; values at or
/// above `2^EXP_MAX` fall into the overflow bucket.
const EXP_MAX: i32 = 64;
/// Number of finite power-of-two buckets.
const INNER: usize = (EXP_MAX - EXP_MIN) as usize;

/// Fixed-size log₂-bucket histogram over non-negative `f64` values.
///
/// Bucket `i` (inner) covers `[2^(EXP_MIN+i), 2^(EXP_MIN+i+1))`; an
/// underflow bucket catches values below `2^-64` (≈ 5.4e-20, effectively
/// "zero" for both seconds and stretch values) and an overflow bucket
/// catches values at or above `2^64`. The value's bucket is read straight
/// from its floating-point exponent, so [`Log2Histogram::record`] costs a
/// few integer ops — suitable for per-engine-step use.
///
/// Values are unit-agnostic: the decide-latency and phase-span histograms
/// record seconds, the stretch histogram records dimensionless ratios.
#[derive(Clone, Debug, PartialEq)]
pub struct Log2Histogram {
    /// `[underflow, inner buckets ..., overflow]`.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            counts: vec![0; INNER + 2],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }
}

impl Log2Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Index of the bucket holding `v` (assumed non-negative).
    #[inline]
    fn bucket_index(v: f64) -> usize {
        // Biased IEEE-754 exponent: floor(log2 v) for normal values,
        // -1023 for zero/subnormals (which underflow anyway).
        let e = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        if e < EXP_MIN {
            0
        } else if e >= EXP_MAX {
            INNER + 1
        } else {
            (e - EXP_MIN) as usize + 1
        }
    }

    /// Upper bound of bucket `idx`; the overflow bucket is open.
    fn bucket_upper(idx: usize) -> f64 {
        if idx > INNER {
            f64::INFINITY
        } else {
            // Bucket idx (1-based inner) covers up to 2^(EXP_MIN + idx).
            ((EXP_MIN + idx as i32) as f64).exp2()
        }
    }

    /// Records one observation. Negative and NaN inputs are clamped to 0
    /// (they land in the underflow bucket).
    #[inline]
    pub fn record(&mut self, value: f64) {
        let v = if value > 0.0 { value } else { 0.0 };
        self.total += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.counts[Self::bucket_index(v)] += 1;
    }

    /// Records a wall-clock duration in seconds.
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate percentile for `p` in `[0, 100]`.
    ///
    /// The estimate is the upper bound of the bucket containing the
    /// requested rank, clamped to the observed maximum (so `percentile(100)`
    /// is exact). Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0 * self.total as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = Self::bucket_upper(idx);
                return if upper.is_finite() {
                    upper.min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// JSON form: summary stats plus the non-empty buckets as
    /// `{"le": upper_bound, "count": n}` entries (`"le": "inf"` for the
    /// open overflow bucket).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| {
                let upper = Self::bucket_upper(idx);
                Json::obj(vec![
                    (
                        "le",
                        if upper.is_finite() {
                            Json::Num(upper)
                        } else {
                            Json::str("inf")
                        },
                    ),
                    ("count", Json::Num(c as f64)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("count", Json::Num(self.total as f64)),
            ("sum", Json::Num(self.sum)),
            ("min", Json::Num(self.min())),
            ("max", Json::Num(self.max)),
            ("mean", Json::Num(self.mean())),
            ("p50", Json::Num(self.percentile(50.0))),
            ("p99", Json::Num(self.percentile(99.0))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_binary_exponents() {
        // 1.5 has exponent 0 → bucket upper bound 2.0.
        let mut h = Log2Histogram::new();
        h.record(1.5);
        let json = h.to_json();
        let buckets = json.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("le").and_then(Json::as_f64), Some(2.0));
        // Exact powers of two start a new bucket: 2.0 → (2, 4].
        let mut h = Log2Histogram::new();
        h.record(2.0);
        let json = h.to_json();
        let buckets = json.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets[0].get("le").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn summary_stats_track_observations() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.percentile(50.0), 0.0);
        for &v in &[1e-6, 2e-6, 4e-6, 1e-3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - (1e-6 + 2e-6 + 4e-6 + 1e-3) / 4.0).abs() < 1e-12);
        assert_eq!(h.min(), 1e-6);
        assert_eq!(h.max(), 1e-3);
        let p50 = h.percentile(50.0);
        assert!((1e-6..1e-3).contains(&p50), "p50 {p50}");
        assert_eq!(h.percentile(100.0), 1e-3);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let mut h = Log2Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 / 100.0);
        }
        let mut last = 0.0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
        // p50 of uniform 0.01..10.0 must land within its power-of-two
        // bucket: rank 500 is 5.0, bucket (4, 8].
        assert_eq!(h.percentile(50.0), 8.0);
        assert_eq!(h.percentile(100.0), 10.0);
    }

    #[test]
    fn extremes_land_in_open_buckets() {
        let mut h = Log2Histogram::new();
        h.record(0.0); // underflow
        h.record(1e-30); // below 2^-64 → underflow
        h.record(1e25); // above 2^64 → overflow
        h.record(-3.0); // clamped to 0 → underflow
        h.record(f64::NAN); // clamped to 0 → underflow
        assert_eq!(h.count(), 5);
        let json = h.to_json();
        let buckets = json.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].get("count").and_then(Json::as_f64), Some(4.0));
        assert_eq!(buckets[1].get("le").and_then(Json::as_str), Some("inf"));
        // The percentile of an all-extreme distribution stays finite.
        assert_eq!(h.percentile(100.0), 1e25);
    }

    #[test]
    fn durations_record_as_seconds() {
        let mut h = Log2Histogram::new();
        h.record_duration(Duration::from_millis(3));
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 3e-3).abs() < 1e-12);
        // 3 ms has exponent -9 (2^-9 = 1.95 ms ≤ 3 ms < 2^-8 = 3.9 ms).
        assert!((h.percentile(50.0) - 3e-3).abs() < 1e-12, "clamped to max");
    }
}
