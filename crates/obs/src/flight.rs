//! Flight recorder: a fixed-size ring buffer of recent engine events.
//!
//! [`FlightRecorder`] is an [`Observer`] that keeps the last K events in a
//! preallocated ring of plain-data [`FlightEntry`] records — no per-event
//! allocation, no formatting — so it can ride along on every run at
//! negligible cost. When a run dies (the engine stalls, a serve session
//! hits an error), the ring is dumped as a readable JSON artifact into the
//! failure-dump directory (see [`failure_dir`]), giving the last-K-events
//! forensics needed to reconstruct what the engine was doing when it
//! wedged.

use crate::json::Json;
use crate::{Event, Observer, Unit};
use std::path::PathBuf;

/// Default ring capacity when using [`FlightRecorder::new`].
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded event, flattened to plain data.
///
/// Every entry carries the event tag, the virtual time, and up to three
/// payload slots whose meaning depends on the tag (a job index, a unit,
/// and a numeric value — e.g. a `completed` entry stores the job and its
/// stretch; a `decide-end` entry stores the wall-clock seconds in `value`
/// and the directive count in `n`). Unused slots hold sentinels and are
/// omitted from the JSON dump.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightEntry {
    /// Monotone sequence number (0-based, counts every event seen).
    pub seq: u64,
    /// The event's stable kebab-case tag ([`Event::tag`]).
    pub tag: &'static str,
    /// Virtual time in seconds (0 for timeless events like `run-start`).
    pub t: f64,
    /// Job index, or -1 when the event has none.
    pub job: i64,
    /// Resource the event concerns, when it has one.
    pub unit: Option<Unit>,
    /// Tag-dependent numeric payload (stretch, wall seconds, capacity
    /// factor, …); NaN when the event has none.
    pub value: f64,
    /// Tag-dependent count payload (pending depth, directive count,
    /// feasibility flag, …); -1 when the event has none.
    pub n: i64,
}

impl FlightEntry {
    fn from_event(seq: u64, event: &Event) -> FlightEntry {
        let mut e = FlightEntry {
            seq,
            tag: event.tag(),
            t: 0.0,
            job: -1,
            unit: None,
            value: f64::NAN,
            n: -1,
        };
        match event {
            Event::RunStart { jobs, .. } => e.n = *jobs as i64,
            Event::JobReleased { t, job } | Event::JobSubmitted { t, job } => {
                e.t = t.seconds();
                e.job = *job as i64;
            }
            Event::DecideStart { t, pending } | Event::DecideSkipped { t, pending } => {
                e.t = t.seconds();
                e.n = *pending as i64;
            }
            Event::DecideEnd {
                t,
                wall,
                directives,
            } => {
                e.t = t.seconds();
                e.value = wall.as_secs_f64();
                e.n = *directives as i64;
            }
            Event::Placed {
                job,
                target,
                interval,
                volume,
                ..
            } => {
                e.t = interval.start().seconds();
                e.job = *job as i64;
                e.unit = Some(*target);
                e.value = *volume;
            }
            Event::Restarted { t, job, to, .. } => {
                e.t = t.seconds();
                e.job = *job as i64;
                e.unit = Some(*to);
            }
            Event::Completed {
                t, job, stretch, ..
            } => {
                e.t = t.seconds();
                e.job = *job as i64;
                e.value = *stretch;
            }
            Event::UnitDown { t, unit } | Event::UnitUp { t, unit } => {
                e.t = t.seconds();
                e.unit = Some(*unit);
            }
            Event::LinkDegraded { t, edge, factor } => {
                e.t = t.seconds();
                e.unit = Some(Unit::Edge(*edge));
                e.value = *factor;
            }
            Event::JobKilled { t, job, unit } => {
                e.t = t.seconds();
                e.job = *job as i64;
                e.unit = Some(*unit);
            }
            Event::BinarySearchProbe {
                t,
                stretch,
                feasible,
            } => {
                e.t = t.seconds();
                e.value = *stretch;
                e.n = *feasible as i64;
            }
            Event::PlatformChanged {
                t, version, unit, ..
            } => {
                e.t = t.seconds();
                e.unit = Some(*unit);
                e.n = *version as i64;
            }
            Event::RunEnd { makespan } => e.t = makespan.seconds(),
        }
        e
    }

    fn to_json(self) -> Json {
        let mut fields = vec![
            ("seq", Json::Num(self.seq as f64)),
            ("tag", Json::str(self.tag)),
            ("t", Json::Num(self.t)),
        ];
        if self.job >= 0 {
            fields.push(("job", Json::Num(self.job as f64)));
        }
        if let Some(unit) = self.unit {
            fields.push(("unit", Json::str(unit.to_string())));
        }
        if !self.value.is_nan() {
            fields.push(("value", Json::Num(self.value)));
        }
        if self.n >= 0 {
            fields.push(("n", Json::Num(self.n as f64)));
        }
        Json::obj(fields)
    }
}

/// Ring buffer of the last K engine events (see the module docs).
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    entries: Vec<FlightEntry>,
    capacity: usize,
    /// Index the next entry will be written to once the ring is full.
    head: usize,
    seen: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding the last [`DEFAULT_CAPACITY`] events.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// A recorder holding the last `capacity` events (min 1). The ring is
    /// preallocated here; recording never allocates.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            entries: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            seen: 0,
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total events seen over the recorder's lifetime (including ones the
    /// ring has already overwritten).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Events seen but no longer held.
    pub fn dropped(&self) -> u64 {
        self.seen - self.len() as u64
    }

    /// The held entries, oldest first.
    pub fn entries(&self) -> Vec<FlightEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(&self.entries[self.head..]);
        out.extend_from_slice(&self.entries[..self.head]);
        out
    }

    /// Serializes the ring (`schema: "mmsec-flight/1"`), oldest event
    /// first.
    pub fn to_json(&self) -> Json {
        let events: Vec<Json> = self
            .entries()
            .into_iter()
            .map(FlightEntry::to_json)
            .collect();
        Json::obj(vec![
            ("schema", Json::str("mmsec-flight/1")),
            ("capacity", Json::int(self.capacity)),
            ("recorded", Json::int(self.len())),
            ("total_seen", Json::Num(self.seen as f64)),
            ("dropped", Json::Num(self.dropped() as f64)),
            ("events", Json::Arr(events)),
        ])
    }

    /// Pretty-printed JSON document (see [`FlightRecorder::to_json`]).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Writes the ring as `<label>-flight.json` under [`failure_dir`] and
    /// returns the path. Returns `None` when nothing was recorded or the
    /// write fails (forensics must never turn a failure into a panic).
    pub fn dump(&self, label: &str) -> Option<PathBuf> {
        if self.is_empty() {
            return None;
        }
        let dir = failure_dir();
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("{label}-flight.json"));
        std::fs::write(&path, self.to_json_string()).ok()?;
        Some(path)
    }
}

impl Observer for FlightRecorder {
    #[inline]
    fn on_event(&mut self, event: &Event) {
        let entry = FlightEntry::from_event(self.seen, event);
        self.seen += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.entries[self.head] = entry;
            self.head = (self.head + 1) % self.capacity;
        }
    }
}

/// The failure-artifact directory: `$MMSEC_FAILURE_DIR`, defaulting to
/// `target/failures`. Shared by the bench harness's `TrialError` dumps and
/// the flight-recorder dumps so all forensics land in one place.
pub fn failure_dir() -> PathBuf {
    std::env::var_os("MMSEC_FAILURE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("failures"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_sim::Time;

    fn released(job: usize, t: f64) -> Event {
        Event::JobReleased {
            t: Time::new(t),
            job,
        }
    }

    #[test]
    fn ring_wraps_and_keeps_the_newest_entries() {
        let mut fr = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            fr.on_event(&released(i, i as f64));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.capacity(), 4);
        assert_eq!(fr.total_seen(), 10);
        assert_eq!(fr.dropped(), 6);
        let entries = fr.entries();
        // Oldest-first: the surviving window is events 6..10.
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let jobs: Vec<i64> = entries.iter().map(|e| e.job).collect();
        assert_eq!(jobs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_ring_preserves_order() {
        let mut fr = FlightRecorder::with_capacity(8);
        for i in 0..3 {
            fr.on_event(&released(i, i as f64));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 0);
        let seqs: Vec<u64> = fr.entries().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn dump_json_is_parseable_and_complete() {
        let mut fr = FlightRecorder::with_capacity(3);
        fr.on_event(&Event::DecideStart {
            t: Time::new(1.0),
            pending: 5,
        });
        fr.on_event(&Event::DecideEnd {
            t: Time::new(1.0),
            wall: std::time::Duration::from_micros(7),
            directives: 2,
        });
        fr.on_event(&Event::Completed {
            t: Time::new(2.0),
            job: 1,
            response: 1.5,
            stretch: 3.0,
        });
        let text = fr.to_json_string();
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("mmsec-flight/1")
        );
        assert_eq!(doc.get("total_seen").and_then(Json::as_f64), Some(3.0));
        let events = doc.get("events").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("tag").and_then(Json::as_str),
            Some("decide-start")
        );
        assert_eq!(events[0].get("n").and_then(Json::as_f64), Some(5.0));
        // decide-start has no job/unit/value → the slots are omitted.
        assert!(events[0].get("job").is_none());
        assert!(events[0].get("unit").is_none());
        assert!(events[0].get("value").is_none());
        assert_eq!(events[2].get("job").and_then(Json::as_f64), Some(1.0));
        assert_eq!(events[2].get("value").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn empty_recorder_refuses_to_dump() {
        let fr = FlightRecorder::new();
        assert!(fr.dump("nothing").is_none());
    }
}
