//! Run-level metrics aggregated from the event stream.
//!
//! [`MetricsRecorder`] is an [`Observer`] that folds events into compact
//! aggregates as they arrive — counters, decide-latency and stretch
//! histograms (both on the shared [`Log2Histogram`] type), per-unit busy
//! time (→ utilization), communication volume, ready-queue depth samples,
//! and binary-search probe counts — and serializes the result with
//! [`MetricsRecorder::to_json`]. Memory use is bounded: the only
//! per-event growth is the decimated queue-depth sample buffer, capped at
//! [`MAX_QUEUE_SAMPLES`].

use std::collections::BTreeMap;

use crate::hist::Log2Histogram;
use crate::json::Json;
use crate::{Event, Observer, PhaseKind};

/// Hard cap on stored queue-depth samples; past it the recorder doubles
/// its sampling stride and keeps every other retained sample.
pub const MAX_QUEUE_SAMPLES: usize = 4096;

#[derive(Clone, Debug, Default)]
struct UnitStats {
    busy_seconds: f64,
    intervals: u64,
    comm_volume: f64,
}

/// Aggregating observer; see the module docs.
#[derive(Clone, Debug, Default)]
pub struct MetricsRecorder {
    policy: String,
    jobs: usize,
    events: u64,
    releases: u64,
    completions: u64,
    restarts: u64,
    restarts_per_job: BTreeMap<usize, u64>,
    decides: u64,
    decide_skips: u64,
    directives: u64,
    decide_latency: Log2Histogram,
    stretch: Log2Histogram,
    response_sum: f64,
    response_max: f64,
    probes: u64,
    probes_feasible: u64,
    unit_downs: u64,
    unit_ups: u64,
    job_kills: u64,
    link_changes: u64,
    platform_changes: u64,
    platform_version: u64,
    /// Accumulated down-seconds per unit display name.
    downtime: BTreeMap<String, f64>,
    /// Units currently down, with the time the outage began.
    down_since: BTreeMap<String, f64>,
    units: BTreeMap<String, UnitStats>,
    uplink_volume: f64,
    downlink_volume: f64,
    queue_samples: Vec<(f64, usize)>,
    queue_stride: usize,
    queue_seen: usize,
    queue_max: usize,
    makespan: f64,
}

impl MetricsRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        MetricsRecorder {
            queue_stride: 1,
            ..MetricsRecorder::default()
        }
    }

    /// Number of events folded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total restarts observed (policy retargets plus fault kills).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Jobs whose in-flight work was wiped by a unit crash.
    pub fn job_kills(&self) -> u64 {
        self.job_kills
    }

    /// Unit crash events observed.
    pub fn unit_downs(&self) -> u64 {
        self.unit_downs
    }

    /// The decide-latency histogram (values are wall-clock seconds).
    pub fn decide_latency(&self) -> &Log2Histogram {
        &self.decide_latency
    }

    /// The per-job stretch histogram (dimensionless ratios, one sample
    /// per completion).
    pub fn stretch(&self) -> &Log2Histogram {
        &self.stretch
    }

    fn sample_queue(&mut self, t: f64, depth: usize) {
        self.queue_max = self.queue_max.max(depth);
        self.queue_seen += 1;
        if (self.queue_seen - 1) % self.queue_stride != 0 {
            return;
        }
        self.queue_samples.push((t, depth));
        if self.queue_samples.len() >= MAX_QUEUE_SAMPLES {
            // Keep every other sample and double the stride: the buffer
            // stays bounded while coverage stays uniform over the run.
            let mut keep = 0;
            for i in (0..self.queue_samples.len()).step_by(2) {
                self.queue_samples[keep] = self.queue_samples[i];
                keep += 1;
            }
            self.queue_samples.truncate(keep);
            self.queue_stride *= 2;
        }
    }

    /// Serializes the aggregates. Utilization is busy time divided by the
    /// final makespan (0 when the makespan is 0).
    pub fn to_json(&self) -> Json {
        let denom = if self.makespan > 0.0 {
            self.makespan
        } else {
            f64::INFINITY
        };
        let units: Vec<Json> = self
            .units
            .iter()
            .map(|(track, st)| {
                Json::obj(vec![
                    ("unit", Json::str(track.clone())),
                    ("busy_seconds", Json::Num(st.busy_seconds)),
                    ("intervals", Json::Num(st.intervals as f64)),
                    ("utilization", Json::Num(st.busy_seconds / denom)),
                    ("comm_volume", Json::Num(st.comm_volume)),
                ])
            })
            .collect();
        let restarts_per_job: Vec<Json> = self
            .restarts_per_job
            .iter()
            .map(|(job, n)| {
                Json::obj(vec![
                    ("job", Json::int(*job)),
                    ("restarts", Json::Num(*n as f64)),
                ])
            })
            .collect();
        let queue: Vec<Json> = self
            .queue_samples
            .iter()
            .map(|&(t, d)| Json::Arr(vec![Json::Num(t), Json::int(d)]))
            .collect();
        let mut fields = vec![
            ("schema", Json::str("mmsec-metrics/2")),
            ("policy", Json::str(self.policy.clone())),
            ("jobs", Json::int(self.jobs)),
            ("makespan_seconds", Json::Num(self.makespan)),
            (
                "counters",
                Json::obj(vec![
                    ("events", Json::Num(self.events as f64)),
                    ("releases", Json::Num(self.releases as f64)),
                    ("completions", Json::Num(self.completions as f64)),
                    ("restarts", Json::Num(self.restarts as f64)),
                    ("decides", Json::Num(self.decides as f64)),
                    ("decide_skips", Json::Num(self.decide_skips as f64)),
                    (
                        "engine_events",
                        Json::Num((self.decides + self.decide_skips) as f64),
                    ),
                    ("directives", Json::Num(self.directives as f64)),
                    ("binary_search_probes", Json::Num(self.probes as f64)),
                    (
                        "binary_search_probes_feasible",
                        Json::Num(self.probes_feasible as f64),
                    ),
                ]),
            ),
            ("decide_latency", self.decide_latency.to_json()),
            ("stretch", self.stretch.to_json()),
            (
                "responses",
                Json::obj(vec![
                    (
                        "mean_seconds",
                        Json::Num(if self.completions == 0 {
                            0.0
                        } else {
                            self.response_sum / self.completions as f64
                        }),
                    ),
                    ("max_seconds", Json::Num(self.response_max)),
                ]),
            ),
            ("units", Json::Arr(units)),
            (
                "communication",
                Json::obj(vec![
                    ("uplink_volume", Json::Num(self.uplink_volume)),
                    ("downlink_volume", Json::Num(self.downlink_volume)),
                ]),
            ),
            ("restarts_per_job", Json::Arr(restarts_per_job)),
            (
                "ready_queue",
                Json::obj(vec![
                    ("max_depth", Json::int(self.queue_max)),
                    ("sample_stride", Json::int(self.queue_stride)),
                    ("samples", Json::Arr(queue)),
                ]),
            ),
        ];
        // Fault section only when fault injection was active, so fault-free
        // runs serialize exactly as before this section existed.
        if self.unit_downs + self.unit_ups + self.job_kills + self.link_changes > 0 {
            let downtime: Vec<Json> = self
                .downtime
                .iter()
                .map(|(unit, secs)| {
                    Json::obj(vec![
                        ("unit", Json::str(unit.clone())),
                        ("down_seconds", Json::Num(*secs)),
                    ])
                })
                .collect();
            fields.push((
                "faults",
                Json::obj(vec![
                    ("unit_downs", Json::Num(self.unit_downs as f64)),
                    ("unit_ups", Json::Num(self.unit_ups as f64)),
                    ("job_kills", Json::Num(self.job_kills as f64)),
                    ("link_changes", Json::Num(self.link_changes as f64)),
                    ("downtime", Json::Arr(downtime)),
                ]),
            ));
        }
        // Platform section only when the platform actually mutated, so
        // static-platform runs serialize exactly as before.
        if self.platform_changes > 0 {
            fields.push((
                "platform",
                Json::obj(vec![
                    ("changes", Json::Num(self.platform_changes as f64)),
                    ("version", Json::Num(self.platform_version as f64)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Pretty-printed JSON document (see [`MetricsRecorder::to_json`]).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

impl Observer for MetricsRecorder {
    fn on_event(&mut self, event: &Event) {
        self.events += 1;
        match event {
            Event::RunStart { policy, jobs, .. } => {
                self.policy = policy.clone();
                self.jobs = *jobs;
            }
            Event::JobReleased { .. } => self.releases += 1,
            // Submission is bookkeeping, not simulation activity; the
            // release that follows is what the metrics track.
            Event::JobSubmitted { .. } => {}
            Event::DecideStart { t, pending } => {
                self.sample_queue(t.seconds(), *pending);
            }
            Event::DecideSkipped { t, pending } => {
                self.decide_skips += 1;
                self.sample_queue(t.seconds(), *pending);
            }
            Event::DecideEnd {
                wall, directives, ..
            } => {
                self.decides += 1;
                self.directives += *directives as u64;
                self.decide_latency.record_duration(*wall);
            }
            Event::Placed {
                target,
                phase,
                interval,
                volume,
                ..
            } => {
                let st = self.units.entry(target.track(*phase)).or_default();
                st.busy_seconds += interval.length().seconds();
                st.intervals += 1;
                st.comm_volume += volume;
                match phase {
                    PhaseKind::Uplink => self.uplink_volume += volume,
                    PhaseKind::Downlink => self.downlink_volume += volume,
                    PhaseKind::Compute => {}
                }
            }
            Event::Restarted { job, .. } => {
                self.restarts += 1;
                *self.restarts_per_job.entry(*job).or_insert(0) += 1;
            }
            Event::Completed {
                response, stretch, ..
            } => {
                self.completions += 1;
                self.response_sum += response;
                self.response_max = self.response_max.max(*response);
                self.stretch.record(*stretch);
            }
            Event::BinarySearchProbe { feasible, .. } => {
                self.probes += 1;
                if *feasible {
                    self.probes_feasible += 1;
                }
            }
            Event::UnitDown { t, unit } => {
                self.unit_downs += 1;
                self.down_since
                    .entry(unit.to_string())
                    .or_insert(t.seconds());
            }
            Event::UnitUp { t, unit } => {
                self.unit_ups += 1;
                if let Some(since) = self.down_since.remove(&unit.to_string()) {
                    *self.downtime.entry(unit.to_string()).or_insert(0.0) +=
                        (t.seconds() - since).max(0.0);
                }
            }
            Event::LinkDegraded { .. } => self.link_changes += 1,
            Event::PlatformChanged { version, .. } => {
                self.platform_changes += 1;
                self.platform_version = (*version).max(self.platform_version);
            }
            Event::JobKilled { job, .. } => {
                // A kill is a forced restart: fold it into the restart
                // aggregates so the recorder matches the engine's
                // `stats.restarts`, and count it separately as well.
                self.job_kills += 1;
                self.restarts += 1;
                *self.restarts_per_job.entry(*job).or_insert(0) += 1;
            }
            Event::RunEnd { makespan } => {
                self.makespan = makespan.seconds();
                // Close outages still open at the end of the run (e.g.
                // fail-stopped units have no recovery event).
                for (unit, since) in std::mem::take(&mut self.down_since) {
                    *self.downtime.entry(unit).or_insert(0.0) += (self.makespan - since).max(0.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unit;
    use mmsec_sim::{Interval, Time};
    use std::time::Duration;

    #[test]
    fn recorder_folds_a_small_run() {
        let mut rec = MetricsRecorder::new();
        rec.on_event(&Event::RunStart {
            policy: "test".into(),
            jobs: 2,
            edges: 1,
            clouds: 1,
        });
        rec.on_event(&Event::JobReleased {
            t: Time::ZERO,
            job: 0,
        });
        rec.on_event(&Event::DecideStart {
            t: Time::ZERO,
            pending: 1,
        });
        rec.on_event(&Event::DecideEnd {
            t: Time::ZERO,
            wall: Duration::from_micros(5),
            directives: 1,
        });
        rec.on_event(&Event::Placed {
            job: 0,
            origin: 0,
            target: Unit::Edge(0),
            phase: PhaseKind::Compute,
            interval: Interval::from_secs(0.0, 2.0),
            volume: 0.0,
        });
        rec.on_event(&Event::Placed {
            job: 1,
            origin: 0,
            target: Unit::Cloud(0),
            phase: PhaseKind::Uplink,
            interval: Interval::from_secs(0.0, 1.0),
            volume: 3.5,
        });
        rec.on_event(&Event::Restarted {
            t: Time::new(1.0),
            job: 0,
            from: Unit::Edge(0),
            to: Unit::Cloud(0),
        });
        rec.on_event(&Event::Completed {
            t: Time::new(2.0),
            job: 0,
            response: 2.0,
            stretch: 4.0,
        });
        rec.on_event(&Event::RunEnd {
            makespan: Time::new(4.0),
        });

        assert_eq!(rec.events(), 9);
        assert_eq!(rec.restarts(), 1);
        assert_eq!(rec.stretch().count(), 1);
        assert_eq!(rec.stretch().max(), 4.0);
        let json = rec.to_json();
        assert_eq!(
            json.get("stretch")
                .and_then(|s| s.get("max"))
                .and_then(Json::as_f64),
            Some(4.0)
        );
        let counters = json.get("counters").unwrap();
        assert_eq!(counters.get("releases").and_then(Json::as_f64), Some(1.0));
        assert_eq!(counters.get("restarts").and_then(Json::as_f64), Some(1.0));
        let units = json.get("units").and_then(Json::as_arr).unwrap();
        assert_eq!(units.len(), 2);
        // edge-0 cpu busy 2 s over makespan 4 s → utilization 0.5.
        let edge = units
            .iter()
            .find(|u| u.get("unit").and_then(Json::as_str) == Some("edge-0 cpu"))
            .expect("edge cpu track present");
        assert_eq!(edge.get("utilization").and_then(Json::as_f64), Some(0.5));
        let comm = json.get("communication").unwrap();
        assert_eq!(comm.get("uplink_volume").and_then(Json::as_f64), Some(3.5));
    }

    #[test]
    fn recorder_folds_fault_events() {
        let mut rec = MetricsRecorder::new();
        rec.on_event(&Event::UnitDown {
            t: Time::new(1.0),
            unit: Unit::Edge(0),
        });
        rec.on_event(&Event::JobKilled {
            t: Time::new(1.0),
            job: 3,
            unit: Unit::Edge(0),
        });
        rec.on_event(&Event::UnitUp {
            t: Time::new(3.5),
            unit: Unit::Edge(0),
        });
        rec.on_event(&Event::UnitDown {
            t: Time::new(5.0),
            unit: Unit::Cloud(1),
        });
        rec.on_event(&Event::LinkDegraded {
            t: Time::new(6.0),
            edge: 0,
            factor: 0.5,
        });
        rec.on_event(&Event::RunEnd {
            makespan: Time::new(7.0),
        });
        assert_eq!(rec.job_kills(), 1);
        assert_eq!(rec.unit_downs(), 2);
        assert_eq!(rec.restarts(), 1, "kills count as restarts");
        let json = rec.to_json();
        let faults = json.get("faults").expect("faults section present");
        assert_eq!(faults.get("unit_downs").and_then(Json::as_f64), Some(2.0));
        assert_eq!(faults.get("job_kills").and_then(Json::as_f64), Some(1.0));
        let downtime = faults.get("downtime").and_then(Json::as_arr).unwrap();
        // edge-0 down 2.5 s; cloud-1 still down at run end → 2 s.
        assert_eq!(downtime.len(), 2);
        let cloud = downtime
            .iter()
            .find(|d| d.get("unit").and_then(Json::as_str) == Some("cloud-1"))
            .unwrap();
        assert_eq!(cloud.get("down_seconds").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn recorder_counts_decide_skips() {
        let mut rec = MetricsRecorder::new();
        rec.on_event(&Event::DecideStart {
            t: Time::ZERO,
            pending: 1,
        });
        rec.on_event(&Event::DecideEnd {
            t: Time::ZERO,
            wall: Duration::from_micros(2),
            directives: 1,
        });
        rec.on_event(&Event::DecideSkipped {
            t: Time::new(1.0),
            pending: 2,
        });
        rec.on_event(&Event::DecideSkipped {
            t: Time::new(2.0),
            pending: 1,
        });
        rec.on_event(&Event::RunEnd {
            makespan: Time::new(3.0),
        });
        let json = rec.to_json();
        let counters = json.get("counters").unwrap();
        assert_eq!(counters.get("decides").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            counters.get("decide_skips").and_then(Json::as_f64),
            Some(2.0)
        );
        // Engine-side event count: decides + skips.
        assert_eq!(
            counters.get("engine_events").and_then(Json::as_f64),
            Some(3.0)
        );
        // Skipped decisions still sample the ready queue.
        assert_eq!(rec.queue_samples.len(), 3);
    }

    #[test]
    fn fault_free_json_has_no_fault_section() {
        let mut rec = MetricsRecorder::new();
        rec.on_event(&Event::RunEnd {
            makespan: Time::new(1.0),
        });
        assert!(rec.to_json().get("faults").is_none());
    }

    #[test]
    fn queue_sampling_stays_bounded() {
        let mut rec = MetricsRecorder::new();
        for i in 0..(MAX_QUEUE_SAMPLES * 10) {
            rec.sample_queue(i as f64, i % 17);
        }
        assert!(rec.queue_samples.len() < MAX_QUEUE_SAMPLES);
        assert!(rec.queue_stride > 1);
        assert_eq!(rec.queue_max, 16);
        // Samples remain in time order after decimation.
        for pair in rec.queue_samples.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
    }
}
