//! `mmsec-obs` — observability layer for the simulation engine.
//!
//! The engine and the policies emit a stream of typed [`Event`]s through
//! the [`Observer`] trait. The default is *no observer at all*
//! (`Option<&mut dyn Observer>` is `None` inside the engine), so a plain
//! `simulate` call pays exactly one predictable branch per emission point
//! and nothing else — no allocation, no formatting, no I/O.
//!
//! Provided observers:
//!
//! * [`NullObserver`] — discards everything (useful to measure the cost of
//!   the dispatch itself);
//! * [`MetricsRecorder`] — counters, decide-latency and stretch
//!   histograms, per-unit utilization, queue-depth samples → JSON;
//! * [`ChromeTraceWriter`] — Chrome
//!   trace-event JSON viewable in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`, one track per edge unit / cloud processor plus a
//!   policy track;
//! * [`FlightRecorder`] — fixed-size ring of the last K events, dumped as
//!   a JSON artifact for stall forensics;
//! * [`Fanout`] — broadcasts to several observers;
//! * [`Shared`] — `Rc<RefCell<…>>` wrapper so one recorder can be fed from
//!   two emission sites (engine *and* policy) in a single-threaded run.
//!
//! Beyond the event stream, the crate hosts the engine's phase-timing
//! telemetry: [`PhaseProfiler`] aggregates run-loop span timings into
//! shared fixed-bucket [`Log2Histogram`]s (the same type every other
//! distribution here uses).
//!
//! With the `tracing` feature enabled, `forward_to_tracing` additionally
//! mirrors events to `tracing` subscribers.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use mmsec_sim::{Interval, Time};

pub mod chrome;
pub mod flight;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod profile;

pub use chrome::ChromeTraceWriter;
pub use flight::{failure_dir, FlightEntry, FlightRecorder};
pub use hist::Log2Histogram;
pub use metrics::MetricsRecorder;
pub use profile::{EnginePhase, PhaseProfiler};

/// A processing resource, as seen by the observability layer.
///
/// Kept deliberately independent of the platform crate's richer types so
/// that `mmsec-obs` only depends on `mmsec-sim` and can be consumed by
/// every layer above it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Unit {
    /// Edge unit with the given index.
    Edge(usize),
    /// Cloud processor with the given index.
    Cloud(usize),
    /// Tier hop with the given index (continuum platforms: the link
    /// connecting tier `i` to tier `i+1`; carries no execution intervals,
    /// only platform-change events).
    Hop(usize),
}

impl Unit {
    /// Name of the resource track an interval of `phase` occupies on this
    /// unit (used consistently by the Chrome export and the metrics
    /// recorder): `"edge-j cpu"`, `"edge-j uplink"`, `"edge-j downlink"`,
    /// or `"cloud-k cpu"` etc.
    pub fn track(self, phase: PhaseKind) -> String {
        format!(
            "{self} {}",
            match phase {
                PhaseKind::Compute => "cpu",
                PhaseKind::Uplink => "uplink",
                PhaseKind::Downlink => "downlink",
            }
        )
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unit::Edge(i) => write!(f, "edge-{i}"),
            Unit::Cloud(i) => write!(f, "cloud-{i}"),
            Unit::Hop(i) => write!(f, "hop-{i}"),
        }
    }
}

/// What kind of work an execution interval carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseKind {
    /// Input transfer from the job's origin edge to a cloud processor.
    Uplink,
    /// Computation on the target unit.
    Compute,
    /// Output transfer back from the cloud to the origin edge.
    Downlink,
}

impl PhaseKind {
    /// Short lowercase label used in trace/metric output.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Uplink => "uplink",
            PhaseKind::Compute => "compute",
            PhaseKind::Downlink => "downlink",
        }
    }
}

/// One structured event from the engine or a policy.
///
/// Job and unit identifiers are plain indices into the instance being
/// simulated; times are virtual [`Time`]s except for `DecideEnd::wall`,
/// which is real (wall-clock) policy latency.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Simulation begins.
    RunStart {
        /// Policy display name.
        policy: String,
        /// Number of jobs in the instance.
        jobs: usize,
        /// Number of edge units.
        edges: usize,
        /// Number of cloud processors.
        clouds: usize,
    },
    /// A job's release date was reached.
    JobReleased {
        /// Virtual time of the release.
        t: Time,
        /// Released job index.
        job: usize,
    },
    /// A job was submitted to a running session (streaming mode only:
    /// batch construction does not emit this).
    JobSubmitted {
        /// Virtual time of the submission.
        t: Time,
        /// Submitted job index.
        job: usize,
    },
    /// The policy's `decide` is about to run.
    DecideStart {
        /// Virtual time of the decision point.
        t: Time,
        /// Jobs released but not yet completed.
        pending: usize,
    },
    /// The policy call was skipped by decision-epoch gating: no
    /// decision-relevant state changed since the last invoked decide, so
    /// the engine reused the previous directives.
    DecideSkipped {
        /// Virtual time of the decision point.
        t: Time,
        /// Jobs released but not yet completed.
        pending: usize,
    },
    /// The policy's `decide` returned.
    DecideEnd {
        /// Virtual time of the decision point.
        t: Time,
        /// Wall-clock time the call took.
        wall: Duration,
        /// Number of directives returned.
        directives: usize,
    },
    /// An activity interval was committed to a resource.
    Placed {
        /// Job the interval belongs to.
        job: usize,
        /// Origin edge unit of the job.
        origin: usize,
        /// Resource the interval occupies.
        target: Unit,
        /// Kind of work performed.
        phase: PhaseKind,
        /// The occupied `[start, end)` virtual-time interval.
        interval: Interval,
        /// Communication volume carried (0 for compute phases).
        volume: f64,
    },
    /// A running job was preempted and will restart from scratch.
    Restarted {
        /// Virtual time of the restart.
        t: Time,
        /// Restarted job index.
        job: usize,
        /// Unit the job was running on.
        from: Unit,
        /// Unit the job will run on next.
        to: Unit,
    },
    /// A job finished (downlink delivered / local compute done).
    Completed {
        /// Virtual completion time.
        t: Time,
        /// Completed job index.
        job: usize,
        /// Response time `completion − release` in virtual seconds.
        response: f64,
        /// Achieved stretch: response divided by the job's fastest
        /// possible execution time on the platform.
        stretch: f64,
    },
    /// A unit crashed (fault injection): in-flight work on it is lost.
    UnitDown {
        /// Virtual time of the crash.
        t: Time,
        /// The failed unit.
        unit: Unit,
    },
    /// A crashed unit recovered and accepts work again.
    UnitUp {
        /// Virtual time of the recovery.
        t: Time,
        /// The recovered unit.
        unit: Unit,
    },
    /// An edge's communication link changed capacity (fault injection).
    LinkDegraded {
        /// Virtual time of the change.
        t: Time,
        /// Edge unit whose uplink/downlink pair is affected.
        edge: usize,
        /// New capacity factor: `0.0` outage, `1.0` fully recovered.
        factor: f64,
    },
    /// A job's in-flight work was wiped by a unit crash; the job is
    /// re-released and will re-execute from scratch.
    JobKilled {
        /// Virtual time of the kill.
        t: Time,
        /// Killed job index.
        job: usize,
        /// The unit whose crash caused the kill.
        unit: Unit,
    },
    /// One feasibility probe of SSF-EDF's stretch binary search.
    BinarySearchProbe {
        /// Virtual time of the enclosing decision.
        t: Time,
        /// Stretch value probed.
        stretch: f64,
        /// Whether a feasible plan exists at that stretch.
        feasible: bool,
    },
    /// The platform's permanent shape changed: a committed platform
    /// mutation (elastic join/leave, link or speed re-provisioning).
    /// Temporary fault windows emit `UnitDown`/`UnitUp`/`LinkDegraded`
    /// instead.
    PlatformChanged {
        /// Virtual time of the mutation.
        t: Time,
        /// Platform version after the mutation.
        version: u64,
        /// Stable kebab-case operation name (`"add-edge"`,
        /// `"remove-cloud"`, `"set-link"`, ...).
        op: &'static str,
        /// The unit the mutation concerns (for adds: the joining unit).
        unit: Unit,
    },
    /// Simulation finished.
    RunEnd {
        /// Final virtual time (makespan).
        makespan: Time,
    },
}

impl Event {
    /// Short kebab-case tag naming the event variant (stable; used in
    /// docs, JSON output, and tests).
    pub fn tag(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run-start",
            Event::JobReleased { .. } => "job-released",
            Event::JobSubmitted { .. } => "job-submitted",
            Event::DecideStart { .. } => "decide-start",
            Event::DecideSkipped { .. } => "decide-skipped",
            Event::DecideEnd { .. } => "decide-end",
            Event::Placed { .. } => "placed",
            Event::Restarted { .. } => "restarted",
            Event::Completed { .. } => "completed",
            Event::UnitDown { .. } => "unit-down",
            Event::UnitUp { .. } => "unit-up",
            Event::LinkDegraded { .. } => "link-degraded",
            Event::JobKilled { .. } => "job-killed",
            Event::BinarySearchProbe { .. } => "binary-search-probe",
            Event::PlatformChanged { .. } => "platform-changed",
            Event::RunEnd { .. } => "run-end",
        }
    }
}

/// Receiver of simulation [`Event`]s.
///
/// Implementations must tolerate events arriving in virtual-time order
/// per source but interleaved across sources (policy probes arrive inside
/// the enclosing `DecideStart`/`DecideEnd` pair).
pub trait Observer {
    /// Called once per emitted event.
    fn on_event(&mut self, event: &Event);
}

/// Observer that discards every event. Useful for measuring dispatch
/// overhead and as a placeholder.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&mut self, _event: &Event) {}
}

/// Broadcasts each event to every contained observer, in order.
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Observer>>,
}

impl Fanout {
    /// An empty fanout.
    pub fn new() -> Self {
        Fanout::default()
    }

    /// Adds a sink (builder style).
    pub fn with(mut self, sink: Box<dyn Observer>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: Box<dyn Observer>) {
        self.sinks.push(sink);
    }

    /// Number of sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sinks are registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Observer for Fanout {
    fn on_event(&mut self, event: &Event) {
        for sink in &mut self.sinks {
            sink.on_event(event);
        }
    }
}

/// Shared single-threaded handle to an observer.
///
/// The engine borrows its observer mutably for the whole run, but some
/// events originate *inside* the policy (e.g. SSF-EDF's binary-search
/// probes). `Shared` lets one recorder be handed to both: clone the
/// handle, give one clone to the policy via
/// `OnlineScheduler::attach_observer`, and pass the other to the engine.
pub struct Shared<O: ?Sized>(Rc<RefCell<O>>);

impl<O> Shared<O> {
    /// Wraps an observer for shared access.
    pub fn new(observer: O) -> Self {
        Shared(Rc::new(RefCell::new(observer)))
    }

    /// Consumes the handle and returns the observer, if this is the last
    /// handle.
    pub fn try_unwrap(self) -> Result<O, Shared<O>> {
        Rc::try_unwrap(self.0)
            .map(RefCell::into_inner)
            .map_err(Shared)
    }
}

impl<O: ?Sized> Shared<O> {
    /// Runs `f` with a mutable borrow of the observer.
    pub fn with<T>(&self, f: impl FnOnce(&mut O) -> T) -> T {
        f(&mut self.0.borrow_mut())
    }
}

impl<O: ?Sized> fmt::Debug for Shared<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared(<observer>)")
    }
}

impl<O: Observer + 'static> Shared<O> {
    /// Type-erased clone of this handle, suitable for
    /// `OnlineScheduler::attach_observer`.
    pub fn handle(&self) -> ObserverHandle {
        Shared(self.0.clone() as Rc<RefCell<dyn Observer>>)
    }
}

impl<O: ?Sized> Clone for Shared<O> {
    fn clone(&self) -> Self {
        Shared(self.0.clone())
    }
}

impl<O: Observer + ?Sized> Observer for Shared<O> {
    fn on_event(&mut self, event: &Event) {
        self.0.borrow_mut().on_event(event);
    }
}

/// Type-erased shared observer handle (see [`Shared::handle`]).
pub type ObserverHandle = Shared<dyn Observer>;

/// Mirrors an event to `tracing` subscribers (only with the `tracing`
/// feature; a no-op build of the macro set otherwise).
#[cfg(feature = "tracing")]
pub fn forward_to_tracing(event: &Event) {
    tracing::event!(tracing::Level::DEBUG, "{:?}", event);
}

/// Observer that forwards every event to `tracing` subscribers.
#[cfg(feature = "tracing")]
#[derive(Clone, Copy, Debug, Default)]
pub struct TracingObserver;

#[cfg(feature = "tracing")]
impl Observer for TracingObserver {
    fn on_event(&mut self, event: &Event) {
        forward_to_tracing(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(usize);

    impl Observer for Counter {
        fn on_event(&mut self, _event: &Event) {
            self.0 += 1;
        }
    }

    fn sample_event() -> Event {
        Event::JobReleased {
            t: Time::new(1.0),
            job: 3,
        }
    }

    #[test]
    fn fanout_broadcasts_in_order() {
        let a = Shared::new(Counter(0));
        let b = Shared::new(Counter(0));
        let mut fan = Fanout::new()
            .with(Box::new(a.clone()))
            .with(Box::new(b.clone()));
        assert_eq!(fan.len(), 2);
        for _ in 0..5 {
            fan.on_event(&sample_event());
        }
        assert_eq!(a.with(|c| c.0), 5);
        assert_eq!(b.with(|c| c.0), 5);
    }

    #[test]
    fn shared_handle_feeds_the_same_observer() {
        let shared = Shared::new(Counter(0));
        let mut erased = shared.handle();
        erased.on_event(&sample_event());
        shared.clone().on_event(&sample_event());
        assert_eq!(shared.with(|c| c.0), 2);
    }

    #[test]
    fn event_tags_are_stable() {
        assert_eq!(sample_event().tag(), "job-released");
        assert_eq!(
            Event::RunEnd {
                makespan: Time::ZERO
            }
            .tag(),
            "run-end"
        );
    }

    #[test]
    fn unit_display() {
        assert_eq!(Unit::Edge(2).to_string(), "edge-2");
        assert_eq!(Unit::Cloud(0).to_string(), "cloud-0");
        assert_eq!(PhaseKind::Uplink.label(), "uplink");
    }
}
