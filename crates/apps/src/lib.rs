//! `mmsec-apps` — the workspace's command-line front-ends (`mmsec`,
//! `repro`) and the glue they share: unified CLI failure handling
//! ([`cli::CliError`] with stable exit codes), the minimal NDJSON codec
//! ([`ndjson`]), and the streaming serve loop ([`serve::serve`]) driving
//! a resumable [`mmsec_platform::Session`].
//!
//! Workspace-level examples and integration tests (the top-level
//! `examples/` and `tests/` directories) are also wired through this
//! crate.

#![warn(missing_docs)]

pub mod cli;
pub mod ndjson;
pub mod serve;
pub mod server;
pub mod trace;
