//! Examples and integration tests live in the workspace-level `examples/` and `tests/` directories, wired through this crate.
