//! NDJSON trace codec: export an [`Instance`] as a replayable job stream,
//! import one back — the batch and streaming paths share one format.
//!
//! A trace is newline-delimited flat JSON in the `mmsec serve` record
//! schema:
//!
//! ```text
//! {"type":"spec","edge-speeds":"0.5,0.8","cloud-speeds":"1,1","hop-up":"1","hop-dn":"1.25","cloud-tiers":"1,1"}
//! {"type":"job","origin":0,"release":0,"work":2.5,"up":0.5,"dn":0.25}
//! {"type":"job","origin":1,"release":1.5,"work":4,"up":0,"dn":0}
//! ```
//!
//! * The leading `spec` record is exactly the sharded server's
//!   first-line platform record (`crate::server`): piping a trace into
//!   `mmsec serve --shards N` replays it *streaming*, creating the lane
//!   on the trace's own platform.
//! * Each `job` record is a plain serve submission line (the `type` tag
//!   is tolerated by the submit parser), so the job lines also feed the
//!   single-session `mmsec serve --input` path.
//! * [`read_trace`] turns the same bytes back into an [`Instance`] for
//!   *batch* simulation — `export → import` is bit-identical (numbers
//!   are serialized in shortest round-trip form).
//!
//! ## The `spec` record
//!
//! Two platform forms, sharing one parser (`parse_spec_fields`) with
//! the sharded server:
//!
//! * count form — `edges` / `clouds` unit counts with uniform
//!   `edge-speed` / `cloud-speed` (default 1.0);
//! * list form — `edge-speeds` / `cloud-speeds` comma-joined per-unit
//!   speeds (what the exporter writes; mixing the two forms for the same
//!   side is rejected).
//!
//! Continuum platforms add `hop-up` / `hop-dn` (comma-joined per-hop
//! link-time factors, equal length = tier depth) and optionally
//! `cloud-tiers` (per-cloud tier in `1..=depth`, default: the deepest
//! tier). Cloud unavailability windows ride in `unavail` as
//! semicolon-joined `cloud:start:end` triples. The records stay *flat*
//! (scalar fields only) — lists are strings, not JSON arrays — so the
//! whole protocol keeps parsing with the zero-allocation
//! [`crate::ndjson`] reader.

use crate::cli::CliError;
use crate::ndjson::{parse_object_into, ObjBuf, ObjWriter, Value};
use crate::serve::Reject;
use mmsec_platform::{CloudId, EdgeId, Instance, Job, PlatformSpec};
use mmsec_sim::Interval;
use std::io::{BufRead, Write};

/// Unit-count cap shared by every spec-record consumer (a typo'd count
/// must not allocate gigabytes of platform tables).
const MAX_UNITS: f64 = 4096.0;

fn bad(field: &str, message: String) -> Reject {
    Reject::new("bad-value", field, message)
}

/// Parses a comma-joined list of numbers (`"1,2.5,0.8"`).
fn num_list(field: &str, text: &str) -> Result<Vec<f64>, Reject> {
    let mut out = Vec::new();
    for part in text.split(',') {
        let x: f64 = part
            .trim()
            .parse()
            .map_err(|_| bad(field, format!("field {field:?}: bad number {part:?}")))?;
        if !x.is_finite() {
            return Err(bad(
                field,
                format!("field {field:?}: non-finite entry {part:?}"),
            ));
        }
        out.push(x);
    }
    if out.len() as f64 > MAX_UNITS {
        return Err(bad(
            field,
            format!("field {field:?}: more than {MAX_UNITS} entries"),
        ));
    }
    Ok(out)
}

/// Parses a prospective `{"type": "spec", ...}` record's fields into a
/// platform. Shared by the sharded server's first-line handling and the
/// trace importer; see the module docs for the schema.
pub(crate) fn parse_spec_fields(fields: &[(String, Value)]) -> Result<PlatformSpec, Reject> {
    let mut edges: Option<f64> = None;
    let mut clouds: Option<f64> = None;
    let mut edge_speed = 1.0f64;
    let mut cloud_speed = 1.0f64;
    let mut edge_speeds: Option<Vec<f64>> = None;
    let mut cloud_speeds: Option<Vec<f64>> = None;
    let mut hop_up: Option<Vec<f64>> = None;
    let mut hop_dn: Option<Vec<f64>> = None;
    let mut cloud_tiers: Option<Vec<f64>> = None;
    let mut unavail: Vec<(usize, f64, f64)> = Vec::new();
    for (key, value) in fields {
        let num = |v: &Value| {
            v.as_num().ok_or_else(|| {
                Reject::new("bad-type", key, format!("field {key:?} must be a number"))
            })
        };
        let list = |v: &Value| {
            let s = v.as_str().ok_or_else(|| {
                Reject::new(
                    "bad-type",
                    key,
                    format!("field {key:?} must be a comma-joined string"),
                )
            })?;
            num_list(key, s)
        };
        match key.as_str() {
            "type" | "tenant" | "id" | "tag" => {}
            "edges" => edges = Some(num(value)?),
            "clouds" => clouds = Some(num(value)?),
            "edge-speed" => edge_speed = num(value)?,
            "cloud-speed" => cloud_speed = num(value)?,
            "edge-speeds" => edge_speeds = Some(list(value)?),
            "cloud-speeds" => cloud_speeds = Some(list(value)?),
            "hop-up" => hop_up = Some(list(value)?),
            "hop-dn" => hop_dn = Some(list(value)?),
            "cloud-tiers" => cloud_tiers = Some(list(value)?),
            "unavail" => {
                let s = value.as_str().ok_or_else(|| {
                    Reject::new(
                        "bad-type",
                        key,
                        "field \"unavail\" must be a semicolon-joined string",
                    )
                })?;
                for triple in s.split(';').filter(|t| !t.trim().is_empty()) {
                    let parts: Vec<&str> = triple.split(':').collect();
                    let parsed = (parts.len() == 3)
                        .then(|| {
                            Some((
                                parts[0].trim().parse::<usize>().ok()?,
                                parts[1].trim().parse::<f64>().ok()?,
                                parts[2].trim().parse::<f64>().ok()?,
                            ))
                        })
                        .flatten();
                    match parsed {
                        Some(w) => unavail.push(w),
                        None => {
                            return Err(bad(
                                key,
                                format!("bad window {triple:?} (want cloud:start:end)"),
                            ))
                        }
                    }
                }
            }
            other => {
                return Err(Reject::new(
                    "unknown-field",
                    other,
                    format!("unknown field {other:?}"),
                ))
            }
        }
    }

    // Counts and per-unit lists are alternative forms of the same thing;
    // mixing them for one side would be ambiguous.
    if edges.is_some() && edge_speeds.is_some() {
        return Err(bad(
            "edges",
            "give either \"edges\" or \"edge-speeds\", not both".into(),
        ));
    }
    if clouds.is_some() && cloud_speeds.is_some() {
        return Err(bad(
            "clouds",
            "give either \"clouds\" or \"cloud-speeds\", not both".into(),
        ));
    }
    for (name, count) in [("edges", edges), ("clouds", clouds)] {
        if let Some(count) = count {
            if count < 0.0 || count.fract() != 0.0 || count > MAX_UNITS {
                return Err(bad(
                    name,
                    format!("field {name:?} must be a small non-negative integer, got {count}"),
                ));
            }
        }
    }
    let edge_speeds =
        edge_speeds.unwrap_or_else(|| vec![edge_speed; edges.unwrap_or(1.0) as usize]);
    let cloud_speeds =
        cloud_speeds.unwrap_or_else(|| vec![cloud_speed; clouds.unwrap_or(0.0) as usize]);
    if edge_speeds.is_empty() {
        return Err(bad("edges", "a platform needs at least one edge".into()));
    }

    // Tier graph: both hop lists or neither, equal length; tiers must be
    // integers (range-checking is the spec builder's job).
    let hops: Option<Vec<(f64, f64)>> = match (hop_up, hop_dn) {
        (None, None) => None,
        (Some(up), Some(dn)) => {
            if up.len() != dn.len() {
                return Err(bad(
                    "hop-dn",
                    "\"hop-up\" and \"hop-dn\" must list the same number of hops".into(),
                ));
            }
            Some(up.into_iter().zip(dn).collect())
        }
        _ => {
            return Err(Reject::new(
                "missing-field",
                "hop-up",
                "\"hop-up\" and \"hop-dn\" come together",
            ))
        }
    };
    if cloud_tiers.is_some() && hops.is_none() {
        return Err(bad(
            "cloud-tiers",
            "cloud tiers given but no hop records".into(),
        ));
    }

    let n_clouds = cloud_speeds.len();
    let mut b = PlatformSpec::builder().edges(edge_speeds);
    match hops {
        None => b = b.clouds(cloud_speeds),
        Some(hops) => {
            let depth = hops.len();
            for (u, d) in hops {
                b = b.tier(u, d);
            }
            let tiers = match cloud_tiers {
                None => vec![depth; cloud_speeds.len()],
                Some(list) => {
                    if list.len() != cloud_speeds.len() {
                        return Err(bad(
                            "cloud-tiers",
                            "\"cloud-tiers\" must list one tier per cloud".into(),
                        ));
                    }
                    let mut tiers = Vec::with_capacity(list.len());
                    for t in list {
                        if t < 0.0 || t.fract() != 0.0 {
                            return Err(bad(
                                "cloud-tiers",
                                format!("tiers must be non-negative integers, got {t}"),
                            ));
                        }
                        tiers.push(t as usize);
                    }
                    tiers
                }
            };
            for (s, t) in cloud_speeds.into_iter().zip(tiers) {
                b = b.cloud_at(s, t);
            }
        }
    }
    for (k, start, end) in unavail {
        if k >= n_clouds {
            return Err(bad("unavail", format!("window names unknown cloud {k}")));
        }
        if !(start.is_finite() && end.is_finite() && end >= start && start >= 0.0) {
            return Err(bad("unavail", format!("bad window [{start}, {end})")));
        }
        b = b.unavailability(CloudId(k), Interval::from_secs(start, end));
    }
    b.try_build()
        .map_err(|e| Reject::new("bad-spec", "", e.to_string()))
}

/// Formats `x` exactly as [`ObjWriter::num_field`] does (shortest
/// round-trip; integer-like without the `.0`), for list-in-string fields.
fn fmt_num(out: &mut String, x: f64) {
    use std::fmt::Write as _;
    if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn join_nums(values: impl Iterator<Item = f64>) -> String {
    let mut out = String::new();
    for (i, x) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        fmt_num(&mut out, x);
    }
    out
}

/// Renders the platform as one `{"type":"spec",...}` record (no trailing
/// newline). Always writes the list form.
pub(crate) fn spec_record(spec: &PlatformSpec) -> String {
    let mut w = ObjWriter::typed("spec");
    w.str_field(
        "edge-speeds",
        &join_nums(spec.edges().map(|j| spec.edge_speed(j))),
    );
    w.str_field(
        "cloud-speeds",
        &join_nums(spec.clouds().map(|k| spec.cloud_speed(k))),
    );
    if let Some(topo) = spec.tier_topology() {
        let depth = topo.depth();
        w.str_field("hop-up", &join_nums((0..depth).map(|t| topo.hop(t).0)));
        w.str_field("hop-dn", &join_nums((0..depth).map(|t| topo.hop(t).1)));
        w.str_field(
            "cloud-tiers",
            &join_nums(spec.clouds().map(|k| topo.tier_of(k) as f64)),
        );
    }
    if spec.has_unavailability() {
        let mut windows = String::new();
        for k in spec.clouds() {
            for iv in spec.cloud_unavailability(k).iter() {
                if !windows.is_empty() {
                    windows.push(';');
                }
                use std::fmt::Write as _;
                let _ = write!(windows, "{}:", k.0);
                fmt_num(&mut windows, iv.start().seconds());
                windows.push(':');
                fmt_num(&mut windows, iv.end().seconds());
            }
        }
        w.str_field("unavail", &windows);
    }
    w.finish()
}

/// Exports `inst` as an NDJSON trace: one `spec` record, then one `job`
/// record per job in id order.
pub fn write_trace(inst: &Instance, out: &mut impl Write) -> Result<(), CliError> {
    let io = |e: std::io::Error| CliError::Io(format!("trace output: {e}"));
    writeln!(out, "{}", spec_record(&inst.spec)).map_err(io)?;
    let mut w = ObjWriter::typed("job");
    for job in &inst.jobs {
        w.reset("job");
        w.num_field("origin", job.origin.0 as f64)
            .num_field("release", job.release.seconds())
            .num_field("work", job.work)
            .num_field("up", job.up)
            .num_field("dn", job.dn);
        writeln!(out, "{}", w.close()).map_err(io)?;
    }
    Ok(())
}

/// Imports an NDJSON trace back into an [`Instance`]: the first
/// non-empty line must be the `spec` record; every following line must
/// be a job submission (the serve schema — `type`/`id`/`tag`/`tenant`
/// tags are tolerated, `release` defaults to 0).
pub fn read_trace(input: impl BufRead) -> Result<Instance, CliError> {
    let mut fields = ObjBuf::new();
    let mut spec: Option<PlatformSpec> = None;
    let mut jobs: Vec<Job> = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.map_err(|e| CliError::Io(format!("trace input: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        parse_object_into(line.trim_end(), &mut fields)
            .map_err(|e| CliError::Validation(format!("trace line {lineno}: {e}")))?;
        let kind = fields
            .fields()
            .iter()
            .find_map(|(k, v)| (k == "type").then(|| v.as_str().unwrap_or("")))
            .unwrap_or("");
        if kind == "spec" {
            if spec.is_some() || !jobs.is_empty() {
                return Err(CliError::Validation(format!(
                    "trace line {lineno}: the spec record must come first, exactly once"
                )));
            }
            spec = Some(parse_spec_fields(fields.fields()).map_err(|e| {
                CliError::Validation(format!("trace line {lineno}: {}", e.message))
            })?);
            continue;
        }
        let req = crate::serve::parse_submit(fields.fields())
            .map_err(|e| CliError::Validation(format!("trace line {lineno}: {}", e.message)))?;
        if spec.is_none() {
            return Err(CliError::Validation(format!(
                "trace line {lineno}: job before the spec record"
            )));
        }
        jobs.push(Job::new(
            EdgeId(req.origin),
            req.release.unwrap_or(0.0),
            req.work,
            req.up,
            req.dn,
        ));
    }
    let spec = spec.ok_or_else(|| CliError::Validation("trace has no spec record".into()))?;
    Instance::new(spec, jobs).map_err(|e| CliError::Validation(format!("trace: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_platform::TierTopology;

    fn tiered_instance() -> Instance {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5, 0.8])
            .tier(1.0, 1.25)
            .cloud(1.0)
            .tier(2.5, 2.0)
            .cloud(4.0)
            .unavailability(CloudId(0), Interval::from_secs(3.0, 5.5))
            .build();
        Instance::new(
            spec,
            vec![
                Job::new(EdgeId(0), 0.0, 2.5, 0.5, 0.25),
                Job::new(EdgeId(1), 1.5, 4.0, 0.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn export_import_is_bit_identical() {
        for inst in [tiered_instance(), mmsec_platform::figure1_instance()] {
            let mut buf = Vec::new();
            write_trace(&inst, &mut buf).unwrap();
            let back = read_trace(buf.as_slice()).unwrap();
            assert_eq!(back, inst);
        }
    }

    #[test]
    fn spec_record_parses_count_and_list_forms() {
        let line = r#"{"type":"spec","edges":2,"clouds":3,"cloud-speed":2.0}"#;
        let fields = crate::ndjson::parse_object(line).unwrap();
        let spec = parse_spec_fields(&fields).unwrap();
        assert_eq!(spec.num_edge(), 2);
        assert_eq!(spec.num_cloud(), 3);
        assert_eq!(spec.cloud_speed(CloudId(1)), 2.0);
        assert!(!spec.has_tiers());

        let line = r#"{"type":"spec","edge-speeds":"0.5, 0.8","cloud-speeds":"1","hop-up":"1,2","hop-dn":"1,3"}"#;
        let fields = crate::ndjson::parse_object(line).unwrap();
        let spec = parse_spec_fields(&fields).unwrap();
        assert_eq!(spec.num_edge(), 2);
        let topo: &TierTopology = spec.tier_topology().unwrap();
        assert_eq!(topo.depth(), 2);
        // No cloud-tiers: clouds default to the deepest tier.
        assert_eq!(topo.tier_of(CloudId(0)), 2);
        assert_eq!(spec.path_up(CloudId(0)), 3.0);
    }

    #[test]
    fn spec_record_rejects_carry_field_and_code() {
        let cases = [
            (
                r#"{"type":"spec","edges":2,"edge-speeds":"1,1"}"#,
                "edges",
                "bad-value",
            ),
            (r#"{"type":"spec","hop-up":"1"}"#, "hop-up", "missing-field"),
            (r#"{"type":"spec","bogus":1}"#, "bogus", "unknown-field"),
            (r#"{"type":"spec","edges":"two"}"#, "edges", "bad-type"),
            (
                r#"{"type":"spec","hop-up":"1","hop-dn":"1","cloud-tiers":"1"}"#,
                "cloud-tiers",
                "bad-value",
            ),
        ];
        for (line, field, code) in cases {
            let fields = crate::ndjson::parse_object(line).unwrap();
            let err = parse_spec_fields(&fields).unwrap_err();
            assert_eq!(err.field, field, "{line}");
            assert_eq!(err.code, code, "{line}");
        }
    }

    #[test]
    fn import_rejects_malformed_traces() {
        let no_spec = "{\"origin\":0,\"work\":1}\n";
        assert!(read_trace(no_spec.as_bytes()).is_err());
        let job_first = "{\"origin\":0,\"work\":1}\n{\"type\":\"spec\",\"edges\":1}\n";
        assert!(read_trace(job_first.as_bytes()).is_err());
        let two_specs = "{\"type\":\"spec\",\"edges\":1}\n{\"type\":\"spec\",\"edges\":1}\n";
        assert!(read_trace(two_specs.as_bytes()).is_err());
    }
}
