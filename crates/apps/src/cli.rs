//! Shared command-line failure handling for the workspace binaries
//! (`mmsec`, `repro`).
//!
//! Every failure path funnels into [`CliError`], which fixes the exit
//! codes scripts can rely on:
//!
//! | code | meaning                                    |
//! |------|--------------------------------------------|
//! | 1    | runtime failure (stalled run, event limit) |
//! | 2    | usage error (bad flags, unknown command)   |
//! | 3    | I/O error (missing or unwritable file)     |
//! | 4    | validation error (bad input data, invalid schedule) |

use std::fmt;

/// A fatal CLI failure with a stable exit code.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation: unknown command, unknown flag, missing value.
    /// Exit code 2.
    Usage(String),
    /// A file could not be read or written. Exit code 3.
    Io(String),
    /// Input parsed but is semantically invalid (bad instance, bad job,
    /// invalid schedule). Exit code 4.
    Validation(String),
    /// The run itself failed (stalled policy, event-limit livelock).
    /// Exit code 1.
    Failure(String),
}

impl CliError {
    /// The process exit code for this error class.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Failure(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Validation(_) => 4,
        }
    }

    /// Convenience constructor for file I/O failures.
    pub fn io(path: &str, err: impl fmt::Display) -> CliError {
        CliError::Io(format!("{path}: {err}"))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Io(m)
            | CliError::Validation(m)
            | CliError::Failure(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

/// Prints the error to stderr and exits with its stable code.
pub fn fail(err: CliError) -> ! {
    eprintln!("{err}");
    std::process::exit(err.exit_code());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Failure("x".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Io("x".into()).exit_code(), 3);
        assert_eq!(CliError::Validation("x".into()).exit_code(), 4);
    }

    #[test]
    fn io_helper_includes_the_path() {
        let e = CliError::io("inst.txt", "no such file");
        assert_eq!(e.to_string(), "inst.txt: no such file");
        assert_eq!(e.exit_code(), 3);
    }
}
