//! The per-connection reader: extracts the tenant key from each NDJSON
//! line, applies router-level overload shedding, and forwards raw lines
//! to the owning shard (see the module docs in [`super`]).

use super::{shard_of, ConnId, Gate, MergeMsg, ServerConfig, ShardMsg, ShardTx};
use crate::cli::CliError;
use crate::ndjson::{parse_object_into, ObjBuf, ObjWriter};
use std::io::BufRead;
use std::sync::mpsc;

/// The tenant every untagged (or unparseable) line belongs to.
pub(crate) const DEFAULT_TENANT: &str = "default";

/// What the router learned from one line: where it goes and whether the
/// admission gates apply to it.
struct RouteInfo {
    tenant: String,
    /// True for job submissions (the only line kind the global gate and
    /// shard-queue shedding apply to — control records must go through,
    /// and a malformed line must still reach its lane to be rejected
    /// with the right per-tenant line number).
    gated: bool,
}

/// Extracts the routing key. A line that does not parse routes to the
/// default tenant — its lane rejects it with a per-tenant line number,
/// exactly as a single-session serve would.
fn classify(line: &str, fields: &mut ObjBuf) -> RouteInfo {
    if parse_object_into(line, fields).is_err() {
        return RouteInfo {
            tenant: DEFAULT_TENANT.to_string(),
            gated: false,
        };
    }
    let mut tenant: Option<&str> = None;
    let mut kind: Option<&str> = None;
    for (key, value) in fields.fields() {
        match key.as_str() {
            "tenant" => tenant = value.as_str(),
            "type" => kind = value.as_str(),
            _ => {}
        }
    }
    RouteInfo {
        tenant: tenant.unwrap_or(DEFAULT_TENANT).to_string(),
        gated: !matches!(kind, Some("platform") | Some("spec")),
    }
}

/// Emits a router-level shed record straight to the merger (these lines
/// never reach a shard, so they carry no per-tenant line number).
fn shed_record(
    w: &mut ObjWriter,
    out: &mpsc::Sender<MergeMsg>,
    tenant: &str,
    reason: &str,
    shard: Option<usize>,
) {
    w.reset("shed");
    w.str_field("tenant", tenant).str_field("reason", reason);
    if let Some(s) = shard {
        w.num_field("shard", s as f64);
    }
    let mut bytes = w.close().as_bytes().to_vec();
    bytes.push(b'\n');
    let _ = out.send(MergeMsg::Records(bytes));
}

/// Reads the connection's input to EOF, routing every line; then tells
/// every shard the connection ended and reports the read totals to the
/// merger.
pub(crate) fn run(
    mut input: impl BufRead,
    conn: ConnId,
    shard_txs: &[ShardTx],
    merge_tx: &mpsc::Sender<MergeMsg>,
    cfg: &ServerConfig,
    gate: &Gate,
) -> Result<(), CliError> {
    let mut line = String::new();
    let mut fields = ObjBuf::new();
    let mut w = ObjWriter::typed("shed");
    let mut lines = 0usize;
    let mut shed = 0usize;
    let result = loop {
        line.clear();
        let n = match input.read_line(&mut line) {
            Ok(n) => n,
            Err(e) => break Err(CliError::Io(format!("input stream: {e}"))),
        };
        if n == 0 {
            break Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let info = classify(line.trim_end(), &mut fields);
        if info.gated && cfg.global_pending.is_some_and(|cap| gate.over(cap)) {
            shed += 1;
            shed_record(&mut w, merge_tx, &info.tenant, "global-overload", None);
            continue;
        }
        let shard = shard_of(&info.tenant, shard_txs.len());
        let msg = ShardMsg::Line {
            conn,
            tenant: info.tenant,
            line: line.trim_end().to_string(),
        };
        if info.gated {
            if let Err(ShardMsg::Line { tenant, .. }) = shard_txs[shard].try_line(msg) {
                shed += 1;
                shed_record(&mut w, merge_tx, &tenant, "shard-overloaded", Some(shard));
            }
        } else {
            // Control records (platform mutations, specs) must not be
            // dropped by a transiently full queue.
            shard_txs[shard].send(msg);
        }
    };
    // Even on a read error, close out the connection so the lanes drain
    // and the merger can finish the stream.
    for tx in shard_txs {
        tx.send(ShardMsg::Eof { conn });
    }
    let _ = merge_tx.send(MergeMsg::ReaderEof { lines, shed });
    result
}
