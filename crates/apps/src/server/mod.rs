//! Sharded multi-session serving: the subsystem behind
//! `mmsec serve --shards N [--listen ...]` (see `docs/serving.md`).
//!
//! One connection's traffic flows through four roles, each its own
//! thread:
//!
//! ```text
//!              ┌────────► shard worker 0 ──┐  per-(conn,shard)
//!  reader ─────┼────────► shard worker 1 ──┼────► merger ───► client
//!  (router)    └────────► shard worker N-1 ┘  SPSC channels
//! ```
//!
//! * The **reader** (router) owns the connection's input half: it parses
//!   each NDJSON line just enough to extract the `tenant` key (default
//!   `"default"`), applies the *global* admission gate, and forwards the
//!   raw line to the shard `fnv1a(tenant) % shards` — so one tenant's
//!   lines always land on one shard, in arrival order.
//! * Each **shard worker** owns a map of per-tenant `Lane`s — full
//!   single-session serving loops with a `"tenant"` tag on every record
//!   — created lazily on a tenant's first line (from a `{"type":"spec"}`
//!   record, or the server's default platform). Workers never share
//!   sessions and sessions never cross threads.
//! * The **merger** owns the output half: it drains the per-shard SPSC
//!   record channels, interleaves them with `server-heartbeat` records
//!   (strictly monotone `seq`/`wall_ms`), and closes the stream with one
//!   `server-summary` after every shard drained the connection.
//!
//! Backpressure sheds rather than blocks at three levels: per-lane
//! `--max-pending` (inside the lane, deterministic), per-shard
//! `--max-queue` (bounded input queue, shed by the router with reason
//! `shard-overloaded`), and the global `--global-pending` unfinished-jobs
//! gate (shed by the router with reason `global-overload`).
//!
//! The same worker/merger fabric serves three frontends: in-memory
//! readers/writers ([`run_sharded`], used by tests), the process's
//! stdin/stdout (sharded stdin mode), and socket connections accepted by
//! [`run_listener`] (Unix or TCP), each connection with its own
//! router/merger pair over the shared worker pool.

mod merge;
mod route;
mod worker;

use crate::cli::CliError;
use crate::serve::{validate_config, ServeConfig};
use mmsec_platform::Instance;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

/// Sharded-server knobs on top of the per-lane [`ServeConfig`].
pub struct ServerConfig {
    /// Per-lane serving knobs (policy, seed, engine options, heartbeat
    /// cadence, `--max-pending`, `--stats-every`). `speedup` must be
    /// unset: wall-clock replay pacing is a single-session affair.
    pub serve: ServeConfig,
    /// Worker threads; each owns the lanes of the tenants hashed to it.
    pub shards: usize,
    /// Bounded per-shard input queues: when a shard's queue is full the
    /// router sheds the line (`shard-overloaded`) instead of blocking
    /// the connection. `None` = unbounded (never sheds at this level).
    pub max_queue: Option<usize>,
    /// Global admission gate: when the total number of unfinished jobs
    /// across every lane reaches this, job submissions are shed at the
    /// router (`global-overload`) before they reach a shard. `None` =
    /// ungated.
    pub global_pending: Option<usize>,
    /// Wall-clock cadence of the merger's `server-heartbeat` records, in
    /// milliseconds. `0` disables them.
    pub heartbeat_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            serve: ServeConfig::default(),
            shards: 1,
            max_queue: None,
            global_pending: None,
            heartbeat_ms: 1000,
        }
    }
}

/// Where the socket server accepts connections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Listen {
    /// A Unix domain socket at this path (created fresh; an existing
    /// socket file is replaced).
    Unix(PathBuf),
    /// A TCP listener on this address, e.g. `127.0.0.1:7070`.
    Tcp(String),
}

impl Listen {
    /// Parses `unix:PATH` or `tcp:ADDR`.
    pub fn parse(s: &str) -> Result<Listen, CliError> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(CliError::Usage("--listen unix: needs a path".into()));
            }
            Ok(Listen::Unix(PathBuf::from(path)))
        } else if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(CliError::Usage("--listen tcp: needs an address".into()));
            }
            Ok(Listen::Tcp(addr.to_string()))
        } else {
            Err(CliError::Usage(format!(
                "--listen must be unix:PATH or tcp:ADDR, got {s:?}"
            )))
        }
    }
}

/// Per-connection totals, as written into the final `server-summary`
/// record and returned by [`run_sharded`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Input lines read on the connection (including router-shed ones).
    pub lines: usize,
    /// Jobs admitted across all lanes.
    pub admitted: usize,
    /// Submissions shed at any level (lane `max-pending`, shard queue,
    /// global gate).
    pub shed: usize,
    /// Lines rejected as malformed or invalid.
    pub rejected: usize,
    /// Jobs completed across all lanes.
    pub completed: usize,
    /// Lanes (distinct tenants) the connection touched.
    pub tenants: usize,
}

pub(crate) type ConnId = u64;

/// Totals a shard accumulated for one connection (summed lane
/// summaries), carried to the merger on [`MergeMsg::ShardEof`].
#[derive(Clone, Copy, Default)]
pub(crate) struct Totals {
    pub(crate) admitted: usize,
    pub(crate) shed: usize,
    pub(crate) rejected: usize,
    pub(crate) completed: usize,
    pub(crate) lanes: usize,
}

impl Totals {
    pub(crate) fn add(&mut self, other: &Totals) {
        self.admitted += other.admitted;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.lanes += other.lanes;
    }
}

/// Live per-connection counters, updated by the workers after every line
/// and read (racily, monotonically) by the merger for its
/// `server-heartbeat` payload.
#[derive(Default)]
pub(crate) struct ConnCounters {
    pub(crate) lines: AtomicUsize,
    pub(crate) admitted: AtomicUsize,
    pub(crate) shed: AtomicUsize,
    pub(crate) rejected: AtomicUsize,
    pub(crate) completed: AtomicUsize,
    pub(crate) lanes: AtomicUsize,
}

/// The global unfinished-jobs gauge behind `--global-pending`: workers
/// add the per-line delta of their lanes' unfinished counts; the router
/// sheds job lines while the gauge sits at or above the cap.
pub(crate) struct Gate(AtomicIsize);

impl Gate {
    pub(crate) fn new() -> Self {
        Gate(AtomicIsize::new(0))
    }

    pub(crate) fn add(&self, delta: isize) {
        if delta != 0 {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    pub(crate) fn over(&self, cap: usize) -> bool {
        self.0.load(Ordering::Relaxed) >= cap as isize
    }
}

/// What the router sends a shard worker.
pub(crate) enum ShardMsg {
    /// A connection opened: here is the shard's private channel back to
    /// its merger, and the connection's live counters.
    Open {
        conn: ConnId,
        out: mpsc::Sender<MergeMsg>,
        counters: Arc<ConnCounters>,
    },
    /// One raw input line, routed by tenant.
    Line {
        conn: ConnId,
        tenant: String,
        line: String,
    },
    /// The connection's input ended: drain and finish its lanes, then
    /// acknowledge with [`MergeMsg::ShardEof`].
    Eof { conn: ConnId },
}

/// What a shard worker (or the router, on its own channel) sends a
/// connection's merger. Each channel is SPSC: one worker in, the merger
/// out.
pub(crate) enum MergeMsg {
    /// Verbatim, already-framed NDJSON output (one or more whole lines).
    Records(Vec<u8>),
    /// This shard finished the connection; no more records will follow
    /// on this channel.
    ShardEof { totals: Totals },
    /// The router finished reading: `lines` input lines total, of which
    /// `shed` were shed at the router (never reached a shard).
    ReaderEof { lines: usize, shed: usize },
}

/// A shard's input queue sender: unbounded, or bounded with
/// shed-on-full semantics for job lines.
#[derive(Clone)]
pub(crate) enum ShardTx {
    Unbounded(mpsc::Sender<ShardMsg>),
    Bounded(mpsc::SyncSender<ShardMsg>),
}

impl ShardTx {
    /// Control messages (`Open`/`Eof`) always go through, blocking on a
    /// full bounded queue — they are rare and must not be lost.
    pub(crate) fn send(&self, msg: ShardMsg) {
        // A send only fails when the worker is gone, which only happens
        // on worker panic; the merger then sees the disconnect.
        match self {
            ShardTx::Unbounded(tx) => {
                let _ = tx.send(msg);
            }
            ShardTx::Bounded(tx) => {
                let _ = tx.send(msg);
            }
        }
    }

    /// Lines shed instead of blocking: `Err` hands the message back when
    /// the bounded queue is full (the caller emits a shed record).
    pub(crate) fn try_line(&self, msg: ShardMsg) -> Result<(), ShardMsg> {
        match self {
            ShardTx::Unbounded(tx) => tx.send(msg).map_err(|e| e.0),
            ShardTx::Bounded(tx) => match tx.try_send(msg) {
                Ok(()) => Ok(()),
                Err(mpsc::TrySendError::Full(m)) => Err(m),
                Err(mpsc::TrySendError::Disconnected(m)) => Err(m),
            },
        }
    }
}

/// FNV-1a, the shard routing hash: stable across runs and platforms, so
/// a tenant's shard assignment is reproducible.
pub(crate) fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

fn validate(cfg: &ServerConfig) -> Result<(), CliError> {
    validate_config(&cfg.serve)?;
    if cfg.serve.speedup.is_some() {
        return Err(CliError::Usage(
            "--speedup applies to single-session file replay, not the sharded server".into(),
        ));
    }
    if cfg.shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    if cfg.max_queue == Some(0) {
        return Err(CliError::Usage("--max-queue must be at least 1".into()));
    }
    Ok(())
}

/// Builds one shard input channel per the config's queue bound.
fn shard_channel(cfg: &ServerConfig) -> (ShardTx, mpsc::Receiver<ShardMsg>) {
    match cfg.max_queue {
        Some(cap) => {
            let (tx, rx) = mpsc::sync_channel(cap);
            (ShardTx::Bounded(tx), rx)
        }
        None => {
            let (tx, rx) = mpsc::channel();
            (ShardTx::Unbounded(tx), rx)
        }
    }
}

/// Opens a connection on the worker pool: creates the per-shard SPSC
/// merge channels, announces the connection to every shard, and returns
/// the merger's receivers (one per shard, plus the router's own last)
/// and the router's direct sender.
fn open_conn(
    conn: ConnId,
    shard_txs: &[ShardTx],
    counters: &Arc<ConnCounters>,
) -> (Vec<mpsc::Receiver<MergeMsg>>, mpsc::Sender<MergeMsg>) {
    let mut rxs = Vec::with_capacity(shard_txs.len() + 1);
    for tx in shard_txs {
        let (mtx, mrx) = mpsc::channel();
        tx.send(ShardMsg::Open {
            conn,
            out: mtx,
            counters: Arc::clone(counters),
        });
        rxs.push(mrx);
    }
    let (router_tx, router_rx) = mpsc::channel();
    rxs.push(router_rx);
    (rxs, router_tx)
}

/// Runs one sharded "connection" over arbitrary reader/writer halves —
/// the in-memory/test and sharded-stdin entry point. Spawns the worker
/// pool and the merger, routes `input` inline, and returns the
/// connection's totals once every stream drained.
pub fn run_sharded(
    inst: &Instance,
    cfg: &ServerConfig,
    input: impl BufRead,
    out: impl Write + Send,
) -> Result<ServerSummary, CliError> {
    validate(cfg)?;
    let gate = Gate::new();
    let counters = Arc::new(ConnCounters::default());
    thread::scope(|s| {
        let mut shard_txs = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = shard_channel(cfg);
            shard_txs.push(tx);
            let gate = &gate;
            s.spawn(move || worker::run(shard, rx, inst, cfg, gate));
        }
        let (merge_rxs, router_tx) = open_conn(0, &shard_txs, &counters);
        let merger = {
            let counters = Arc::clone(&counters);
            s.spawn(move || merge::run(out, merge_rxs, counters, cfg))
        };
        let routed = route::run(input, 0, &shard_txs, &router_tx, cfg, &gate);
        drop(router_tx);
        drop(shard_txs);
        let summary = merger
            .join()
            .map_err(|_| CliError::Failure("merger thread panicked".into()))?;
        routed?;
        summary
    })
}

/// A bidirectional connection stream that can split a second handle off
/// for the reader half.
trait ConnStream: Read + Write + Send {
    fn split(&self) -> std::io::Result<Self>
    where
        Self: Sized;
}

impl ConnStream for UnixStream {
    fn split(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
}

impl ConnStream for TcpStream {
    fn split(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
}

/// Boots the socket server and accepts connections until killed (or, in
/// `once` mode, exactly one connection — the CI smoke harness's clean
/// shutdown path). Each accepted connection gets its own router and
/// merger thread over the shared worker pool; per-connection totals are
/// reported on stderr as connections close.
pub fn run_listener(
    inst: &Instance,
    cfg: &ServerConfig,
    listen: &Listen,
    once: bool,
) -> Result<(), CliError> {
    validate(cfg)?;
    match listen {
        Listen::Unix(path) => {
            // Replace a stale socket file from a previous run.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .map_err(|e| CliError::Io(format!("bind {}: {e}", path.display())))?;
            eprintln!("mmsec serve: listening on unix:{}", path.display());
            let r = accept_loop(inst, cfg, once, || listener.accept().map(|(s, _)| s));
            let _ = std::fs::remove_file(path);
            r
        }
        Listen::Tcp(addr) => {
            let listener = TcpListener::bind(addr.as_str())
                .map_err(|e| CliError::Io(format!("bind {addr}: {e}")))?;
            let local = listener.local_addr().map(|a| a.to_string());
            eprintln!(
                "mmsec serve: listening on tcp:{}",
                local.as_deref().unwrap_or(addr)
            );
            accept_loop(inst, cfg, once, || listener.accept().map(|(s, _)| s))
        }
    }
}

fn accept_loop<S: ConnStream + 'static>(
    inst: &Instance,
    cfg: &ServerConfig,
    once: bool,
    mut accept: impl FnMut() -> std::io::Result<S>,
) -> Result<(), CliError> {
    let gate = Gate::new();
    thread::scope(|s| {
        let mut shard_txs = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards {
            let (tx, rx) = shard_channel(cfg);
            shard_txs.push(tx);
            let gate = &gate;
            s.spawn(move || worker::run(shard, rx, inst, cfg, gate));
        }
        let mut conn_id: ConnId = 0;
        loop {
            let stream = accept().map_err(|e| CliError::Io(format!("accept: {e}")))?;
            conn_id += 1;
            let conn = conn_id;
            let reader = stream
                .split()
                .map_err(|e| CliError::Io(format!("clone stream: {e}")))?;
            let counters = Arc::new(ConnCounters::default());
            let (merge_rxs, router_tx) = open_conn(conn, &shard_txs, &counters);
            let router_txs = shard_txs.clone();
            let gate = &gate;
            s.spawn(move || {
                let input = BufReader::new(reader);
                if let Err(e) = route::run(input, conn, &router_txs, &router_tx, cfg, gate) {
                    eprintln!("mmsec serve: conn {conn} reader: {e}");
                }
            });
            let merger = s.spawn(move || {
                let out = BufWriter::new(stream);
                match merge::run(out, merge_rxs, counters, cfg) {
                    Ok(sum) => eprintln!(
                        "mmsec serve: conn {conn} closed: {} line(s), {} admitted, \
                         {} shed, {} rejected, {} completed, {} tenant(s)",
                        sum.lines, sum.admitted, sum.shed, sum.rejected, sum.completed, sum.tenants
                    ),
                    Err(e) => eprintln!("mmsec serve: conn {conn} writer: {e}"),
                }
            });
            if once {
                let _ = merger.join();
                break;
            }
        }
        drop(shard_txs);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hash_is_stable_and_in_range() {
        for shards in 1..9 {
            for t in ["default", "alice", "bob", "tenant-42"] {
                let a = shard_of(t, shards);
                assert_eq!(a, shard_of(t, shards));
                assert!(a < shards);
            }
        }
        // Distinct tenants do spread (not all on one shard).
        let spread: std::collections::HashSet<_> =
            (0..32).map(|i| shard_of(&format!("t{i}"), 8)).collect();
        assert!(spread.len() > 1);
    }

    #[test]
    fn listen_parses_unix_and_tcp() {
        assert_eq!(
            Listen::parse("unix:/tmp/x.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7070").unwrap(),
            Listen::Tcp("127.0.0.1:7070".into())
        );
        assert!(Listen::parse("udp:1234").is_err());
        assert!(Listen::parse("unix:").is_err());
    }
}
