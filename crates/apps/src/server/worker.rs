//! A shard worker: owns the per-tenant [`Lane`]s hashed to it, feeds
//! them the lines the router forwards, and streams their records to each
//! connection's merger (see the module docs in [`super`]).
//!
//! Sessions are created *inside* the worker thread and never leave it —
//! the only data crossing threads is raw input lines in and rendered
//! record bytes out, so the engine needs no synchronization.

use super::{ConnCounters, ConnId, Gate, MergeMsg, ServerConfig, ShardMsg, Totals};
use crate::ndjson::{parse_object_into, ObjBuf, ObjWriter};
use crate::serve::{owned_lane, Lane, Reject, ServeSummary};
use mmsec_platform::Instance;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};

/// One tenant's serving loop plus the bookkeeping snapshots used to
/// publish per-line deltas into the connection counters and the global
/// admission gauge.
struct LaneSlot {
    lane: Lane<'static>,
    /// The lane's summary as of the previous line (for counter deltas).
    last: ServeSummary,
    /// Unfinished jobs as of the previous line (for the gate delta).
    unfinished: usize,
}

struct ConnState {
    out: mpsc::Sender<MergeMsg>,
    counters: Arc<ConnCounters>,
    /// Totals of lanes closed before EOF (engine failures) plus router
    /// rejects that never created a lane.
    closed: Totals,
}

/// Publishes the lane's progress since the last call: counter deltas for
/// the merger's heartbeat payload, and the unfinished-jobs delta into the
/// global admission gate.
fn publish(slot: &mut LaneSlot, counters: &ConnCounters, gate: &Gate) {
    let s = *slot.lane.summary();
    counters
        .lines
        .fetch_add(s.lines - slot.last.lines, Ordering::Relaxed);
    counters
        .admitted
        .fetch_add(s.admitted - slot.last.admitted, Ordering::Relaxed);
    counters
        .shed
        .fetch_add(s.shed - slot.last.shed, Ordering::Relaxed);
    counters
        .rejected
        .fetch_add(s.rejected - slot.last.rejected, Ordering::Relaxed);
    counters
        .completed
        .fetch_add(s.completed - slot.last.completed, Ordering::Relaxed);
    slot.last = s;
    let unfinished = slot.lane.unfinished();
    gate.add(unfinished as isize - slot.unfinished as isize);
    slot.unfinished = unfinished;
}

/// Folds a closed lane's final summary into the per-connection totals.
fn absorb(totals: &mut Totals, summary: &ServeSummary) {
    totals.admitted += summary.admitted;
    totals.shed += summary.shed;
    totals.rejected += summary.rejected;
    totals.completed += summary.completed;
    totals.lanes += 1;
}

/// What a tenant's first line turned out to be.
enum FirstLine {
    /// Not a `spec` record: create the lane from the server's default
    /// platform and feed it the line.
    NotSpec,
    /// A well-formed `spec` record: create the lane on this platform
    /// (the line itself is consumed).
    Spec(Box<Instance>),
    /// A `spec` record with a protocol violation: reject, create no lane.
    BadSpec(Reject),
}

/// Parses a prospective `{"type": "spec", ...}` platform record; the
/// field schema (counts, per-unit speed lists, tier hops, unavailability
/// windows) is shared with the trace codec — see [`crate::trace`].
fn parse_spec_line(line: &str, fields: &mut ObjBuf) -> FirstLine {
    if parse_object_into(line, fields).is_err() {
        return FirstLine::NotSpec;
    }
    if !fields
        .fields()
        .iter()
        .any(|(k, v)| k == "type" && v.as_str() == Some("spec"))
    {
        return FirstLine::NotSpec;
    }
    let spec = match crate::trace::parse_spec_fields(fields.fields()) {
        Ok(spec) => spec,
        Err(why) => return FirstLine::BadSpec(why),
    };
    match Instance::new(spec, Vec::new()) {
        Ok(inst) => FirstLine::Spec(Box::new(inst)),
        Err(e) => FirstLine::BadSpec(Reject::new(e.code(), "", e.to_string())),
    }
}

fn push_record(buf: &mut Vec<u8>, record: &str) {
    // Writing to a Vec cannot fail.
    let _ = writeln!(buf, "{record}");
}

/// The worker loop: runs until every [`super::ShardTx`] handle is gone.
pub(crate) fn run(
    shard: usize,
    rx: mpsc::Receiver<ShardMsg>,
    inst: &Instance,
    cfg: &ServerConfig,
    gate: &Gate,
) {
    let _ = shard;
    let mut lanes: HashMap<(ConnId, String), LaneSlot> = HashMap::new();
    let mut conns: HashMap<ConnId, ConnState> = HashMap::new();
    let mut fields = ObjBuf::new();
    let mut w = ObjWriter::typed("spec-ok");
    let mut buf: Vec<u8> = Vec::with_capacity(512);
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Open {
                conn,
                out,
                counters,
            } => {
                conns.insert(
                    conn,
                    ConnState {
                        out,
                        counters,
                        closed: Totals::default(),
                    },
                );
            }
            ShardMsg::Line { conn, tenant, line } => {
                let Some(cs) = conns.get_mut(&conn) else {
                    continue;
                };
                buf.clear();
                let key = (conn, tenant);
                if !lanes.contains_key(&key) {
                    let tenant = &key.1;
                    let lane_inst = match parse_spec_line(&line, &mut fields) {
                        FirstLine::BadSpec(why) => {
                            cs.counters.lines.fetch_add(1, Ordering::Relaxed);
                            cs.counters.rejected.fetch_add(1, Ordering::Relaxed);
                            cs.closed.rejected += 1;
                            w.reset("reject");
                            w.str_field("tenant", tenant);
                            why.write_into(&mut w);
                            push_record(&mut buf, w.close());
                            let _ = cs.out.send(MergeMsg::Records(std::mem::take(&mut buf)));
                            continue;
                        }
                        FirstLine::Spec(spec_inst) => Some(*spec_inst),
                        FirstLine::NotSpec => None,
                    };
                    let consumed = lane_inst.is_some();
                    if let Some(i) = &lane_inst {
                        cs.counters.lines.fetch_add(1, Ordering::Relaxed);
                        w.reset("spec-ok");
                        w.str_field("tenant", tenant)
                            .num_field("edges", i.spec.num_edge() as f64)
                            .num_field("clouds", i.spec.num_cloud() as f64);
                        push_record(&mut buf, w.close());
                    }
                    let mut lane = owned_lane(
                        lane_inst.unwrap_or_else(|| inst.clone()),
                        &cfg.serve,
                        tenant.clone(),
                    );
                    cs.counters.lanes.fetch_add(1, Ordering::Relaxed);
                    lane.hello(&mut buf).expect("writing to a Vec cannot fail");
                    let slot = LaneSlot {
                        unfinished: lane.unfinished(),
                        last: *lane.summary(),
                        lane,
                    };
                    lanes.insert(key.clone(), slot);
                    if consumed {
                        let _ = cs.out.send(MergeMsg::Records(std::mem::take(&mut buf)));
                        continue;
                    }
                }
                let slot = lanes.get_mut(&key).expect("lane was just ensured");
                match slot.lane.handle_line(&line, &mut buf) {
                    Ok(()) => publish(slot, &cs.counters, gate),
                    Err(e) => {
                        // An engine failure poisons only this lane: report
                        // it on the stream, tear the lane down, and keep
                        // serving the shard's other tenants.
                        publish(slot, &cs.counters, gate);
                        w.reset("error");
                        w.str_field("tenant", &key.1)
                            .str_field("error", &e.to_string());
                        push_record(&mut buf, w.close());
                        let slot = lanes.remove(&key).expect("present");
                        absorb(&mut cs.closed, &slot.last);
                        gate.add(-(slot.unfinished as isize));
                    }
                }
                if !buf.is_empty() {
                    let _ = cs.out.send(MergeMsg::Records(std::mem::take(&mut buf)));
                }
            }
            ShardMsg::Eof { conn } => {
                let Some(cs) = conns.remove(&conn) else {
                    continue;
                };
                // Drain this connection's lanes in tenant order so the
                // relative order of end-of-stream records is deterministic.
                let mut tenants: Vec<String> = lanes
                    .keys()
                    .filter(|k| k.0 == conn)
                    .map(|k| k.1.clone())
                    .collect();
                tenants.sort();
                buf.clear();
                let mut totals = cs.closed;
                for tenant in tenants {
                    let mut slot = lanes.remove(&(conn, tenant.clone())).expect("listed");
                    if let Err(e) = slot.lane.finish(&mut buf) {
                        w.reset("error");
                        w.str_field("tenant", &tenant)
                            .str_field("error", &e.to_string());
                        push_record(&mut buf, w.close());
                    }
                    publish(&mut slot, &cs.counters, gate);
                    // The drained lane holds no unfinished work on
                    // success; on failure, release what it still held.
                    gate.add(-(slot.unfinished as isize));
                    absorb(&mut totals, &slot.last);
                }
                if !buf.is_empty() {
                    let _ = cs.out.send(MergeMsg::Records(std::mem::take(&mut buf)));
                }
                let _ = cs.out.send(MergeMsg::ShardEof { totals });
            }
        }
    }
}
