//! The per-connection merger: owns the connection's output half, drains
//! the per-shard record channels into it, interleaves wall-clock
//! `server-heartbeat` records, and closes the stream with one
//! `server-summary` (see the module docs in [`super`]).
//!
//! Records arrive as whole pre-framed NDJSON lines, so interleaving
//! streams from different shards can reorder lines *between* tenants but
//! never corrupt or reorder lines *within* one tenant — each tenant's
//! records travel one SPSC channel in order.

use super::{ConnCounters, MergeMsg, ServerConfig, ServerSummary, Totals};
use crate::cli::CliError;
use crate::ndjson::ObjWriter;
use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::Instant;

fn write_all(out: &mut impl Write, bytes: &[u8]) -> Result<(), CliError> {
    out.write_all(bytes)
        .map_err(|e| CliError::Io(format!("output stream: {e}")))
}

fn write_record(out: &mut impl Write, record: &str) -> Result<(), CliError> {
    writeln!(out, "{record}").map_err(|e| CliError::Io(format!("output stream: {e}")))
}

/// Emits `server-hello`, then merges until every shard acknowledged EOF
/// and the router reported its read totals; emits `server-summary` and
/// returns the connection's totals.
pub(crate) fn run(
    mut out: impl Write,
    rxs: Vec<mpsc::Receiver<MergeMsg>>,
    counters: Arc<ConnCounters>,
    cfg: &ServerConfig,
) -> Result<ServerSummary, CliError> {
    let mut w = ObjWriter::typed("server-hello");
    w.num_field("shards", cfg.shards as f64)
        .str_field("policy", cfg.serve.policy.name());
    if let Some(cap) = cfg.serve.max_pending {
        w.num_field("max_pending", cap as f64);
    }
    if let Some(cap) = cfg.max_queue {
        w.num_field("max_queue", cap as f64);
    }
    if let Some(cap) = cfg.global_pending {
        w.num_field("global_pending", cap as f64);
    }
    write_record(&mut out, w.close())?;
    out.flush()
        .map_err(|e| CliError::Io(format!("output stream: {e}")))?;

    let start = Instant::now();
    let mut seq = 0u64;
    let mut last_wall_ms = 0u64;
    let mut next_beat_ms = cfg.heartbeat_ms;
    let mut eof = vec![false; rxs.len()];
    let mut totals = Totals::default();
    let mut reader_lines = 0usize;
    let mut reader_shed = 0usize;
    loop {
        let mut idle = true;
        for (i, rx) in rxs.iter().enumerate() {
            if eof[i] {
                continue;
            }
            // Drain whatever this channel has ready before moving on, so
            // a chatty shard doesn't wait a full sweep per record.
            loop {
                match rx.try_recv() {
                    Ok(MergeMsg::Records(bytes)) => {
                        idle = false;
                        write_all(&mut out, &bytes)?;
                    }
                    Ok(MergeMsg::ShardEof { totals: t }) => {
                        idle = false;
                        totals.add(&t);
                        eof[i] = true;
                        break;
                    }
                    Ok(MergeMsg::ReaderEof { lines, shed }) => {
                        idle = false;
                        reader_lines = lines;
                        reader_shed = shed;
                        eof[i] = true;
                        break;
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        // Worker or router died without an EOF message
                        // (panic): treat as end of that stream so the
                        // connection still closes out.
                        eof[i] = true;
                        break;
                    }
                }
            }
        }
        if !idle {
            out.flush()
                .map_err(|e| CliError::Io(format!("output stream: {e}")))?;
        }
        if eof.iter().all(|&done| done) {
            break;
        }
        if cfg.heartbeat_ms > 0 {
            let elapsed_ms = start.elapsed().as_millis() as u64;
            if elapsed_ms >= next_beat_ms {
                seq += 1;
                // Strictly monotone even when a slow drain makes several
                // beats due at once.
                let wall_ms = elapsed_ms.max(last_wall_ms + 1);
                last_wall_ms = wall_ms;
                next_beat_ms = elapsed_ms + cfg.heartbeat_ms;
                w.reset("server-heartbeat");
                w.num_field("seq", seq as f64)
                    .num_field("wall_ms", wall_ms as f64)
                    .num_field("lines", counters.lines.load(Ordering::Relaxed) as f64)
                    .num_field("admitted", counters.admitted.load(Ordering::Relaxed) as f64)
                    .num_field("shed", counters.shed.load(Ordering::Relaxed) as f64)
                    .num_field("rejected", counters.rejected.load(Ordering::Relaxed) as f64)
                    .num_field(
                        "completed",
                        counters.completed.load(Ordering::Relaxed) as f64,
                    )
                    .num_field("tenants", counters.lanes.load(Ordering::Relaxed) as f64);
                write_record(&mut out, w.close())?;
                out.flush()
                    .map_err(|e| CliError::Io(format!("output stream: {e}")))?;
            }
        }
        if idle {
            // Nothing ready on any channel: yield instead of spinning.
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
    }

    let summary = ServerSummary {
        lines: reader_lines,
        admitted: totals.admitted,
        shed: totals.shed + reader_shed,
        rejected: totals.rejected,
        completed: totals.completed,
        tenants: totals.lanes,
    };
    w.reset("server-summary");
    w.num_field("lines", summary.lines as f64)
        .num_field("admitted", summary.admitted as f64)
        .num_field("shed", summary.shed as f64)
        .num_field("rejected", summary.rejected as f64)
        .num_field("completed", summary.completed as f64)
        .num_field("tenants", summary.tenants as f64);
    write_record(&mut out, w.close())?;
    out.flush()
        .map_err(|e| CliError::Io(format!("output stream: {e}")))?;
    Ok(summary)
}
