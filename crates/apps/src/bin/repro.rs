//! `repro` — regenerate the paper's figures and tables from the command
//! line.
//!
//! ```text
//! repro <experiment> [--scale smoke|quick|standard|full] [--seed N] [--csv DIR]
//!       [--metrics-dir DIR]
//!
//! experiments:
//!   fig2a fig2b fig2c fig2d   the four panels of Figure 2
//!   exec-times                §VI-B scheduling-time table
//!   hardness                  §IV reduction cross-checks
//!   ablation-alpha ablation-ports ablation-preempt ablation-arrivals
//!   ext-hetero ext-windows    extensions
//!   robustness                E-fault: max-stretch vs unit failure rate
//!   elastic                   E-elastic: mid-run platform churn
//!   mean-vs-max bender-competitive   extra studies
//!   all                       everything above
//! ```

use mmsec_apps::cli::{fail, CliError};
use mmsec_bench::experiments;
use mmsec_bench::hardness::verify_reductions;
use mmsec_bench::{Figure, Scale};
use std::io::Write;
use std::path::PathBuf;

fn usage() -> ! {
    fail(CliError::Usage(
        "usage: repro <fig2a|fig2b|fig2c|fig2d|exec-times|hardness|ablation-alpha|\
         ablation-ports|ablation-preempt|ablation-arrivals|ext-hetero|ext-windows|\
         ext-topology|ext-workload|robustness|elastic|mean-vs-max|bender-competitive|all> \
         [--scale smoke|quick|standard|full] [--seed N] [--csv DIR] [--metrics-dir DIR]"
            .into(),
    ));
}

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    csv_dir: Option<PathBuf>,
    metrics_dir: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let Some(experiment) = args.next() else {
        usage();
    };
    let mut parsed = Args {
        experiment,
        scale: Scale::standard(),
        seed: 20210517, // IPDPS 2021 conference date
        csv_dir: None,
        metrics_dir: None,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                parsed.scale = Scale::parse(&v).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                parsed.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--csv" => {
                let v = args.next().unwrap_or_else(|| usage());
                parsed.csv_dir = Some(PathBuf::from(v));
            }
            "--metrics-dir" => {
                let v = args.next().unwrap_or_else(|| usage());
                parsed.metrics_dir = Some(PathBuf::from(v));
            }
            _ => usage(),
        }
    }
    parsed
}

fn emit(fig: &Figure, csv_dir: &Option<PathBuf>, metrics_dir: &Option<PathBuf>) {
    println!("{}", fig.to_markdown());
    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(CliError::io(&dir.display().to_string(), e)));
        let file = dir.join(format!(
            "{}.csv",
            fig.id.replace('/', "_").replace(' ', "-")
        ));
        let path = file.display().to_string();
        let mut f = std::fs::File::create(&file).unwrap_or_else(|e| fail(CliError::io(&path, e)));
        f.write_all(fig.table.to_csv().as_bytes())
            .unwrap_or_else(|e| fail(CliError::io(&path, e)));
        eprintln!("[csv] wrote {}", file.display());
    }
    if let Some(dir) = metrics_dir {
        // Everything evaluate_point collected since the previous figure
        // belongs to this one.
        let points = mmsec_bench::drain_point_metrics();
        if !points.is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(CliError::io(&dir.display().to_string(), e)));
            let file = dir.join(format!(
                "{}.metrics.json",
                fig.id.replace('/', "_").replace(' ', "-")
            ));
            std::fs::write(&file, mmsec_bench::point_metrics_to_json(&points))
                .unwrap_or_else(|e| fail(CliError::io(&file.display().to_string(), e)));
            eprintln!("[metrics] wrote {}", file.display());
        }
    }
}

fn main() {
    let args = parse_args();
    if args.metrics_dir.is_some() {
        mmsec_bench::enable_point_metrics();
    }
    let s = &args.scale;
    let seed = args.seed;
    let run_one = |name: &str| -> bool {
        let fig = match name {
            "fig2a" => experiments::fig2a(s, seed),
            "fig2b" => experiments::fig2b(s, seed),
            "fig2c" => experiments::fig2c(s, seed),
            "fig2d" => experiments::fig2d(s, seed),
            "exec-times" => experiments::exec_times(s, seed),
            "ablation-alpha" => experiments::ablation_alpha(s, seed),
            "ablation-ports" => experiments::ablation_ports(s, seed),
            "ablation-preempt" => experiments::ablation_preemption(s, seed),
            "ext-hetero" => experiments::ext_heterogeneous(s, seed),
            "ext-windows" => experiments::ext_windows(s, seed),
            "ext-topology" => experiments::ext_topology(s, seed),
            "ext-workload" => experiments::ext_workload(s, seed),
            "robustness" => experiments::fault_robustness(s, seed),
            "elastic" => experiments::elastic(s, seed),
            "mean-vs-max" => mmsec_bench::extra::mean_vs_max_stretch(s, seed),
            "bender-competitive" => mmsec_bench::extra::bender_competitiveness(s, seed),
            "ablation-arrivals" => mmsec_bench::extra::ablation_arrivals(s, seed),
            "adversarial" => mmsec_bench::extra::adversarial(s, seed),
            "fairness" => mmsec_bench::extra::fairness(s, seed),
            "hardness" => {
                let report = verify_reductions(25, seed);
                println!("### E7/hardness — §IV reduction cross-checks\n");
                println!("{}", report.table.to_markdown());
                println!(
                    "> all trials consistent: {}",
                    if report.all_consistent { "YES" } else { "NO" }
                );
                return report.all_consistent;
            }
            _ => return false,
        };
        emit(&fig, &args.csv_dir, &args.metrics_dir);
        true
    };

    let ok = match args.experiment.as_str() {
        "all" => {
            let everything = [
                "fig2a",
                "fig2b",
                "fig2c",
                "fig2d",
                "exec-times",
                "hardness",
                "ablation-alpha",
                "ablation-ports",
                "ablation-preempt",
                "ablation-arrivals",
                "ext-hetero",
                "ext-windows",
                "ext-topology",
                "ext-workload",
                "robustness",
                "elastic",
                "mean-vs-max",
                "bender-competitive",
                "adversarial",
                "fairness",
            ];
            everything.iter().all(|e| run_one(e))
        }
        other => run_one(other),
    };
    if !ok {
        usage();
    }
}
