//! `mmsec-load` — saturation load generator for the sharded socket
//! server. Connects to a running `mmsec serve --listen ...`, streams a
//! deterministic multi-tenant job script at full speed, reads the record
//! stream back, and prints one JSON result line with throughput,
//! accounting, and admission-to-completion wall-latency quantiles.
//!
//! ```text
//! mmsec-load --connect unix:/tmp/mmsec.sock --jobs 1000000 --tenants 16
//! ```
//!
//! Latency is measured per job as the wall time from the client writing
//! the submission line to the client reading its `completion` record —
//! i.e. the full pipeline: router, shard queue, lane replay, merger.
//! Joins use the tenant-local line numbers on `admit` records (each lane
//! numbers its own input lines), which the round-robin script maps back
//! to send timestamps without any per-line handshake.

use mmsec_apps::cli::{fail, CliError};
use mmsec_apps::ndjson::{parse_object_into, ObjBuf, Value};
use mmsec_apps::server::Listen;
use mmsec_bench::load::{script, LatencyStats, LoadPlan};
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    fail(CliError::Usage(
        "usage: mmsec-load --connect unix:PATH|tcp:ADDR [--jobs N] [--tenants N]\n  \
         [--mean-gap X] [--mean-work X] [--edges N] [--seed N]"
            .into(),
    ));
}

struct Flags(HashMap<String, String>);

impl Flags {
    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.0.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| fail(CliError::Usage(format!("bad value for --{key}: {v}")))),
        }
    }
}

fn parse_flags(args: &[String]) -> Flags {
    const ALLOWED: &[&str] = &[
        "connect",
        "jobs",
        "tenants",
        "mean-gap",
        "mean-work",
        "edges",
        "seed",
    ];
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            usage();
        };
        if !ALLOWED.contains(&key) {
            fail(CliError::Usage(format!("unknown flag --{key}")));
        }
        match args.get(i + 1) {
            Some(v) => {
                flags.insert(key.to_string(), v.clone());
                i += 2;
            }
            None => fail(CliError::Usage(format!("flag --{key} requires a value"))),
        }
    }
    Flags(flags)
}

/// The two halves of a connected stream.
trait Halves {
    type R: Read + Send + 'static;
    fn reader(&self) -> std::io::Result<Self::R>;
    fn done_writing(&self) -> std::io::Result<()>;
}

impl Halves for UnixStream {
    type R = UnixStream;
    fn reader(&self) -> std::io::Result<UnixStream> {
        self.try_clone()
    }
    fn done_writing(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

impl Halves for TcpStream {
    type R = TcpStream;
    fn reader(&self) -> std::io::Result<TcpStream> {
        self.try_clone()
    }
    fn done_writing(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

/// Read-side totals, joined latencies, and the server's own summary.
#[derive(Default)]
struct ReadOutcome {
    admitted: usize,
    shed: usize,
    rejected: usize,
    completed: usize,
    server_lines: usize,
    server_tenants: usize,
    /// Reject counts keyed by the server's stable `code` field.
    reject_codes: BTreeMap<String, usize>,
    latency: LatencyStats,
}

/// Drains the server's record stream to EOF, joining `admit` line
/// numbers and `completion` job ids back to client send times.
fn read_stream(
    input: impl Read,
    tenants: usize,
    send_nanos: &[AtomicU64],
    start: Instant,
) -> Result<ReadOutcome, CliError> {
    let mut input = BufReader::new(input);
    let mut line = String::new();
    let mut fields = ObjBuf::new();
    let mut outcome = ReadOutcome::default();
    // (tenant, job) -> send instant, inserted on admit, resolved on
    // completion. Size tracks in-flight jobs only.
    let mut in_flight: HashMap<(usize, u64), u64> = HashMap::new();
    loop {
        line.clear();
        let n = input
            .read_line(&mut line)
            .map_err(|e| CliError::Io(format!("server stream: {e}")))?;
        if n == 0 {
            break;
        }
        if parse_object_into(line.trim_end(), &mut fields).is_err() {
            continue;
        }
        let mut kind = "";
        let mut tenant: Option<usize> = None;
        let mut lane_line: Option<u64> = None;
        let mut job: Option<u64> = None;
        for (key, value) in fields.fields() {
            match (key.as_str(), value) {
                ("type", Value::Str(s)) => kind = s,
                ("tenant", Value::Str(s)) => {
                    tenant = s.strip_prefix('t').and_then(|x| x.parse().ok());
                }
                ("line", Value::Num(x)) => lane_line = Some(*x as u64),
                ("job", Value::Num(x)) => job = Some(*x as u64),
                _ => {}
            }
        }
        match kind {
            "admit" => {
                outcome.admitted += 1;
                if let (Some(t), Some(l), Some(j)) = (tenant, lane_line, job) {
                    // Round-robin script: tenant t's l-th line was the
                    // global ((l-1)*tenants + t)-th submission.
                    let idx = (l as usize - 1) * tenants + t;
                    if let Some(slot) = send_nanos.get(idx) {
                        let sent = slot.load(Ordering::Relaxed);
                        if sent > 0 {
                            in_flight.insert((t, j), sent);
                        }
                    }
                }
            }
            "shed" => outcome.shed += 1,
            "reject" => {
                outcome.rejected += 1;
                let code = fields
                    .fields()
                    .iter()
                    .find_map(|(k, v)| (k == "code").then(|| v.as_str()).flatten())
                    .unwrap_or("unknown");
                *outcome.reject_codes.entry(code.to_string()).or_insert(0) += 1;
            }
            "completion" => {
                outcome.completed += 1;
                if let (Some(t), Some(j)) = (tenant, job) {
                    if let Some(sent) = in_flight.remove(&(t, j)) {
                        let now = start.elapsed().as_nanos() as u64;
                        outcome
                            .latency
                            .record((now.saturating_sub(sent - 1)) as f64 / 1e9);
                    }
                }
            }
            "server-summary" => {
                for (key, value) in fields.fields() {
                    if let Value::Num(x) = value {
                        match key.as_str() {
                            "lines" => outcome.server_lines = *x as usize,
                            "tenants" => outcome.server_tenants = *x as usize,
                            _ => {}
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(outcome)
}

fn drive<S: Write + Halves>(stream: S, plan: &LoadPlan) -> Result<(), CliError> {
    let jobs = script(plan);
    let send_nanos: Arc<Vec<AtomicU64>> =
        Arc::new((0..jobs.len()).map(|_| AtomicU64::new(0)).collect());
    let start = Instant::now();

    let reader = stream
        .reader()
        .map_err(|e| CliError::Io(format!("clone stream: {e}")))?;
    let read_half = {
        let send_nanos = Arc::clone(&send_nanos);
        let tenants = plan.tenants;
        std::thread::spawn(move || read_stream(reader, tenants, &send_nanos, start))
    };

    let mut out = BufWriter::new(stream);
    for (i, job) in jobs.iter().enumerate() {
        // Stamp strictly positive nanos (0 = "not sent yet").
        send_nanos[i].store(start.elapsed().as_nanos() as u64 + 1, Ordering::Relaxed);
        out.write_all(job.line.as_bytes())
            .map_err(|e| CliError::Io(format!("send: {e}")))?;
        if i % 256 == 255 {
            out.flush()
                .map_err(|e| CliError::Io(format!("send: {e}")))?;
        }
    }
    out.flush()
        .map_err(|e| CliError::Io(format!("send: {e}")))?;
    let stream = out
        .into_inner()
        .map_err(|e| CliError::Io(format!("send: {e}")))?;
    stream
        .done_writing()
        .map_err(|e| CliError::Io(format!("shutdown: {e}")))?;

    let mut outcome = read_half
        .join()
        .map_err(|_| CliError::Failure("reader thread panicked".into()))??;
    let wall = start.elapsed().as_secs_f64();

    let p50 = outcome.latency.quantile(0.50);
    let p99 = outcome.latency.quantile(0.99);
    println!(
        "{{\"type\":\"load-result\",\"submitted\":{},\"admitted\":{},\"shed\":{},\
         \"rejected\":{},\"completed\":{},\"server_lines\":{},\"server_tenants\":{},\
         \"wall_secs\":{:.3},\"jobs_per_sec\":{:.1},\"shed_rate\":{:.6},\
         \"p50_latency_ms\":{},\"p99_latency_ms\":{},\"reject_codes\":\"{}\"}}",
        jobs.len(),
        outcome.admitted,
        outcome.shed,
        outcome.rejected,
        outcome.completed,
        outcome.server_lines,
        outcome.server_tenants,
        wall,
        jobs.len() as f64 / wall,
        outcome.shed as f64 / jobs.len().max(1) as f64,
        p50.map_or("null".into(), |x| format!("{:.3}", x * 1e3)),
        p99.map_or("null".into(), |x| format!("{:.3}", x * 1e3)),
        outcome
            .reject_codes
            .iter()
            .map(|(code, n)| format!("{code}:{n}"))
            .collect::<Vec<_>>()
            .join(","),
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args);
    let Some(connect) = flags.0.get("connect") else {
        usage();
    };
    let target = Listen::parse(connect).unwrap_or_else(|e| fail(e));
    let plan = LoadPlan {
        jobs: flags.get("jobs", 10_000usize),
        tenants: flags.get("tenants", 8usize),
        mean_gap: flags.get("mean-gap", 1.0f64),
        mean_work: flags.get("mean-work", 0.8f64),
        edges: flags.get("edges", 2usize),
        seed: flags.get("seed", 1u64),
    };
    if plan.jobs == 0 || plan.tenants == 0 || plan.edges == 0 {
        fail(CliError::Usage(
            "--jobs, --tenants, and --edges must be at least 1".into(),
        ));
    }
    let result = match &target {
        Listen::Unix(path) => UnixStream::connect(path)
            .map_err(|e| CliError::Io(format!("connect {}: {e}", path.display())))
            .and_then(|s| drive(s, &plan)),
        Listen::Tcp(addr) => TcpStream::connect(addr.as_str())
            .map_err(|e| CliError::Io(format!("connect {addr}: {e}")))
            .and_then(|s| drive(s, &plan)),
    };
    result.unwrap_or_else(|e| fail(e));
}
