//! `mmsec` — command-line front-end to the library: generate instances,
//! schedule them with any policy, validate, draw Gantt charts, and export
//! observability artifacts (metrics JSON, Perfetto-compatible traces).
//!
//! ```text
//! mmsec gen random --n 50 --ccr 1.0 --load 0.05 --seed 42 --out inst.txt
//! mmsec gen kang   --n 50 --edges 20 --seed 42 --out inst.txt
//! mmsec run --instance inst.txt --policy ssf-edf [--gantt] [--per-job]
//!           [--trace trace.json] [--metrics metrics.json] [-v]
//! mmsec compare --instance inst.txt
//! mmsec trace export --instance inst.txt --out trace.ndjson
//! mmsec trace import --trace trace.ndjson --out inst.txt
//! ```

use mmsec_apps::cli::{fail, CliError};
use mmsec_apps::serve::{serve, ServeConfig};
use mmsec_apps::server::{run_listener, run_sharded, Listen, ServerConfig};
use mmsec_core::PolicyKind;
use mmsec_platform::obs::{
    ChromeTraceWriter, Fanout, FlightRecorder, MetricsRecorder, PhaseProfiler, Shared,
};
use mmsec_platform::{
    gantt, validate, FaultConfig, GanttOptions, Instance, Simulation, StretchReport, Target,
};
use mmsec_workload::{KangConfig, RandomCcrConfig};
use std::collections::HashMap;
use std::io::{BufReader, Write};

fn usage() -> ! {
    fail(CliError::Usage(format!(
        "usage:\n  mmsec gen random --n N [--ccr X] [--load X] [--seed N] [--out FILE]\n  \
         mmsec gen kang --n N [--edges N] [--load X] [--seed N] [--out FILE]\n  \
         mmsec run --instance FILE [--policy NAME] [--seed N] [--gantt] [--per-job]\n    \
         [--export FILE.csv] [--svg FILE.svg] [--trace FILE.json] [--metrics FILE.json]\n    \
         [--profile FILE.json] [--fault-mtbf SECS [--fault-mttr SECS] [--fault-seed N]] [-v]\n  \
         mmsec compare --instance FILE\n  \
         mmsec trace export --instance FILE [--out FILE.ndjson]\n  \
         mmsec trace import [--trace FILE.ndjson] [--out FILE]\n  \
         mmsec serve --instance FILE [--policy NAME] [--seed N] [--input FILE]\n    \
         [--speedup X] [--max-pending N] [--heartbeat SECS] [--stats-every N]\n    \
         [--trace FILE.json] [--metrics FILE.json]\n  \
         mmsec serve --instance FILE [--listen unix:PATH|tcp:ADDR] [--shards N]\n    \
         [--max-queue N] [--global-pending N] [--server-heartbeat-ms N] [--once]\n    \
         [--policy NAME] [--seed N] [--max-pending N] [--heartbeat SECS] [--stats-every N]\n\n\
         policies: {}",
        PolicyKind::ALL
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    )));
}

/// Parses `--flag [value]` pairs, rejecting anything not in `allowed`
/// Boolean switches: every other accepted flag requires a value.
const SWITCHES: &[&str] = &["gantt", "per-job", "verbose", "once"];

/// Parses `--flag [value]` pairs, rejecting anything not in `allowed`
/// (so a typo like `--polcy` fails loudly instead of being ignored) and
/// value-taking flags with a missing value (so `--trace` alone does not
/// silently write a file named `true`).
/// `-v` is accepted as shorthand for `--verbose`.
fn parse_flags(args: &[String], allowed: &[&str]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = if args[i] == "-v" {
            "verbose"
        } else {
            match args[i].strip_prefix("--") {
                Some(key) => key,
                None => usage(),
            }
        };
        if !allowed.contains(&key) {
            fail(CliError::Usage(format!(
                "unknown flag --{key}\naccepted flags: {}",
                allowed
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
        if SWITCHES.contains(&key) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => fail(CliError::Usage(format!("flag --{key} requires a value"))),
            }
        }
    }
    flags
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| fail(CliError::Usage(format!("bad value for --{key}: {v}")))),
    }
}

fn load_instance(flags: &HashMap<String, String>) -> Instance {
    let Some(path) = flags.get("instance") else {
        usage();
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(CliError::io(path, e)));
    Instance::from_text(&text)
        .unwrap_or_else(|e| fail(CliError::Validation(format!("cannot parse {path}: {e}"))))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "gen" => {
            let Some(kind) = args.get(1) else { usage() };
            let flags = parse_flags(&args[2..], &["n", "ccr", "load", "edges", "seed", "out"]);
            let seed: u64 = get(&flags, "seed", 42);
            let inst = match kind.as_str() {
                "random" => RandomCcrConfig {
                    n: get(&flags, "n", 50),
                    ccr: get(&flags, "ccr", 1.0),
                    load: get(&flags, "load", 0.05),
                    ..RandomCcrConfig::default()
                }
                .generate(seed),
                "kang" => KangConfig {
                    n: get(&flags, "n", 50),
                    num_edge: get(&flags, "edges", 20),
                    load: get(&flags, "load", 0.05),
                    ..KangConfig::default()
                }
                .generate(seed),
                _ => usage(),
            };
            let text = inst.to_text();
            match flags.get("out") {
                Some(path) => {
                    std::fs::write(path, text).unwrap_or_else(|e| fail(CliError::io(path, e)));
                    eprintln!(
                        "wrote {} jobs on {} edges / {} clouds to {path}",
                        inst.num_jobs(),
                        inst.spec.num_edge(),
                        inst.spec.num_cloud()
                    );
                }
                None => print!("{text}"),
            }
        }
        "run" => {
            let flags = parse_flags(
                &args[1..],
                &[
                    "instance",
                    "policy",
                    "seed",
                    "gantt",
                    "per-job",
                    "export",
                    "svg",
                    "trace",
                    "metrics",
                    "profile",
                    "verbose",
                    "fault-mtbf",
                    "fault-mttr",
                    "fault-seed",
                ],
            );
            let inst = load_instance(&flags);
            let policy_name = flags.get("policy").map(String::as_str).unwrap_or("ssf-edf");
            let Some(kind) = PolicyKind::parse(policy_name) else {
                fail(CliError::Usage(format!("unknown policy {policy_name}")));
            };
            let mut policy = kind.build(get(&flags, "seed", 0));
            let verbose = flags.contains_key("verbose");
            let engine_opts = mmsec_platform::EngineOptions {
                record_events: verbose,
                ..mmsec_platform::EngineOptions::default()
            };

            // Fault injection: --fault-mtbf enables a uniform seeded
            // exponential crash/recover model on every unit (docs/faults.md).
            if !flags.contains_key("fault-mtbf")
                && (flags.contains_key("fault-mttr") || flags.contains_key("fault-seed"))
            {
                fail(CliError::Usage(
                    "--fault-mttr/--fault-seed require --fault-mtbf".into(),
                ));
            }
            let fault_plan = flags.contains_key("fault-mtbf").then(|| {
                let mtbf: f64 = get(&flags, "fault-mtbf", 0.0);
                let mttr: f64 = get(&flags, "fault-mttr", 10.0);
                if !(mtbf.is_finite() && mtbf > 0.0 && mttr.is_finite() && mttr > 0.0) {
                    fail(CliError::Usage(
                        "--fault-mtbf/--fault-mttr must be positive seconds".into(),
                    ));
                }
                let fault_seed: u64 = get(&flags, "fault-seed", 1);
                let horizon = mmsec_bench::experiments::fault_horizon(&inst);
                FaultConfig::uniform_exponential(
                    inst.spec.num_edge(),
                    inst.spec.num_cloud(),
                    mtbf,
                    mttr,
                )
                .compile(fault_seed, horizon)
            });

            // Observability: register the requested sinks plus an
            // always-on flight recorder (pure telemetry — the run is
            // bit-identical with or without observers, and the ring is
            // what makes a stall dump possible at all), shared between
            // the engine and the policy (SSF-EDF reports its
            // binary-search probes).
            let metrics = Shared::new(MetricsRecorder::new());
            let chrome = Shared::new(ChromeTraceWriter::new());
            let flight = Shared::new(FlightRecorder::default());
            let mut fan = Fanout::new();
            if flags.contains_key("metrics") {
                fan.push(Box::new(metrics.clone()));
            }
            if flags.contains_key("trace") {
                fan.push(Box::new(chrome.clone()));
            }
            fan.push(Box::new(flight.clone()));
            let shared_fan = Shared::new(fan);
            policy.attach_observer(shared_fan.handle());
            let mut engine_side = shared_fan.clone();

            let mut profiler = PhaseProfiler::new();
            let profiling = flags.contains_key("profile");

            let mut sim = Simulation::of(&inst)
                .policy(policy.as_mut())
                .options(engine_opts)
                .observer(&mut engine_side);
            if let Some(plan) = &fault_plan {
                sim = sim.faults(plan);
            }
            if profiling {
                sim = sim.profiler(&mut profiler);
            }
            let out = sim.run().unwrap_or_else(|e| {
                let mut msg = format!("simulation failed: {e}");
                if let Some(path) = flight.with(|f| f.dump("run")) {
                    msg.push_str(&format!(" (flight recording: {})", path.display()));
                }
                fail(CliError::Failure(msg))
            });
            if let Err(violations) = validate(&inst, &out.schedule) {
                let mut msg = format!("INVALID schedule ({} violations):", violations.len());
                for v in violations.iter().take(10) {
                    msg.push_str(&format!("\n  {v}"));
                }
                fail(CliError::Validation(msg));
            }
            let report = StretchReport::new(&inst, &out.schedule);
            let offloaded = out
                .schedule
                .alloc
                .iter()
                .filter(|a| matches!(a, Some(Target::Cloud(_))))
                .count();
            println!("policy        {}", kind.name());
            println!("jobs          {}", inst.num_jobs());
            println!("max stretch   {:.4}", report.max_stretch);
            println!("mean stretch  {:.4}", report.mean_stretch);
            println!("max response  {:.4}", report.max_response);
            println!("offloaded     {}/{}", offloaded, inst.num_jobs());
            if let Some(plan) = &fault_plan {
                println!(
                    "faults        mtbf {} mttr {} seed {} ({} downtime windows)",
                    get::<f64>(&flags, "fault-mtbf", 0.0),
                    get::<f64>(&flags, "fault-mttr", 10.0),
                    get::<u64>(&flags, "fault-seed", 1),
                    plan.total_windows()
                );
            }
            println!("re-executions {}", out.stats.restarts);
            println!("events        {}", out.stats.events);
            println!("decide time   {:?}", out.stats.decide_time);
            if flags.contains_key("per-job") {
                println!("\njob  target     stretch");
                for (id, _) in inst.iter_jobs() {
                    println!(
                        "{:<4} {:<10} {:.4}",
                        id.to_string(),
                        out.schedule.alloc[id.0].expect("allocated").to_string(),
                        report.stretches[id.0]
                    );
                }
            }
            if flags.contains_key("gantt") {
                println!("\n{}", gantt(&inst, &out.schedule, GanttOptions::default()));
            }
            if let Some(log) = &out.event_log {
                println!("\nevent trace ({} decisions):", log.len());
                for rec in log {
                    let acts: Vec<String> = rec
                        .activations
                        .iter()
                        .map(|(j, p, t)| format!("{j}:{p}@{t}"))
                        .collect();
                    println!(
                        "  t={:<10.4} pending={:<3} [{}]",
                        rec.time.seconds(),
                        rec.pending,
                        acts.join(" ")
                    );
                }
            }
            if let Some(path) = flags.get("metrics") {
                let doc = metrics.with(|m| m.to_json_string());
                std::fs::write(path, doc).unwrap_or_else(|e| fail(CliError::io(path, e)));
                eprintln!("wrote run metrics to {path}");
            }
            if let Some(path) = flags.get("trace") {
                let doc = chrome.with(|c| c.to_json_string());
                std::fs::write(path, doc).unwrap_or_else(|e| fail(CliError::io(path, e)));
                eprintln!("wrote Chrome trace to {path} (open at https://ui.perfetto.dev)");
            }
            if let Some(path) = flags.get("profile") {
                let doc = profiler.to_json_string();
                std::fs::write(path, doc).unwrap_or_else(|e| fail(CliError::io(path, e)));
                eprintln!("wrote phase profile to {path}");
            }
            if let Some(path) = flags.get("export") {
                let csv = mmsec_platform::export::schedule_to_csv(&inst, &out.schedule);
                std::fs::write(path, csv).unwrap_or_else(|e| fail(CliError::io(path, e)));
                eprintln!("exported activity trace to {path}");
            }
            if let Some(path) = flags.get("svg") {
                let svg = mmsec_platform::svg::schedule_to_svg(
                    &inst,
                    &out.schedule,
                    mmsec_platform::svg::SvgOptions::default(),
                );
                std::fs::write(path, svg).unwrap_or_else(|e| fail(CliError::io(path, e)));
                eprintln!("rendered SVG gantt to {path}");
            }
        }
        "trace" => {
            let mode = args.get(1).map(String::as_str).unwrap_or("");
            match mode {
                "export" => {
                    let flags = parse_flags(&args[2..], &["instance", "out"]);
                    let inst = load_instance(&flags);
                    let mut buf = Vec::new();
                    mmsec_apps::trace::write_trace(&inst, &mut buf).unwrap_or_else(|e| fail(e));
                    match flags.get("out") {
                        Some(path) => {
                            std::fs::write(path, &buf)
                                .unwrap_or_else(|e| fail(CliError::io(path, e)));
                            eprintln!(
                                "exported {} job(s) as an NDJSON trace to {path}",
                                inst.jobs.len()
                            );
                        }
                        None => {
                            std::io::stdout()
                                .write_all(&buf)
                                .unwrap_or_else(|e| fail(CliError::Io(format!("stdout: {e}"))));
                        }
                    }
                }
                "import" => {
                    let flags = parse_flags(&args[2..], &["trace", "out"]);
                    let inst = match flags.get("trace") {
                        Some(path) => {
                            let file = std::fs::File::open(path)
                                .unwrap_or_else(|e| fail(CliError::io(path, e)));
                            mmsec_apps::trace::read_trace(BufReader::new(file))
                        }
                        None => {
                            let stdin = std::io::stdin();
                            mmsec_apps::trace::read_trace(stdin.lock())
                        }
                    }
                    .unwrap_or_else(|e| fail(e));
                    let text = inst.to_text();
                    match flags.get("out") {
                        Some(path) => {
                            std::fs::write(path, &text)
                                .unwrap_or_else(|e| fail(CliError::io(path, e)));
                            eprintln!(
                                "imported {} job(s) into instance file {path}",
                                inst.jobs.len()
                            );
                        }
                        None => print!("{text}"),
                    }
                }
                _ => usage(),
            }
        }
        "compare" => {
            let flags = parse_flags(&args[1..], &["instance"]);
            let inst = load_instance(&flags);
            println!("policy      max-stretch  mean-stretch  re-exec  decide-time");
            for kind in PolicyKind::ALL {
                if kind == PolicyKind::CloudOnly && inst.spec.num_cloud() == 0 {
                    continue;
                }
                let mut policy = kind.build(0);
                let out = Simulation::of(&inst)
                    .policy(policy.as_mut())
                    .run()
                    .unwrap_or_else(|e| fail(CliError::Failure(format!("{kind} failed: {e}"))));
                if validate(&inst, &out.schedule).is_err() {
                    fail(CliError::Validation(format!("{kind}: INVALID schedule")));
                }
                let r = StretchReport::new(&inst, &out.schedule);
                println!(
                    "{:<11} {:>11.4} {:>13.4} {:>8} {:>12.1?}",
                    kind.name(),
                    r.max_stretch,
                    r.mean_stretch,
                    out.stats.restarts,
                    out.stats.decide_time
                );
            }
        }
        "serve" => {
            let flags = parse_flags(
                &args[1..],
                &[
                    "instance",
                    "policy",
                    "seed",
                    "input",
                    "speedup",
                    "max-pending",
                    "heartbeat",
                    "stats-every",
                    "trace",
                    "metrics",
                    "listen",
                    "shards",
                    "max-queue",
                    "global-pending",
                    "server-heartbeat-ms",
                    "once",
                ],
            );
            let inst = load_instance(&flags);
            let policy_name = flags.get("policy").map(String::as_str).unwrap_or("ssf-edf");
            let Some(kind) = PolicyKind::parse(policy_name) else {
                fail(CliError::Usage(format!("unknown policy {policy_name}")));
            };
            let cfg = ServeConfig {
                policy: kind,
                seed: get(&flags, "seed", 0),
                heartbeat: get(&flags, "heartbeat", 10.0),
                max_pending: flags
                    .contains_key("max-pending")
                    .then(|| get(&flags, "max-pending", 0usize)),
                speedup: flags
                    .contains_key("speedup")
                    .then(|| get(&flags, "speedup", 1.0)),
                stats_every: flags
                    .contains_key("stats-every")
                    .then(|| get(&flags, "stats-every", 0usize)),
                ..ServeConfig::default()
            };

            // Any sharded-server flag selects the sharded runtime; with
            // none of them, this is the exact legacy single-session path.
            let sharded = ["listen", "shards", "max-queue", "global-pending", "once"]
                .iter()
                .any(|k| flags.contains_key(*k))
                || flags.contains_key("server-heartbeat-ms");
            if sharded {
                for bad in ["input", "speedup", "trace", "metrics"] {
                    if flags.contains_key(bad) {
                        fail(CliError::Usage(format!(
                            "--{bad} applies to single-session serving, \
                             not the sharded server"
                        )));
                    }
                }
                let server_cfg = ServerConfig {
                    serve: cfg,
                    shards: get(&flags, "shards", 1usize),
                    max_queue: flags
                        .contains_key("max-queue")
                        .then(|| get(&flags, "max-queue", 0usize)),
                    global_pending: flags
                        .contains_key("global-pending")
                        .then(|| get(&flags, "global-pending", 0usize)),
                    heartbeat_ms: get(&flags, "server-heartbeat-ms", 1000u64),
                };
                match flags.get("listen") {
                    Some(spec) => {
                        let listen = Listen::parse(spec).unwrap_or_else(|e| fail(e));
                        let once = flags.contains_key("once");
                        run_listener(&inst, &server_cfg, &listen, once).unwrap_or_else(|e| fail(e));
                    }
                    None => {
                        if flags.contains_key("once") {
                            fail(CliError::Usage("--once requires --listen".into()));
                        }
                        let stdin = std::io::stdin();
                        let summary = run_sharded(
                            &inst,
                            &server_cfg,
                            stdin.lock(),
                            std::io::BufWriter::new(std::io::stdout()),
                        )
                        .unwrap_or_else(|e| fail(e));
                        eprintln!(
                            "served {} line(s): {} admitted, {} shed, {} rejected, \
                             {} completed, {} tenant(s)",
                            summary.lines,
                            summary.admitted,
                            summary.shed,
                            summary.rejected,
                            summary.completed,
                            summary.tenants
                        );
                    }
                }
                return;
            }

            // Observability sinks, exactly as in `run`.
            let metrics = Shared::new(MetricsRecorder::new());
            let chrome = Shared::new(ChromeTraceWriter::new());
            let mut fan = Fanout::new();
            if flags.contains_key("metrics") {
                fan.push(Box::new(metrics.clone()));
            }
            if flags.contains_key("trace") {
                fan.push(Box::new(chrome.clone()));
            }
            let observing = !fan.is_empty();
            let mut shared_fan = Shared::new(fan);
            let observer: Option<&mut dyn mmsec_platform::Observer> =
                observing.then_some(&mut shared_fan as _);

            let stdout = std::io::stdout();
            let mut out = std::io::BufWriter::new(stdout.lock());
            let result = match flags.get("input") {
                Some(path) => {
                    let file =
                        std::fs::File::open(path).unwrap_or_else(|e| fail(CliError::io(path, e)));
                    serve(&inst, &cfg, BufReader::new(file), &mut out, observer)
                }
                None => {
                    let stdin = std::io::stdin();
                    serve(&inst, &cfg, stdin.lock(), &mut out, observer)
                }
            };
            out.flush()
                .unwrap_or_else(|e| fail(CliError::Io(format!("stdout: {e}"))));
            let summary = result.unwrap_or_else(|e| fail(e));
            if let Some(path) = flags.get("metrics") {
                let doc = metrics.with(|m| m.to_json_string());
                std::fs::write(path, doc).unwrap_or_else(|e| fail(CliError::io(path, e)));
                eprintln!("wrote run metrics to {path}");
            }
            if let Some(path) = flags.get("trace") {
                let doc = chrome.with(|c| c.to_json_string());
                std::fs::write(path, doc).unwrap_or_else(|e| fail(CliError::io(path, e)));
                eprintln!("wrote Chrome trace to {path} (open at https://ui.perfetto.dev)");
            }
            eprintln!(
                "served {} line(s): {} admitted, {} shed, {} rejected, {} completed, \
                 max stretch {:.4}",
                summary.lines,
                summary.admitted,
                summary.shed,
                summary.rejected,
                summary.completed,
                summary.max_stretch
            );
        }
        _ => usage(),
    }
}
