//! `mmsec serve` — drive a [`Session`] from a newline-delimited JSON job
//! stream (see `docs/serving.md` for the protocol).
//!
//! Input: one JSON object per line — a job submission, or (with
//! `"type": "platform"`) a platform mutation applied at the current
//! virtual time:
//!
//! ```text
//! {"origin": 0, "release": 1.5, "work": 2.0, "up": 0.5, "dn": 0.25}
//! {"type": "platform", "op": "add-cloud", "speed": 2.0}
//! {"type": "platform", "op": "set-link", "unit": 0, "factor": 0.5}
//! ```
//!
//! `release` is optional (defaults to the current virtual time); `up` and
//! `dn` default to 0. On continuum platforms, `set-hop` retunes a tier
//! hop's `(up, dn)` link-time factors:
//!
//! ```text
//! {"type": "platform", "op": "set-hop", "hop": 0, "up": 2.0, "dn": 1.5}
//! ```
//!
//! Output: one JSON record per line — `admit` / `shed`
//! / `reject` for each input line (`platform-ok` for an applied
//! mutation), `completion` per finished job with its stretch, periodic
//! `heartbeat` snapshots (schema v4: queue depths, decide counters,
//! per-interval deltas, platform version, live unit counts, tier-graph
//! shape, and — under `--speedup` — the wall-vs-virtual lag) at a fixed
//! virtual-time
//! cadence, optional `stats` records every `--stats-every N` input
//! lines, and one final `summary`. Heartbeat timestamps are strictly
//! monotone, and their payload always reflects the state *after* the
//! boundary advance — when the session's next event lies beyond several
//! boundaries at once, one heartbeat covers the crossing instead of a
//! stale payload repeating per boundary. Heartbeats only start once the
//! session's virtual clock has (the first release fires): an idle stream
//! whose first job lies far in the future emits no pre-start beats, so no
//! `stats` record can ever carry a timestamp earlier than the last
//! heartbeat.
//!
//! Every `reject` record carries a human-readable `error`, a stable
//! kebab-case `code` (`parse-error`, `bad-type`, `bad-value`,
//! `unknown-field`, `missing-field`, `unknown-op`, or a platform/engine
//! error class such as `unknown-edge` or `origin-out-of-range`), and —
//! when the violation is tied to one — the offending `field`.
//!
//! Every session also feeds an internal [`FlightRecorder`]: if the engine
//! errors or the backlog drain stalls, the last engine events are dumped
//! as a JSON artifact (see [`mmsec_platform::obs::failure_dir`]) and the
//! failure message names the file.
//!
//! The core ([`serve`]) is generic over reader/writer so tests can run it
//! in memory; the binary hands it stdin/stdout (or `--input FILE`,
//! replayed in wall time with `--speedup`).
//!
//! # Lanes
//!
//! Internally the loop is factored as a `Lane`: one session plus its
//! heartbeat cadence, admission counters, and reused buffers, fed one
//! input line at a time. [`serve`] drives a single untagged lane; the
//! sharded server (`crate::server`) keeps one *tagged* lane per tenant —
//! a tagged lane injects a `"tenant"` field right after `"type"` in every
//! record and is otherwise byte-identical to a single-session run.

use crate::cli::CliError;
use crate::ndjson::{parse_object_into, ObjBuf, ObjWriter, Value};
use mmsec_core::PolicyKind;
use mmsec_platform::obs::{Event as ObsEvent, FlightRecorder, ObserverHandle, Shared};
use mmsec_platform::{
    CloudId, EdgeId, EngineOptions, Instance, Job, Observer, PlatformMutation, Session,
    SessionStatus, Simulation,
};
use mmsec_sim::Time;
use std::io::{BufRead, Write};

/// Heartbeat/stats payload schema version (the `"v"` field). v3 added
/// `platform_version` and live `edges`/`clouds` counts; v4 added the
/// tier-graph fields (`tiers`, and `clouds_by_tier` on tiered
/// platforms).
pub const STATS_SCHEMA_VERSION: u32 = 4;

/// Ring capacity of the serve loop's internal flight recorder.
pub(crate) const FLIGHT_CAPACITY: usize = 512;

/// Serving-loop knobs (the binary fills these from flags).
pub struct ServeConfig {
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Seed for seeded policies.
    pub seed: u64,
    /// Engine options.
    pub engine: EngineOptions,
    /// Emit a `heartbeat` record every this many virtual seconds.
    pub heartbeat: f64,
    /// Bounded admission: shed submissions that would push the number of
    /// unfinished jobs beyond this. `None` = unbounded.
    pub max_pending: Option<usize>,
    /// Wall-clock pacing for file replay: sleep `(Δrelease)/speedup`
    /// between arrivals. `None` = as fast as possible (the only mode used
    /// in tests and CI).
    pub speedup: Option<f64>,
    /// Emit a `stats` record every this many input lines (`None` = no
    /// dedicated stats stream; heartbeats still carry the full payload).
    pub stats_every: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: PolicyKind::SsfEdf,
            seed: 0,
            engine: EngineOptions::default(),
            heartbeat: 10.0,
            max_pending: None,
            speedup: None,
            stats_every: None,
        }
    }
}

/// Validates the cadence/pacing knobs shared by [`serve`] and the
/// sharded server (which applies them per lane).
pub(crate) fn validate_config(cfg: &ServeConfig) -> Result<(), CliError> {
    if !(cfg.heartbeat > 0.0 && cfg.heartbeat.is_finite()) {
        return Err(CliError::Usage(
            "--heartbeat must be positive seconds".into(),
        ));
    }
    if cfg.speedup.is_some_and(|x| x <= 0.0 || x.is_nan()) {
        return Err(CliError::Usage("--speedup must be positive".into()));
    }
    if cfg.stats_every == Some(0) {
        return Err(CliError::Usage(
            "--stats-every must be a positive line count".into(),
        ));
    }
    Ok(())
}

/// Totals returned by [`serve`] (also emitted as the final `summary`
/// record).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Lines read from the input stream.
    pub lines: usize,
    /// Jobs admitted into the session.
    pub admitted: usize,
    /// Submissions dropped by bounded admission.
    pub shed: usize,
    /// Lines rejected as malformed or invalid.
    pub rejected: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Maximum stretch over completed jobs.
    pub max_stretch: f64,
}

/// A protocol violation: what went wrong (`code`, a stable kebab-case
/// identifier scripts can switch on), where (`field`, the offending input
/// field — empty when the violation is not tied to one), and a
/// human-readable message. Every `reject` record carries all three.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Reject {
    pub code: &'static str,
    pub field: String,
    pub message: String,
}

impl Reject {
    pub(crate) fn new(code: &'static str, field: &str, message: impl Into<String>) -> Reject {
        Reject {
            code,
            field: field.to_string(),
            message: message.into(),
        }
    }

    /// A violation not attributable to a single input field (e.g. a line
    /// that failed to parse at all).
    pub(crate) fn bare(code: &'static str, message: impl Into<String>) -> Reject {
        Reject::new(code, "", message)
    }

    /// Writes the reject payload fields (everything but `type`/routing
    /// fields) into an open record.
    pub(crate) fn write_into(&self, w: &mut ObjWriter) {
        w.str_field("error", &self.message)
            .str_field("code", self.code);
        if !self.field.is_empty() {
            w.str_field("field", &self.field);
        }
    }
}

/// One parsed submission line.
pub(crate) struct SubmitRequest {
    pub(crate) origin: usize,
    pub(crate) release: Option<f64>,
    pub(crate) work: f64,
    pub(crate) up: f64,
    pub(crate) dn: f64,
}

/// Parses a submission line's fields, reporting protocol violations as
/// typed [`Reject`]s (the loop turns them into `reject` records, not
/// fatal errors). Shared with the trace importer ([`crate::trace`]).
pub(crate) fn parse_submit(fields: &[(String, Value)]) -> Result<SubmitRequest, Reject> {
    let mut req = SubmitRequest {
        origin: 0,
        release: None,
        work: f64::NAN,
        up: 0.0,
        dn: 0.0,
    };
    let mut saw_origin = false;
    for (key, value) in fields {
        let num = |v: &Value| {
            v.as_num().ok_or_else(|| {
                Reject::new("bad-type", key, format!("field {key:?} must be a number"))
            })
        };
        match key.as_str() {
            "origin" => {
                let x = num(value)?;
                if x < 0.0 || x.fract() != 0.0 {
                    return Err(Reject::new(
                        "bad-value",
                        key,
                        format!("origin must be a non-negative integer, got {x}"),
                    ));
                }
                req.origin = x as usize;
                saw_origin = true;
            }
            "release" => req.release = Some(num(value)?),
            "work" => req.work = num(value)?,
            "up" => req.up = num(value)?,
            "dn" => req.dn = num(value)?,
            // Tolerated so producers can tag lines for their own use;
            // `tenant` is the sharded server's routing key and is
            // meaningless (but harmless) on a single session.
            "type" | "id" | "tag" | "tenant" => {}
            other => {
                return Err(Reject::new(
                    "unknown-field",
                    other,
                    format!("unknown field {other:?}"),
                ))
            }
        }
    }
    if !saw_origin {
        return Err(Reject::new(
            "missing-field",
            "origin",
            "missing field \"origin\"",
        ));
    }
    if !(req.work > 0.0 && req.work.is_finite()) {
        return Err(Reject::new(
            "bad-value",
            "work",
            "field \"work\" must be a positive number",
        ));
    }
    if req.up < 0.0 || req.dn < 0.0 {
        let field = if req.up < 0.0 { "up" } else { "dn" };
        return Err(Reject::new(
            "bad-value",
            field,
            "fields \"up\"/\"dn\" must be ≥ 0",
        ));
    }
    if req.release.is_some_and(|r| r < 0.0) {
        return Err(Reject::new(
            "bad-value",
            "release",
            "field \"release\" must be ≥ 0",
        ));
    }
    Ok(req)
}

/// True when the line is a `{"type": "platform", ...}` mutation record
/// rather than a job submission.
fn is_platform_record(fields: &[(String, Value)]) -> bool {
    fields
        .iter()
        .any(|(k, v)| k == "type" && v.as_str() == Some("platform"))
}

/// Parses a platform mutation record, reporting protocol violations as
/// typed [`Reject`]s (`reject` records, never fatal). Speeds and factors
/// are *not* range-checked here — the platform runtime owns those rules
/// and reports them as typed errors ([`mmsec_platform::PlatformError`]).
fn parse_platform(fields: &[(String, Value)]) -> Result<PlatformMutation, Reject> {
    let mut op: Option<String> = None;
    let mut unit: Option<usize> = None;
    let mut hop: Option<usize> = None;
    let mut speed: Option<f64> = None;
    let mut factor: Option<f64> = None;
    let mut up: Option<f64> = None;
    let mut dn: Option<f64> = None;
    for (key, value) in fields {
        let num = |v: &Value| {
            v.as_num().ok_or_else(|| {
                Reject::new("bad-type", key, format!("field {key:?} must be a number"))
            })
        };
        let index = |v: &Value| {
            let x = num(v)?;
            if x < 0.0 || x.fract() != 0.0 {
                return Err(Reject::new(
                    "bad-value",
                    key,
                    format!("{key} must be a non-negative integer, got {x}"),
                ));
            }
            Ok(x as usize)
        };
        match key.as_str() {
            "op" => match value.as_str() {
                // Producers may use `_` or `-` interchangeably.
                Some(s) => op = Some(s.replace('_', "-")),
                None => {
                    return Err(Reject::new(
                        "bad-type",
                        "op",
                        "field \"op\" must be a string",
                    ))
                }
            },
            "unit" => unit = Some(index(value)?),
            "hop" => hop = Some(index(value)?),
            "speed" => speed = Some(num(value)?),
            "factor" => factor = Some(num(value)?),
            "up" => up = Some(num(value)?),
            "dn" => dn = Some(num(value)?),
            "type" | "id" | "tag" | "tenant" => {}
            other => {
                return Err(Reject::new(
                    "unknown-field",
                    other,
                    format!("unknown field {other:?}"),
                ))
            }
        }
    }
    let op = op.ok_or_else(|| Reject::new("missing-field", "op", "missing field \"op\""))?;
    let need = |opt: Option<f64>, field: &'static str, what: &str| {
        opt.ok_or_else(|| {
            Reject::new(
                "missing-field",
                field,
                format!("op {what:?} needs a {field:?} field"),
            )
        })
    };
    let unit = |what: &str| {
        unit.ok_or_else(|| {
            Reject::new(
                "missing-field",
                "unit",
                format!("op {what:?} needs a \"unit\" field"),
            )
        })
    };
    let speed = |what: &str| need(speed, "speed", what);
    let factor = |what: &str| need(factor, "factor", what);
    Ok(match op.as_str() {
        "add-edge" => PlatformMutation::AddEdge { speed: speed(&op)? },
        "remove-edge" => PlatformMutation::RemoveEdge {
            edge: EdgeId(unit(&op)?),
        },
        "add-cloud" => PlatformMutation::AddCloud { speed: speed(&op)? },
        "remove-cloud" => PlatformMutation::RemoveCloud {
            cloud: CloudId(unit(&op)?),
        },
        "set-link" => PlatformMutation::SetLink {
            edge: EdgeId(unit(&op)?),
            factor: factor(&op)?,
        },
        "set-edge-speed" => PlatformMutation::SetEdgeSpeed {
            edge: EdgeId(unit(&op)?),
            speed: speed(&op)?,
        },
        "set-cloud-speed" => PlatformMutation::SetCloudSpeed {
            cloud: CloudId(unit(&op)?),
            speed: speed(&op)?,
        },
        "set-hop" => PlatformMutation::SetHop {
            hop: hop.ok_or_else(|| {
                Reject::new(
                    "missing-field",
                    "hop",
                    format!("op {op:?} needs a \"hop\" field"),
                )
            })?,
            up: need(up, "up", &op)?,
            dn: need(dn, "dn", &op)?,
        },
        other => {
            return Err(Reject::new(
                "unknown-op",
                "op",
                format!(
                    "unknown op {other:?} (expected add-edge, remove-edge, add-cloud, \
                     remove-cloud, set-link, set-edge-speed, set-cloud-speed, or set-hop)"
                ),
            ))
        }
    })
}

fn write_line(out: &mut impl Write, line: &str) -> Result<(), CliError> {
    writeln!(out, "{line}").map_err(|e| CliError::Io(format!("output stream: {e}")))
}

/// Starts a record of `kind`, injecting the lane's tenant tag (when set)
/// as the field right after `"type"` — so a tagged record minus its
/// tenant field is byte-identical to the untagged one.
fn reset_rec<'w>(w: &'w mut ObjWriter, kind: &str, tenant: Option<&str>) -> &'w mut ObjWriter {
    w.reset(kind);
    if let Some(t) = tenant {
        w.str_field("tenant", t);
    }
    w
}

/// Forwards every engine event to the serve loop's flight recorder and,
/// when the caller supplied one, to their observer too.
struct Tandem<'a> {
    flight: ObserverHandle,
    other: Option<&'a mut dyn Observer>,
}

impl Observer for Tandem<'_> {
    fn on_event(&mut self, event: &ObsEvent) {
        self.flight.on_event(event);
        if let Some(obs) = self.other.as_deref_mut() {
            obs.on_event(event);
        }
    }
}

/// Totals as of the previous record of a stream, for per-interval deltas.
/// Heartbeats and `stats` records each keep their own tracker so that the
/// deltas within either stream always sum to the totals, regardless of
/// how the two cadences interleave.
#[derive(Clone, Copy, Default)]
struct Deltas {
    admitted: usize,
    shed: usize,
    completed: usize,
}

/// Shared cadence/telemetry state of one serving loop.
struct Pulse {
    beat: f64,
    next_beat: f64,
    stats_every: Option<usize>,
    last_beat: Deltas,
    last_stats: Deltas,
    wall_start: std::time::Instant,
    speedup: Option<f64>,
    flight: Shared<FlightRecorder>,
    /// Tenant tag injected into every record of this lane (see
    /// [`reset_rec`]); `None` for a plain single-session serve.
    tenant: Option<String>,
}

impl Pulse {
    /// Wall-vs-virtual lag in virtual seconds (how far the session is
    /// behind the replay clock). Only meaningful under `--speedup`.
    fn lag(&self, session: &Session<'_>) -> Option<f64> {
        self.speedup
            .map(|sp| self.wall_start.elapsed().as_secs_f64() * sp - session.now().seconds())
    }

    /// Wraps an engine failure, dumping the flight ring alongside it.
    fn engine_failure(&self, msg: String) -> CliError {
        match self.flight.with(|f| f.dump("serve")) {
            Some(path) => {
                CliError::Failure(format!("{msg} (flight recording: {})", path.display()))
            }
            None => CliError::Failure(msg),
        }
    }
}

/// Writes the shared stats payload (schema v4) into `w`: queue depths,
/// decide counters, admission totals, per-interval deltas, platform
/// shape (including tier-graph fields), and the optional replay lag.
/// Updates `last` to the current totals.
fn stats_payload(
    w: &mut ObjWriter,
    session: &Session<'_>,
    summary: &ServeSummary,
    last: &mut Deltas,
    lag: Option<f64>,
) {
    let s = session.snapshot();
    w.num_field("now", s.now.seconds())
        .num_field("submitted", s.submitted as f64)
        .num_field("completed", s.completed as f64)
        .num_field("unfinished", s.unfinished as f64)
        .num_field("pending", s.pending as f64)
        .num_field("running", s.running as f64)
        .num_field("platform_version", session.platform().version() as f64)
        .num_field("edges", session.platform().num_edges_live() as f64)
        .num_field("clouds", session.platform().num_clouds_live() as f64);
    // v4: tier-graph shape — the hop count, and (tiered only) the live
    // cloud count at each tier as a comma-joined list (`"2,1"` = two live
    // clouds at tier 1, one at tier 2). The protocol's records are flat,
    // so the list is a string, not an array.
    let platform = session.platform();
    let depth = platform.spec().tier_depth();
    w.num_field("tiers", depth as f64);
    if let Some(topo) = platform.spec().tier_topology() {
        let mut by_tier = vec![0usize; depth];
        for k in platform.spec().clouds() {
            if platform.cloud_live(k) {
                by_tier[topo.tier_of(k) - 1] += 1;
            }
        }
        let list = by_tier
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(",");
        w.str_field("clouds_by_tier", &list);
    }
    w.num_field("max_stretch", s.max_stretch)
        .num_field("mean_stretch", s.mean_stretch)
        .num_field("events", s.run.events as f64)
        .num_field("decides", s.run.decides as f64)
        .num_field("decide_skips", s.run.decide_skips as f64)
        .num_field("admitted", summary.admitted as f64)
        .num_field("shed", summary.shed as f64)
        .num_field("rejected", summary.rejected as f64)
        .num_field("admitted_delta", (summary.admitted - last.admitted) as f64)
        .num_field("shed_delta", (summary.shed - last.shed) as f64)
        .num_field(
            "completed_delta",
            s.completed.saturating_sub(last.completed) as f64,
        );
    if let Some(lag) = lag {
        w.num_field("lag", lag);
    }
    *last = Deltas {
        admitted: summary.admitted,
        shed: summary.shed,
        completed: s.completed,
    };
}

/// Drains finished jobs into `completion` records. Uses
/// [`Session::drain_completions`] and a reused [`ObjWriter`], so the
/// steady-state emit path allocates nothing. The per-record `target`
/// string goes through a small reused scratch buffer for the same
/// reason.
fn emit_completions(
    session: &mut Session<'_>,
    out: &mut impl Write,
    summary: &mut ServeSummary,
    w: &mut ObjWriter,
    scratch: &mut String,
    tenant: Option<&str>,
) -> Result<(), CliError> {
    use std::fmt::Write as _;
    for c in session.drain_completions() {
        summary.completed += 1;
        summary.max_stretch = summary.max_stretch.max(c.stretch);
        scratch.clear();
        let _ = write!(scratch, "{}", c.target);
        reset_rec(w, "completion", tenant);
        w.num_field("job", c.job.0 as f64)
            .str_field("target", scratch)
            .num_field("release", c.release.seconds())
            .num_field("completion", c.completion.seconds())
            .num_field("response", c.response())
            .num_field("stretch", c.stretch);
        write_line(out, w.close())?;
    }
    Ok(())
}

fn heartbeat_record<'w>(
    session: &Session<'_>,
    summary: &ServeSummary,
    pulse: &mut Pulse,
    w: &'w mut ObjWriter,
) -> &'w str {
    reset_rec(w, "heartbeat", pulse.tenant.as_deref());
    w.num_field("v", STATS_SCHEMA_VERSION as f64);
    let lag = pulse.lag(session);
    stats_payload(w, session, summary, &mut pulse.last_beat, lag);
    w.close()
}

fn stats_record<'w>(
    session: &Session<'_>,
    summary: &ServeSummary,
    pulse: &mut Pulse,
    line: usize,
    w: &'w mut ObjWriter,
) -> &'w str {
    reset_rec(w, "stats", pulse.tenant.as_deref());
    w.num_field("v", STATS_SCHEMA_VERSION as f64)
        .num_field("line", line as f64);
    let lag = pulse.lag(session);
    stats_payload(w, session, summary, &mut pulse.last_stats, lag);
    w.close()
}

/// Emits a `stats` record if `line` falls on the `--stats-every` cadence.
fn maybe_stats(
    session: &Session<'_>,
    summary: &ServeSummary,
    pulse: &mut Pulse,
    line: usize,
    out: &mut impl Write,
    w: &mut ObjWriter,
) -> Result<(), CliError> {
    if pulse.stats_every.is_some_and(|n| line % n == 0) {
        let record = stats_record(session, summary, pulse, line, w);
        write_line(out, record)?;
    }
    Ok(())
}

/// Advances the session to virtual time `target`, emitting a heartbeat at
/// every multiple of the heartbeat interval crossed on the way. Keeps
/// heartbeat timestamps strictly monotone regardless of arrival pattern.
///
/// An *unstarted* session (no release has fired yet — possible when every
/// job so far was admitted for a future release) needs special care: its
/// clock has not begun, so no heartbeat may be emitted, and pausing it at
/// a boundary before its first event is a no-op that would loop forever.
/// The first stop is therefore pushed out to the session's first queued
/// event; if even that lies beyond `target`, nothing can happen yet.
fn advance_to(
    session: &mut Session<'_>,
    target: Time,
    pulse: &mut Pulse,
    out: &mut impl Write,
    summary: &mut ServeSummary,
    w: &mut ObjWriter,
    scratch: &mut String,
) -> Result<(), CliError> {
    loop {
        let mut stop = if pulse.next_beat < target.seconds() {
            Time::new(pulse.next_beat)
        } else {
            target
        };
        if !session.started() {
            if let Some(t0) = session.next_event_time() {
                if t0 > stop {
                    stop = t0.min(target);
                }
            }
        }
        let status = session
            .run_until(stop)
            .map_err(|e| pulse.engine_failure(format!("engine: {e}")))?;
        emit_completions(session, out, summary, w, scratch, pulse.tenant.as_deref())?;
        match status {
            // Blocked: only a later submission can unblock — hand control
            // back. Done: an idle session needs no heartbeats.
            SessionStatus::Blocked | SessionStatus::Done => return Ok(()),
            SessionStatus::Reached | SessionStatus::Advanced => {}
        }
        if !session.started() {
            // Reached without starting: the session's first event lies
            // beyond `target`, so time has not begun — no boundary was
            // crossed and nothing can fire before the next arrival.
            return Ok(());
        }
        // Paused at (or past) `stop`: beat if a heartbeat boundary was
        // crossed, then continue toward `target`. A session whose next
        // event lies beyond several boundaries pauses past them all at
        // once — snap the cadence past `now` so one post-advance payload
        // covers the crossing (repeating it per boundary would duplicate
        // timestamps and re-report state from before the advance).
        if pulse.next_beat <= session.now().seconds() {
            let record = heartbeat_record(session, summary, pulse, w);
            write_line(out, record)?;
            pulse.next_beat += pulse.beat;
            while pulse.next_beat <= session.now().seconds() {
                pulse.next_beat += pulse.beat;
            }
        }
        if session.now() >= target {
            return Ok(());
        }
    }
}

/// One serving loop: a session plus its cadence state, admission
/// counters, and reused line/record buffers, fed one input line at a
/// time. [`serve`] drives exactly one untagged lane; the sharded server
/// keeps a map of tagged lanes (one per tenant) and feeds each the lines
/// routed to it. A tagged lane's output is byte-identical to the same
/// traffic on a single-session serve, modulo the injected `"tenant"`
/// field (see [`reset_rec`]).
pub(crate) struct Lane<'a> {
    session: Session<'a>,
    pulse: Pulse,
    summary: ServeSummary,
    max_pending: Option<usize>,
    policy_name: &'static str,
    // Reused per-line storage: the parsed fields, the output record, and
    // a small formatting scratch. A steady stream of well-formed
    // submissions allocates nothing per line in this layer.
    fields: ObjBuf,
    w: ObjWriter,
    scratch: String,
}

impl<'a> Lane<'a> {
    /// Wraps a freshly built (unstepped) session. `tenant` tags every
    /// record when set. The caller is responsible for having validated
    /// `cfg` (see [`validate_config`]).
    fn new(
        session: Session<'a>,
        cfg: &ServeConfig,
        tenant: Option<String>,
        flight: Shared<FlightRecorder>,
    ) -> Self {
        let summary = ServeSummary {
            admitted: session.instance().num_jobs(),
            ..ServeSummary::default()
        };
        Lane {
            session,
            pulse: Pulse {
                beat: cfg.heartbeat,
                next_beat: cfg.heartbeat,
                stats_every: cfg.stats_every,
                last_beat: Deltas::default(),
                last_stats: Deltas::default(),
                wall_start: std::time::Instant::now(),
                speedup: cfg.speedup,
                flight,
                tenant,
            },
            summary,
            max_pending: cfg.max_pending,
            policy_name: cfg.policy.name(),
            fields: ObjBuf::new(),
            w: ObjWriter::typed("hello"),
            scratch: String::new(),
        }
    }

    /// Emits the `hello` record (the first line of the lane's stream).
    pub(crate) fn hello(&mut self, out: &mut impl Write) -> Result<(), CliError> {
        let spec = &self.session.instance().spec;
        let (edges, clouds) = (spec.num_edge(), spec.num_cloud());
        let preloaded = self.session.instance().num_jobs();
        let w = reset_rec(&mut self.w, "hello", self.pulse.tenant.as_deref());
        w.str_field("policy", self.policy_name)
            .num_field("edges", edges as f64)
            .num_field("clouds", clouds as f64)
            .num_field("preloaded", preloaded as f64)
            .num_field("heartbeat", self.pulse.beat);
        if let Some(n) = self.pulse.stats_every {
            w.num_field("stats_every", n as f64);
        }
        write_line(out, self.w.close())
    }

    /// The lane's admission totals so far (summary-record fields are only
    /// final after [`Lane::finish`]).
    pub(crate) fn summary(&self) -> &ServeSummary {
        &self.summary
    }

    /// Unfinished jobs currently in the lane's session.
    pub(crate) fn unfinished(&self) -> usize {
        self.session.snapshot().unfinished
    }

    /// Feeds one input line: parses it, advances the session to the
    /// arrival, applies admission control, and writes the response
    /// records. Protocol violations become `reject` records; only engine
    /// failures and output I/O errors are fatal.
    pub(crate) fn handle_line(&mut self, line: &str, out: &mut impl Write) -> Result<(), CliError> {
        if line.trim().is_empty() {
            return Ok(());
        }
        self.summary.lines += 1;
        let seq = self.summary.lines;

        // Parse the line once; both record kinds (platform mutation and
        // job submission) read the same field buffer. Malformed records
        // and refused mutations (unknown unit, removed twice, bad speed,
        // last edge) produce typed `reject` records — never a fatal
        // error.
        let parsed = parse_object_into(line.trim_end(), &mut self.fields);
        if parsed.is_ok() && is_platform_record(self.fields.fields()) {
            let outcome = parse_platform(self.fields.fields()).and_then(|m| {
                self.session
                    .apply_platform(m)
                    // A mutation the runtime refused: the offending field
                    // is the op itself; the code is the runtime's stable
                    // error class.
                    .map_err(|e| Reject::new(e.code(), "op", e.to_string()))
                    .map(|v| (m, v))
            });
            match outcome {
                Ok((m, version)) => {
                    let p = self.session.platform();
                    let (edges, clouds) = (p.num_edges_live(), p.num_clouds_live());
                    reset_rec(&mut self.w, "platform-ok", self.pulse.tenant.as_deref())
                        .num_field("line", seq as f64)
                        .str_field("op", m.op())
                        .num_field("version", version as f64)
                        .num_field("edges", edges as f64)
                        .num_field("clouds", clouds as f64);
                    write_line(out, self.w.close())?;
                }
                Err(why) => {
                    self.summary.rejected += 1;
                    let w = reset_rec(&mut self.w, "reject", self.pulse.tenant.as_deref());
                    w.num_field("line", seq as f64);
                    why.write_into(w);
                    write_line(out, self.w.close())?;
                }
            }
            maybe_stats(
                &self.session,
                &self.summary,
                &mut self.pulse,
                seq,
                out,
                &mut self.w,
            )?;
            return Ok(());
        }

        let req = match parsed
            .map_err(|why| Reject::bare("parse-error", why))
            .and_then(|()| parse_submit(self.fields.fields()))
        {
            Ok(req) => req,
            Err(why) => {
                self.summary.rejected += 1;
                let w = reset_rec(&mut self.w, "reject", self.pulse.tenant.as_deref());
                w.num_field("line", seq as f64);
                why.write_into(w);
                write_line(out, self.w.close())?;
                maybe_stats(
                    &self.session,
                    &self.summary,
                    &mut self.pulse,
                    seq,
                    out,
                    &mut self.w,
                )?;
                return Ok(());
            }
        };

        // Bring virtual time up to the arrival (file replay of a
        // historical trace), beating on the way.
        if let Some(release) = req.release {
            if let Some(speedup) = self.pulse.speedup {
                let due = std::time::Duration::from_secs_f64(release.max(0.0) / speedup);
                if let Some(sleep) = due.checked_sub(self.pulse.wall_start.elapsed()) {
                    std::thread::sleep(sleep);
                }
            }
            if Time::new(release) > self.session.now() {
                advance_to(
                    &mut self.session,
                    Time::new(release),
                    &mut self.pulse,
                    out,
                    &mut self.summary,
                    &mut self.w,
                    &mut self.scratch,
                )?;
            }
        }

        // Bounded admission: shed (with an explicit record) rather than
        // queueing without limit.
        let unfinished = self.session.snapshot().unfinished;
        if self.max_pending.is_some_and(|cap| unfinished >= cap) {
            self.summary.shed += 1;
            reset_rec(&mut self.w, "shed", self.pulse.tenant.as_deref())
                .num_field("line", seq as f64)
                .str_field("reason", "max-pending")
                .num_field("unfinished", unfinished as f64);
            write_line(out, self.w.close())?;
            maybe_stats(
                &self.session,
                &self.summary,
                &mut self.pulse,
                seq,
                out,
                &mut self.w,
            )?;
            return Ok(());
        }

        let release = req.release.unwrap_or_else(|| self.session.now().seconds());
        match self.session.submit(Job::new(
            EdgeId(req.origin),
            release.max(0.0),
            req.work,
            req.up,
            req.dn,
        )) {
            Ok(id) => {
                self.summary.admitted += 1;
                reset_rec(&mut self.w, "admit", self.pulse.tenant.as_deref())
                    .num_field("line", seq as f64)
                    .num_field("job", id.0 as f64)
                    .num_field("release", release);
                write_line(out, self.w.close())?;
            }
            Err(e) => {
                self.summary.rejected += 1;
                self.scratch.clear();
                {
                    use std::fmt::Write as _;
                    let _ = write!(self.scratch, "{e}");
                }
                // A submission the session refused (e.g. unknown or
                // removed origin): the offending field is the origin.
                reset_rec(&mut self.w, "reject", self.pulse.tenant.as_deref())
                    .num_field("line", seq as f64)
                    .str_field("error", &self.scratch)
                    .str_field("code", e.code())
                    .str_field("field", "origin");
                write_line(out, self.w.close())?;
            }
        }
        maybe_stats(
            &self.session,
            &self.summary,
            &mut self.pulse,
            seq,
            out,
            &mut self.w,
        )?;
        Ok(())
    }

    /// Input exhausted: runs the backlog dry (still beating
    /// periodically), then emits the final `summary` record and returns
    /// the totals.
    ///
    /// As in [`advance_to`], an unstarted session's first stop is pushed
    /// out to its first queued event — pausing before it would emit
    /// heartbeats stamped with a clock that has not begun (duplicated,
    /// possibly non-monotone timestamps).
    pub(crate) fn finish(&mut self, out: &mut impl Write) -> Result<ServeSummary, CliError> {
        loop {
            let mut bound = Time::new(self.pulse.next_beat);
            if !self.session.started() {
                if let Some(t0) = self.session.next_event_time() {
                    if t0 > bound {
                        bound = t0;
                    }
                }
            }
            let status = self
                .session
                .run_until(bound)
                .map_err(|e| self.pulse.engine_failure(format!("engine: {e}")))?;
            emit_completions(
                &mut self.session,
                out,
                &mut self.summary,
                &mut self.w,
                &mut self.scratch,
                self.pulse.tenant.as_deref(),
            )?;
            match status {
                SessionStatus::Done => break,
                SessionStatus::Blocked => {
                    return Err(self.pulse.engine_failure(format!(
                        "stalled at t={} with {} unfinished job(s): the policy \
                         granted no activity and no event is queued",
                        self.session.now(),
                        self.session.snapshot().unfinished
                    )));
                }
                SessionStatus::Reached => {
                    // See `advance_to`: a pause past the boundary (the next
                    // event is several beats out) gets one heartbeat with the
                    // post-advance payload, not a stale repeat per boundary.
                    // The bound always sits at or past a boundary once the
                    // session has started, so the guard only skips the
                    // (unreachable) unstarted pause.
                    if self.session.started()
                        && self.pulse.next_beat <= self.session.now().seconds()
                    {
                        let record = heartbeat_record(
                            &self.session,
                            &self.summary,
                            &mut self.pulse,
                            &mut self.w,
                        );
                        write_line(out, record)?;
                        self.pulse.next_beat += self.pulse.beat;
                        while self.pulse.next_beat <= self.session.now().seconds() {
                            self.pulse.next_beat += self.pulse.beat;
                        }
                    }
                }
                SessionStatus::Advanced => {}
            }
        }

        let snap = self.session.snapshot();
        self.summary.max_stretch = self.summary.max_stretch.max(snap.max_stretch);
        reset_rec(&mut self.w, "summary", self.pulse.tenant.as_deref())
            .num_field("now", snap.now.seconds())
            .num_field("lines", self.summary.lines as f64)
            .num_field("admitted", self.summary.admitted as f64)
            .num_field("shed", self.summary.shed as f64)
            .num_field("rejected", self.summary.rejected as f64)
            .num_field("completed", snap.completed as f64)
            .num_field("max_stretch", snap.max_stretch)
            .num_field("mean_stretch", snap.mean_stretch)
            .num_field("events", snap.run.events as f64);
        write_line(out, self.w.close())?;
        self.summary.completed = snap.completed;
        Ok(self.summary)
    }
}

/// Builds a self-contained tagged lane that owns its instance, policy,
/// and flight recorder: the sharded server's per-tenant session, safe to
/// store in a worker's lane map with no borrows back into the caller.
pub(crate) fn owned_lane(inst: Instance, cfg: &ServeConfig, tenant: String) -> Lane<'static> {
    let flight = Shared::new(FlightRecorder::with_capacity(FLIGHT_CAPACITY));
    let tandem = Tandem {
        flight: flight.handle(),
        other: None,
    };
    let session = Simulation::owning(inst)
        .policy_boxed(cfg.policy.build(cfg.seed))
        .options(cfg.engine)
        .observer_boxed(Box::new(tandem))
        .session();
    Lane::new(session, cfg, Some(tenant), flight)
}

/// Runs the serving loop: reads NDJSON submissions from `input`, steps a
/// [`Session`] between arrivals, and writes NDJSON records to `out`.
///
/// `inst` provides the platform (its jobs, if any, are pre-submitted as a
/// warm batch). Per-event observability flows through `observer` exactly
/// as in a batch run.
pub fn serve(
    inst: &Instance,
    cfg: &ServeConfig,
    input: impl BufRead,
    mut out: impl Write,
    observer: Option<&mut dyn Observer>,
) -> Result<ServeSummary, CliError> {
    validate_config(cfg)?;
    let flight = Shared::new(FlightRecorder::with_capacity(FLIGHT_CAPACITY));
    let tandem = Tandem {
        flight: flight.handle(),
        other: observer,
    };
    let session = Simulation::of(inst)
        .policy_boxed(cfg.policy.build(cfg.seed))
        .options(cfg.engine)
        .observer_boxed(Box::new(tandem))
        .session();
    let mut lane = Lane::new(session, cfg, None, flight);
    lane.hello(&mut out)?;

    let mut line = String::new();
    let mut input = input;
    loop {
        line.clear();
        let n = input
            .read_line(&mut line)
            .map_err(|e| CliError::Io(format!("input stream: {e}")))?;
        if n == 0 {
            break;
        }
        lane.handle_line(&line, &mut out)?;
    }
    lane.finish(&mut out)
}
