//! Minimal newline-delimited JSON support for `mmsec serve`.
//!
//! The serving protocol only ever exchanges *flat* JSON objects — string
//! or numeric fields, no nesting, no arrays — so this module hand-rolls
//! exactly that subset instead of pulling in a serialization framework:
//! [`parse_object`] reads one `{"k": v, ...}` line, [`ObjWriter`] builds
//! one. Unknown fields are preserved by the parser so callers can choose
//! to ignore or reject them.

use std::fmt::Write as _;

/// A scalar JSON value (the protocol never nests).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
}

impl Value {
    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex}"))?;
                            self.pos += 4;
                            // Surrogate pairs are outside the protocol's
                            // needs; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or(format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the raw byte run through.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && !matches!(self.bytes[end], b'"' | b'\\') {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
                {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number run");
                let x: f64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
                if !x.is_finite() {
                    return Err(format!("non-finite number {text:?}"));
                }
                Ok(Value::Num(x))
            }
            Some(b'{' | b'[') => Err("nested values are not supported".into()),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected {lit} at byte {}", self.pos))
        }
    }
}

/// Parses one flat JSON object (`{"key": scalar, ...}`). Duplicate keys
/// keep their last value, matching common JSON parser behavior.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    let mut fields: Vec<(String, Value)> = Vec::new();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            let val = p.value()?;
            if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = val;
            } else {
                fields.push((key, val));
            }
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(fields)
}

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds one flat JSON object incrementally.
#[derive(Debug)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    /// Starts an object with a `"type"` discriminator field — every
    /// record in the serving protocol leads with one.
    pub fn typed(kind: &str) -> Self {
        let mut w = ObjWriter {
            buf: String::from("{"),
            first: true,
        };
        w.str_field("type", kind);
        w
    }

    fn sep(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        let _ = write!(self.buf, "\"{}\":", escape(key));
    }

    /// Appends a numeric field. Non-finite values serialize as `null`
    /// (JSON has no NaN/inf).
    pub fn num_field(&mut self, key: &str, x: f64) -> &mut Self {
        self.sep(key);
        if x.is_finite() {
            // Shortest roundtrip form, integer-like values without ".0".
            if x == x.trunc() && x.abs() < 1e15 {
                let _ = write!(self.buf, "{}", x as i64);
            } else {
                let _ = write!(self.buf, "{x}");
            }
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a string field.
    pub fn str_field(&mut self, key: &str, s: &str) -> &mut Self {
        self.sep(key);
        let _ = write!(self.buf, "\"{}\"", escape(s));
        self
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_flat_object() {
        let got =
            parse_object(r#"{"origin": 2, "release": 1.5, "note": "a\"b", "ok": true}"#).unwrap();
        assert_eq!(got[0], ("origin".into(), Value::Num(2.0)));
        assert_eq!(got[1], ("release".into(), Value::Num(1.5)));
        assert_eq!(got[2], ("note".into(), Value::Str("a\"b".into())));
        assert_eq!(got[3], ("ok".into(), Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a": }"#).is_err());
        assert!(parse_object(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_object(r#"{"a": {"nested": 1}}"#).is_err());
        assert!(
            parse_object(r#"{"a": 1e999}"#).is_err(),
            "inf must be rejected"
        );
        assert!(parse_object("[1, 2]").is_err());
    }

    #[test]
    fn empty_object_is_fine() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object(" { } ").unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let got = parse_object(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(got, vec![("a".into(), Value::Num(2.0))]);
    }

    #[test]
    fn writer_roundtrips_through_the_parser() {
        let mut w = ObjWriter::typed("completion");
        w.num_field("job", 3.0)
            .num_field("stretch", 1.25)
            .str_field("target", "cloud:1")
            .str_field("weird", "a\"b\\c\nd");
        let line = w.finish();
        let got = parse_object(&line).unwrap();
        assert_eq!(got[0].1, Value::Str("completion".into()));
        assert_eq!(got[1].1, Value::Num(3.0));
        assert_eq!(got[2].1, Value::Num(1.25));
        assert_eq!(got[3].1, Value::Str("cloud:1".into()));
        assert_eq!(got[4].1, Value::Str("a\"b\\c\nd".into()));
    }

    #[test]
    fn integers_serialize_without_a_decimal_point() {
        let mut w = ObjWriter::typed("t");
        w.num_field("n", 42.0);
        assert_eq!(w.finish(), r#"{"type":"t","n":42}"#);
    }

    #[test]
    fn unicode_escapes_decode() {
        let got = parse_object(r#"{"s": "caf\u00e9"}"#).unwrap();
        assert_eq!(got[0].1, Value::Str("café".into()));
        // Raw multi-byte UTF-8 passes through untouched too.
        let got = parse_object(r#"{"s": "café"}"#).unwrap();
        assert_eq!(got[0].1, Value::Str("café".into()));
    }
}
