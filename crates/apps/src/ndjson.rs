//! Minimal newline-delimited JSON support for `mmsec serve`.
//!
//! The serving protocol only ever exchanges *flat* JSON objects — string
//! or numeric fields, no nesting, no arrays — so this module hand-rolls
//! exactly that subset instead of pulling in a serialization framework:
//! [`parse_object`] reads one `{"k": v, ...}` line, [`ObjWriter`] builds
//! one. Unknown fields are preserved by the parser so callers can choose
//! to ignore or reject them.

use std::fmt::Write as _;

/// A scalar JSON value (the protocol never nests).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
}

impl Value {
    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Reusable storage for [`parse_object_into`]: the pair vector *and* the
/// key/value strings of previous lines are recycled, so parsing a stream
/// of records with the same shape (e.g. the all-numeric `mmsec serve`
/// submission lines) allocates nothing after the first line.
#[derive(Debug, Default)]
pub struct ObjBuf {
    pairs: Vec<(String, Value)>,
    len: usize,
}

impl ObjBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        ObjBuf::default()
    }

    /// The fields of the most recently parsed object.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.pairs[..self.len]
    }

    /// Hands out the next recycled slot (or grows by one) and marks it
    /// live. The key string arrives cleared.
    fn next_slot(&mut self) -> &mut (String, Value) {
        if self.len == self.pairs.len() {
            self.pairs.push((String::new(), Value::Null));
        }
        let slot = &mut self.pairs[self.len];
        slot.0.clear();
        self.len += 1;
        slot
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Parses a JSON string into `out` (cleared first), reusing its
    /// capacity.
    fn string_into(&mut self, out: &mut String) -> Result<(), String> {
        self.expect(b'"')?;
        out.clear();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(()),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex}"))?;
                            self.pos += 4;
                            // Surrogate pairs are outside the protocol's
                            // needs; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or(format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the raw byte run through.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && !matches!(self.bytes[end], b'"' | b'\\') {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    /// Parses a JSON scalar into `slot`. A string value re-fills the
    /// slot's existing `Value::Str` in place when there is one, so a
    /// recycled slot of the same shape costs no allocation.
    fn value_into(&mut self, slot: &mut Value) -> Result<(), String> {
        match self.peek() {
            Some(b'"') => {
                if !matches!(slot, Value::Str(_)) {
                    *slot = Value::Str(String::new());
                }
                let Value::Str(s) = slot else { unreachable!() };
                self.string_into(s)
            }
            Some(b't') => self.literal("true", slot, Value::Bool(true)),
            Some(b'f') => self.literal("false", slot, Value::Bool(false)),
            Some(b'n') => self.literal("null", slot, Value::Null),
            Some(b'-' | b'0'..=b'9') => {
                let start = self.pos;
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
                {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number run");
                let x: f64 = text.parse().map_err(|_| format!("bad number {text:?}"))?;
                if !x.is_finite() {
                    return Err(format!("non-finite number {text:?}"));
                }
                *slot = Value::Num(x);
                Ok(())
            }
            Some(b'{' | b'[') => Err("nested values are not supported".into()),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, slot: &mut Value, v: Value) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            *slot = v;
            Ok(())
        } else {
            Err(format!("expected {lit} at byte {}", self.pos))
        }
    }
}

/// Parses one flat JSON object (`{"key": scalar, ...}`) into `buf`,
/// recycling its storage. Duplicate keys keep their last value, matching
/// common JSON parser behavior. On error the buffer reads as empty.
pub fn parse_object_into(line: &str, buf: &mut ObjBuf) -> Result<(), String> {
    let r = parse_into_inner(line, buf);
    if r.is_err() {
        buf.len = 0;
    }
    r
}

fn parse_into_inner(line: &str, buf: &mut ObjBuf) -> Result<(), String> {
    buf.len = 0;
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect(b'{')?;
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            // Read the key into the next recycled slot, then fold
            // duplicates back onto their first occurrence.
            let slot = buf.next_slot();
            p.string_into(&mut slot.0)?;
            p.expect(b':')?;
            let live = buf.len - 1;
            let dup = buf.pairs[..live]
                .iter()
                .position(|(k, _)| *k == buf.pairs[live].0);
            let target = match dup {
                Some(i) => {
                    buf.len = live;
                    i
                }
                None => live,
            };
            p.value_into(&mut buf.pairs[target].1)?;
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {
                    p.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", p.pos)),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(())
}

/// Parses one flat JSON object into a fresh vector. Convenience wrapper
/// over [`parse_object_into`] for one-shot callers and tests.
pub fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut buf = ObjBuf::new();
    parse_object_into(line, &mut buf)?;
    buf.pairs.truncate(buf.len);
    Ok(buf.pairs)
}

/// Escapes `s` as JSON string *contents* (no surrounding quotes),
/// appending to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Builds one flat JSON object incrementally.
#[derive(Debug)]
pub struct ObjWriter {
    buf: String,
    first: bool,
}

impl ObjWriter {
    /// Starts an object with a `"type"` discriminator field — every
    /// record in the serving protocol leads with one.
    pub fn typed(kind: &str) -> Self {
        let mut w = ObjWriter {
            buf: String::new(),
            first: true,
        };
        w.reset(kind);
        w
    }

    /// Restarts the writer on a fresh `"type"`-led object, reusing the
    /// buffer — a record-emitting loop pays no per-record allocation.
    pub fn reset(&mut self, kind: &str) -> &mut Self {
        self.buf.clear();
        self.buf.push('{');
        self.first = true;
        self.str_field("type", kind)
    }

    fn sep(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Appends a numeric field. Non-finite values serialize as `null`
    /// (JSON has no NaN/inf).
    pub fn num_field(&mut self, key: &str, x: f64) -> &mut Self {
        self.sep(key);
        if x.is_finite() {
            // Shortest roundtrip form, integer-like values without ".0".
            if x == x.trunc() && x.abs() < 1e15 {
                let _ = write!(self.buf, "{}", x as i64);
            } else {
                let _ = write!(self.buf, "{x}");
            }
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a string field.
    pub fn str_field(&mut self, key: &str, s: &str) -> &mut Self {
        self.sep(key);
        self.buf.push('"');
        escape_into(&mut self.buf, s);
        self.buf.push('"');
        self
    }

    /// Closes the object in place and returns the line (no trailing
    /// newline). The buffer stays owned by the writer: call
    /// [`ObjWriter::reset`] to start the next record with zero
    /// allocations. Calling `close` twice without a reset would emit a
    /// malformed record — the borrow it returns makes that hard to do by
    /// accident.
    pub fn close(&mut self) -> &str {
        self.buf.push('}');
        &self.buf
    }

    /// Closes the object and returns the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_flat_object() {
        let got =
            parse_object(r#"{"origin": 2, "release": 1.5, "note": "a\"b", "ok": true}"#).unwrap();
        assert_eq!(got[0], ("origin".into(), Value::Num(2.0)));
        assert_eq!(got[1], ("release".into(), Value::Num(1.5)));
        assert_eq!(got[2], ("note".into(), Value::Str("a\"b".into())));
        assert_eq!(got[3], ("ok".into(), Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a": }"#).is_err());
        assert!(parse_object(r#"{"a": 1} trailing"#).is_err());
        assert!(parse_object(r#"{"a": {"nested": 1}}"#).is_err());
        assert!(
            parse_object(r#"{"a": 1e999}"#).is_err(),
            "inf must be rejected"
        );
        assert!(parse_object("[1, 2]").is_err());
    }

    #[test]
    fn empty_object_is_fine() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object(" { } ").unwrap().is_empty());
    }

    #[test]
    fn duplicate_keys_keep_the_last_value() {
        let got = parse_object(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(got, vec![("a".into(), Value::Num(2.0))]);
    }

    #[test]
    fn writer_roundtrips_through_the_parser() {
        let mut w = ObjWriter::typed("completion");
        w.num_field("job", 3.0)
            .num_field("stretch", 1.25)
            .str_field("target", "cloud:1")
            .str_field("weird", "a\"b\\c\nd");
        let line = w.finish();
        let got = parse_object(&line).unwrap();
        assert_eq!(got[0].1, Value::Str("completion".into()));
        assert_eq!(got[1].1, Value::Num(3.0));
        assert_eq!(got[2].1, Value::Num(1.25));
        assert_eq!(got[3].1, Value::Str("cloud:1".into()));
        assert_eq!(got[4].1, Value::Str("a\"b\\c\nd".into()));
    }

    #[test]
    fn integers_serialize_without_a_decimal_point() {
        let mut w = ObjWriter::typed("t");
        w.num_field("n", 42.0);
        assert_eq!(w.finish(), r#"{"type":"t","n":42}"#);
    }

    #[test]
    fn unicode_escapes_decode() {
        let got = parse_object(r#"{"s": "caf\u00e9"}"#).unwrap();
        assert_eq!(got[0].1, Value::Str("café".into()));
        // Raw multi-byte UTF-8 passes through untouched too.
        let got = parse_object(r#"{"s": "café"}"#).unwrap();
        assert_eq!(got[0].1, Value::Str("café".into()));
    }
}
