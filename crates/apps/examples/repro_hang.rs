fn main() {
    let spec = mmsec_platform::PlatformSpec::builder()
        .edges(vec![0.5, 0.8])
        .cloud_pool(2)
        .build();
    let inst = mmsec_platform::Instance::new(spec, vec![]).unwrap();
    // Single job whose release (25s) exceeds the heartbeat interval (10s);
    // input then ends, so only the drain loop runs.
    let input = "{\"origin\": 0, \"release\": 25.0, \"work\": 1.0}\n";
    let mut out = Vec::new();
    mmsec_apps::serve::serve(
        &inst,
        &mmsec_apps::serve::ServeConfig::default(),
        std::io::Cursor::new(input.to_string()),
        &mut out,
        None,
    )
    .unwrap();
    println!("{}", String::from_utf8(out).unwrap());
}
