//! Integration tests for the `repro` experiment CLI.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn hardness_runs_and_reports_consistency() {
    let out = repro().args(["hardness", "--seed", "7"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("E7/hardness"));
    assert!(stdout.contains("all trials consistent: YES"), "{stdout}");
}

#[test]
fn adversarial_runs_quick_and_writes_csv() {
    let dir = std::env::temp_dir().join(format!("repro-cli-{}", std::process::id()));
    let out = repro()
        .args([
            "adversarial",
            "--scale",
            "quick",
            "--csv",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("X4/adversarial"));
    // The CSV landed.
    let csv = dir.join("X4_adversarial.csv");
    let content = std::fs::read_to_string(&csv).expect("csv written");
    assert!(content.starts_with("instance,"));
    assert!(content.lines().count() >= 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_arguments_exit_nonzero() {
    assert!(!repro().args(["frobnicate"]).status().unwrap().success());
    assert!(!repro().status().unwrap().success());
    assert!(!repro()
        .args(["fig2a", "--scale", "gigantic"])
        .status()
        .unwrap()
        .success());
}

#[test]
fn deterministic_across_invocations() {
    let run = || {
        let out = repro()
            .args(["adversarial", "--scale", "quick", "--seed", "5"])
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    assert_eq!(run(), run());
}
