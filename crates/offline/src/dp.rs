//! Pseudo-polynomial dynamic program for MMSH on **two** processors with
//! integer works — the constructive counterpart of Theorem 1.
//!
//! Theorem 1 establishes that MMSH-Dec with two processors is NP-complete
//! *in the weak sense*; weak NP-completeness promises a pseudo-polynomial
//! algorithm, and this module delivers it, closing the loop:
//!
//! By Lemma 2 each processor runs its share in SPT order, so process jobs
//! globally in non-decreasing work order and choose a processor for each.
//! When job `i` (work `w_i`) is placed on a processor currently loaded
//! `L`, its stretch is `(L + w_i)/w_i`, so a target stretch `S` is met iff
//! `L ≤ (S − 1)·w_i`. The reachable load set of processor A (B's load is
//! the prefix sum minus A's) is a subset of `{0, …, ΣW}` — a bitset DP of
//! size `O(n · ΣW)`.
//!
//! The optimal max-stretch is itself rational with denominator some `w_i`
//! (every stretch is `C/w_i` with `C ≤ ΣW` an integer), so the *exact*
//! optimum — no ε — is found by binary-searching the candidate set.

/// Decision: can `works` be scheduled on two processors with max-stretch
/// at most `s`? (Integer works; exact, pseudo-polynomial.)
pub fn mmsh2_feasible(works: &[u64], s: f64) -> bool {
    assert!(works.iter().all(|&w| w > 0), "works must be positive");
    if works.is_empty() {
        return true;
    }
    let mut sorted = works.to_vec();
    sorted.sort_unstable();
    let total: u64 = sorted.iter().sum();
    // reachable[l] = some assignment of the processed prefix puts load l
    // on processor A.
    let mut reachable = vec![false; total as usize + 1];
    reachable[0] = true;
    let mut prefix: u64 = 0;
    for &w in &sorted {
        // Max load a processor may carry *before* receiving this job.
        let cap = (s - 1.0) * w as f64;
        let cap = if cap < 0.0 {
            None
        } else {
            Some(cap.floor() as u64)
        };
        let mut next = vec![false; total as usize + 1];
        for l in 0..=prefix {
            if !reachable[l as usize] {
                continue;
            }
            let other = prefix - l;
            // Place on A (load l) if allowed.
            if let Some(cap) = cap {
                if l <= cap {
                    next[(l + w) as usize] = true;
                }
                // Place on B (load other) if allowed.
                if other <= cap {
                    next[l as usize] = true;
                }
            }
        }
        prefix += w;
        reachable = next;
        if !reachable.iter().any(|&r| r) {
            return false;
        }
    }
    true
}

/// Exact optimal max-stretch on two processors, as a reduced fraction
/// `(numerator, denominator)` — no ε anywhere. Pseudo-polynomial:
/// `O(n · ΣW)` per decision, `O(log(n·ΣW))` decisions.
pub fn mmsh2_optimal_exact(works: &[u64]) -> (u64, u64) {
    assert!(!works.is_empty(), "need at least one job");
    assert!(works.iter().all(|&w| w > 0), "works must be positive");
    let total: u64 = works.iter().sum();
    // Candidate stretches: C/w with C ∈ [w, ΣW], w a job work. Collect,
    // reduce, dedup, binary search the smallest feasible.
    let mut candidates: Vec<(u64, u64)> = Vec::new();
    let mut uniq_works = works.to_vec();
    uniq_works.sort_unstable();
    uniq_works.dedup();
    for &w in &uniq_works {
        for c in w..=total {
            let g = gcd(c, w);
            candidates.push((c / g, w / g));
        }
    }
    candidates.sort_by(|a, b| (a.0 * b.1).cmp(&(b.0 * a.1)));
    candidates.dedup();
    // Binary search over the sorted candidate list (feasibility is
    // monotone in the stretch).
    let mut lo = 0usize; // always... lo may be infeasible
    let mut hi = candidates.len() - 1; // ΣW/min(w) is always feasible
    debug_assert!(mmsh2_feasible(works, frac(candidates[hi])));
    if mmsh2_feasible(works, frac(candidates[0])) {
        return candidates[0];
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if mmsh2_feasible(works, frac(candidates[mid])) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    candidates[hi]
}

fn frac((n, d): (u64, u64)) -> f64 {
    // Nudge up by a hair so exact-boundary candidates test as feasible
    // despite float rounding in the decision's cap computation.
    n as f64 / d as f64 * (1.0 + 1e-12)
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::optimal_mmsh;
    use crate::mmsh::MmshInstance;
    use mmsec_sim::seed::SplitMix64;

    #[test]
    fn trivial_cases() {
        // One job: stretch 1.
        assert_eq!(mmsh2_optimal_exact(&[5]), (1, 1));
        // Two equal jobs, two processors: stretch 1.
        assert_eq!(mmsh2_optimal_exact(&[3, 3]), (1, 1));
        // Three equal jobs: one processor gets two → stretch 2.
        assert_eq!(mmsh2_optimal_exact(&[4, 4, 4]), (2, 1));
    }

    #[test]
    fn intro_example_on_two_processors() {
        // Jobs 1 and 10 on TWO processors: each alone → stretch 1.
        assert_eq!(mmsh2_optimal_exact(&[1, 10]), (1, 1));
        // {1, 1, 10}: pairing a unit job BEFORE the 10 is better than
        // pairing the two units: the 10 completes at 11 → stretch 11/10,
        // beating the 2 of {1,1} | {10}.
        assert_eq!(mmsh2_optimal_exact(&[1, 1, 10]), (11, 10));
    }

    #[test]
    fn feasibility_is_monotone() {
        let works = [3u64, 5, 7, 2, 9];
        let (n, d) = mmsh2_optimal_exact(&works);
        let opt = n as f64 / d as f64;
        assert!(mmsh2_feasible(&works, opt * 1.001));
        assert!(!mmsh2_feasible(&works, opt * 0.999));
    }

    /// The DP's exact optimum agrees with the branch-and-bound solver on
    /// random integer instances.
    #[test]
    fn agrees_with_branch_and_bound() {
        let mut rng = SplitMix64::new(2021);
        for _ in 0..20 {
            let n = 2 + (rng.next_u64() % 8) as usize;
            let works: Vec<u64> = (0..n).map(|_| 1 + rng.next_u64() % 12).collect();
            let (num, den) = mmsh2_optimal_exact(&works);
            let dp_opt = num as f64 / den as f64;
            let inst = MmshInstance::new(2, works.iter().map(|&w| w as f64).collect());
            let bb_opt = optimal_mmsh(&inst).max_stretch;
            assert!(
                (dp_opt - bb_opt).abs() < 1e-9,
                "works {works:?}: DP {num}/{den} = {dp_opt} vs B&B {bb_opt}"
            );
        }
    }

    /// Theorem 1 reductions decided by the DP match the subset-sum DP —
    /// the two independent decision procedures agree.
    #[test]
    fn decides_theorem1_reductions() {
        use crate::reductions::{has_two_partition_eq, two_partition_eq_to_mmsh};
        for a in [
            vec![1u64, 2, 3, 4],
            vec![2, 3, 4, 7],
            vec![1, 2, 3, 4, 5, 9],
        ] {
            let expected = has_two_partition_eq(&a);
            let (inst, threshold) = two_partition_eq_to_mmsh(&a);
            let works: Vec<u64> = inst.works.iter().map(|&w| w as u64).collect();
            assert!(
                works.iter().zip(&inst.works).all(|(&i, &f)| i as f64 == f),
                "reduction works are integral"
            );
            let achieved = mmsh2_feasible(&works, threshold * (1.0 + 1e-12));
            assert_eq!(expected, achieved, "instance {a:?}");
        }
    }

    #[test]
    fn exact_fraction_is_reduced() {
        // {1, 2}: both on separate processors → 1/1. {1,1,1}: 2/1.
        // A case with a genuine fraction: {2, 3} on one processor each →
        // 1... {2,2,3}: pair the 3 alone, 2+2 together: stretch (2+2)/2=2;
        // or 2 with 3: (2+3)/3 = 5/3 and other 2 alone → max 5/3 < 2.
        assert_eq!(mmsh2_optimal_exact(&[2, 2, 3]), (5, 3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_work() {
        let _ = mmsh2_feasible(&[0, 3], 2.0);
    }
}
