//! Exact MMSH solver by branch-and-bound over job partitions.
//!
//! By Lemma 2 an optimal MMSH schedule partitions the jobs over the
//! processors, each processor running its share in SPT order — so the
//! search space is the set of partitions into at most `p` parts. We branch
//! job by job (largest first) with two prunings:
//!
//! * **symmetry**: processors are identical, so a job may only open
//!   "the next fresh processor" (restricted-growth enumeration);
//! * **monotonicity**: adding a job to a processor never decreases that
//!   processor's SPT max-stretch, so the current partial stretch is a
//!   valid lower bound.
//!
//! Intended for oracle tests and the §IV reduction experiments (`n ≤ ~14`).

use crate::mmsh::{spt_max_stretch, MmshInstance};

/// Result of the exact search.
#[derive(Clone, Debug, PartialEq)]
pub struct MmshOptimum {
    /// The optimal max-stretch.
    pub max_stretch: f64,
    /// An optimal assignment `job → processor` (in the instance's job
    /// order).
    pub assign: Vec<usize>,
}

/// Exact optimum of an MMSH instance. Exponential in the number of jobs;
/// asserts `n ≤ 16` to keep misuse loud.
pub fn optimal_mmsh(inst: &MmshInstance) -> MmshOptimum {
    let n = inst.num_jobs();
    assert!(
        n <= 16,
        "exact MMSH solver is exponential; n = {n} too large"
    );
    if n == 0 {
        return MmshOptimum {
            max_stretch: 1.0,
            assign: Vec::new(),
        };
    }
    // Branch on jobs sorted by descending work (big decisions first).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        inst.works[b]
            .partial_cmp(&inst.works[a])
            .expect("finite works")
    });

    let mut search = Search {
        inst,
        order: &order,
        shares: vec![Vec::new(); inst.num_procs],
        proc_stretch: vec![1.0f64; inst.num_procs],
        assign: vec![usize::MAX; n],
        best: MmshOptimum {
            max_stretch: f64::INFINITY,
            assign: vec![0; n],
        },
    };
    // Seed the incumbent with round-robin over SPT-sorted jobs (decent).
    let mut seed_assign = vec![0usize; n];
    let mut by_work: Vec<usize> = (0..n).collect();
    by_work.sort_by(|&a, &b| inst.works[a].partial_cmp(&inst.works[b]).expect("finite"));
    for (rank, &job) in by_work.iter().enumerate() {
        seed_assign[job] = rank % inst.num_procs;
    }
    search.best = MmshOptimum {
        max_stretch: crate::mmsh::partition_max_stretch(inst, &seed_assign),
        assign: seed_assign,
    };
    search.recurse(0, 0, 1.0);
    search.best
}

struct Search<'a> {
    inst: &'a MmshInstance,
    order: &'a [usize],
    shares: Vec<Vec<f64>>,
    proc_stretch: Vec<f64>,
    assign: Vec<usize>,
    best: MmshOptimum,
}

impl Search<'_> {
    fn recurse(&mut self, depth: usize, used_procs: usize, current: f64) {
        if current >= self.best.max_stretch - 1e-12 {
            return; // monotone lower bound ≥ incumbent
        }
        if depth == self.order.len() {
            self.best = MmshOptimum {
                max_stretch: current,
                assign: self.assign.clone(),
            };
            return;
        }
        let job = self.order[depth];
        let w = self.inst.works[job];
        // Symmetry: only the used processors plus one fresh one.
        let options = (used_procs + 1).min(self.inst.num_procs);
        for p in 0..options {
            self.shares[p].push(w);
            let old_stretch = self.proc_stretch[p];
            let new_stretch = spt_max_stretch(&self.shares[p]);
            self.proc_stretch[p] = new_stretch;
            self.assign[job] = p;
            self.recurse(depth + 1, used_procs.max(p + 1), current.max(new_stretch));
            self.shares[p].pop();
            self.proc_stretch[p] = old_stretch;
            self.assign[job] = usize::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmsh::partition_max_stretch;

    #[test]
    fn single_processor_is_spt() {
        let inst = MmshInstance::new(1, vec![3.0, 1.0, 2.0]);
        let opt = optimal_mmsh(&inst);
        assert!((opt.max_stretch - spt_max_stretch(&inst.works)).abs() < 1e-12);
    }

    #[test]
    fn two_processors_balanced_split() {
        // Four jobs {1,1,2,2} on two processors: best is {1,2} per
        // processor → 1.5.
        let inst = MmshInstance::new(2, vec![1.0, 1.0, 2.0, 2.0]);
        let opt = optimal_mmsh(&inst);
        assert!((opt.max_stretch - 1.5).abs() < 1e-12);
        assert!(
            (partition_max_stretch(&inst, &opt.assign) - opt.max_stretch).abs() < 1e-12,
            "returned assignment achieves the reported optimum"
        );
    }

    #[test]
    fn enough_processors_gives_stretch_one() {
        let inst = MmshInstance::new(4, vec![5.0, 1.0, 3.0, 2.0]);
        let opt = optimal_mmsh(&inst);
        assert!((opt.max_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        // Cross-check branch-and-bound against raw enumeration.
        let inst = MmshInstance::new(3, vec![4.0, 2.5, 1.0, 3.0, 2.0, 1.5]);
        let opt = optimal_mmsh(&inst);
        let n = inst.num_jobs();
        let mut best = f64::INFINITY;
        for code in 0..(inst.num_procs as u32).pow(n as u32) {
            let mut c = code;
            let assign: Vec<usize> = (0..n)
                .map(|_| {
                    let p = (c % inst.num_procs as u32) as usize;
                    c /= inst.num_procs as u32;
                    p
                })
                .collect();
            best = best.min(partition_max_stretch(&inst, &assign));
        }
        assert!(
            (opt.max_stretch - best).abs() < 1e-9,
            "{} vs {}",
            opt.max_stretch,
            best
        );
    }

    #[test]
    fn equal_jobs_spread_evenly() {
        // 6 equal jobs, 3 processors → 2 each → stretch 2.
        let inst = MmshInstance::new(3, vec![1.0; 6]);
        let opt = optimal_mmsh(&inst);
        assert!((opt.max_stretch - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance() {
        let inst = MmshInstance::new(2, vec![]);
        assert_eq!(optimal_mmsh(&inst).max_stretch, 1.0);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn rejects_large_instances() {
        let inst = MmshInstance::new(2, vec![1.0; 17]);
        let _ = optimal_mmsh(&inst);
    }
}
