//! Offline optimal max-stretch on a single machine with release dates and
//! preemption (Bender, Muthukrishnan, Rajaraman \[3\], \[4\]).
//!
//! Preemptive EDF is feasibility-optimal on one machine, so the minimum
//! max-stretch is the smallest `S` for which the deadline set
//! `d_i = r_i + S · t_i^min` is EDF-schedulable. Feasibility is checked by
//! exact EDF simulation (releases included); the minimum is located by
//! binary search to relative precision ε — the same structure the paper
//! reuses online for Edge-Only (§V-A) and SSF-EDF (§V-D).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A job of the offline single-machine problem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OfflineJob {
    /// Release date.
    pub release: f64,
    /// Processing time on this machine.
    pub proc_time: f64,
    /// Stretch denominator (dedicated-platform time; equals `proc_time`
    /// in the pure single-machine problem, smaller when a cloud
    /// alternative exists).
    pub min_time: f64,
}

impl OfflineJob {
    /// A plain single-machine job (`min_time = proc_time`).
    pub fn plain(release: f64, proc_time: f64) -> Self {
        OfflineJob {
            release,
            proc_time,
            min_time: proc_time,
        }
    }
}

/// Exact preemptive-EDF feasibility of target stretch `s`.
pub fn edf_feasible(jobs: &[OfflineJob], s: f64) -> bool {
    // (release, deadline, remaining) sorted by release.
    let mut by_release: Vec<(f64, f64, f64)> = jobs
        .iter()
        .map(|j| (j.release, j.release + s * j.min_time, j.proc_time))
        .collect();
    by_release.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    // Min-heap on deadline of currently released, unfinished jobs.
    let mut ready: BinaryHeap<Reverse<(OrdF64, OrdF64)>> = BinaryHeap::new();
    let mut t = 0.0f64;
    let mut next = 0usize;
    let n = by_release.len();
    while next < n || !ready.is_empty() {
        if ready.is_empty() {
            t = t.max(by_release[next].0);
        }
        while next < n && by_release[next].0 <= t + 1e-12 {
            let (_, d, p) = by_release[next];
            ready.push(Reverse((OrdF64(d), OrdF64(p))));
            next += 1;
        }
        let Reverse((OrdF64(d), OrdF64(rem))) = ready.pop().expect("nonempty");
        // Run the earliest-deadline job until it finishes or the next
        // release arrives.
        let horizon = if next < n {
            by_release[next].0
        } else {
            f64::INFINITY
        };
        let finish = t + rem;
        if finish <= horizon + 1e-12 {
            t = finish;
            if t > d + 1e-9 * d.abs().max(1.0) {
                return false;
            }
        } else {
            let done = horizon - t;
            t = horizon;
            ready.push(Reverse((OrdF64(d), OrdF64(rem - done))));
        }
    }
    true
}

/// Minimum achievable max-stretch, to relative precision `eps_rel`.
pub fn optimal_max_stretch(jobs: &[OfflineJob], eps_rel: f64) -> f64 {
    assert!(eps_rel > 0.0);
    if jobs.is_empty() {
        return 1.0;
    }
    // Lower bound: every job needs at least proc_time after its release.
    let mut lo = jobs
        .iter()
        .map(|j| j.proc_time / j.min_time)
        .fold(1.0f64, f64::max);
    if edf_feasible(jobs, lo) {
        return lo;
    }
    let mut hi = lo * 2.0;
    let mut doubles = 0;
    while !edf_feasible(jobs, hi) {
        hi *= 2.0;
        doubles += 1;
        assert!(doubles < 128, "no feasible stretch (inconsistent input)");
    }
    while hi - lo > eps_rel * lo {
        let mid = 0.5 * (lo + hi);
        if edf_feasible(jobs, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Total-order wrapper for finite floats in the heap.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmsh::spt_max_stretch;

    #[test]
    fn no_release_dates_matches_spt() {
        // Without release dates the optimum equals SPT (Lemma 2).
        let works = [3.0, 1.0, 4.0, 1.5];
        let jobs: Vec<OfflineJob> = works.iter().map(|&w| OfflineJob::plain(0.0, w)).collect();
        let opt = optimal_max_stretch(&jobs, 1e-7);
        let spt = spt_max_stretch(&works);
        assert!((opt - spt).abs() < 1e-4, "opt {opt} vs spt {spt}");
    }

    #[test]
    fn disjoint_jobs_stretch_one() {
        let jobs = [
            OfflineJob::plain(0.0, 2.0),
            OfflineJob::plain(5.0, 2.0),
            OfflineJob::plain(10.0, 2.0),
        ];
        let opt = optimal_max_stretch(&jobs, 1e-7);
        assert!((opt - 1.0).abs() < 1e-6);
        assert!(edf_feasible(&jobs, 1.0));
    }

    #[test]
    fn overlapping_release_requires_stretch() {
        // Long job at 0, short job at 1: the offline optimum preempts the
        // long job: short completes at 2 (stretch 1), long at 11
        // (stretch 1.1). S = 1.1.
        let jobs = [OfflineJob::plain(0.0, 10.0), OfflineJob::plain(1.0, 1.0)];
        let opt = optimal_max_stretch(&jobs, 1e-7);
        assert!((opt - 1.1).abs() < 1e-4, "opt {opt}");
    }

    #[test]
    fn feasibility_is_monotone_in_stretch() {
        let jobs = [
            OfflineJob::plain(0.0, 4.0),
            OfflineJob::plain(1.0, 2.0),
            OfflineJob::plain(1.5, 1.0),
        ];
        let opt = optimal_max_stretch(&jobs, 1e-6);
        for ds in [0.0, 0.1, 0.5, 2.0] {
            assert!(edf_feasible(&jobs, opt + ds));
        }
        assert!(!edf_feasible(&jobs, opt * 0.95));
    }

    #[test]
    fn min_time_denominator_shifts_optimum() {
        // A job processed in 6 here but with dedicated time 4 elsewhere:
        // even alone its stretch is 1.5.
        let jobs = [OfflineJob {
            release: 0.0,
            proc_time: 6.0,
            min_time: 4.0,
        }];
        let opt = optimal_max_stretch(&jobs, 1e-7);
        assert!((opt - 1.5).abs() < 1e-6);
    }

    #[test]
    fn idle_gap_then_burst() {
        // Burst of equal jobs after an idle period.
        let jobs = [
            OfflineJob::plain(10.0, 1.0),
            OfflineJob::plain(10.0, 1.0),
            OfflineJob::plain(10.0, 1.0),
        ];
        let opt = optimal_max_stretch(&jobs, 1e-6);
        assert!((opt - 3.0).abs() < 1e-3, "opt {opt}");
    }

    #[test]
    fn empty_input() {
        assert_eq!(optimal_max_stretch(&[], 1e-3), 1.0);
        assert!(edf_feasible(&[], 1.0));
    }
}
