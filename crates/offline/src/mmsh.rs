//! MMSH — *max-stretch minimization on homogeneous processors without
//! release dates* (paper §IV-B), the problem whose NP-completeness the
//! paper establishes to derive the hardness of MMSECO.
//!
//! Key structural fact (Lemma 2): on a single processor there is an
//! optimal schedule that runs jobs from shortest to longest (SPT) without
//! preemption. A schedule is therefore characterized by the partition of
//! jobs onto processors, each processor running its share in SPT order.

/// An MMSH instance: `p` identical unit-speed processors and job works.
/// All jobs are released at time 0; there are no communications.
#[derive(Clone, Debug, PartialEq)]
pub struct MmshInstance {
    /// Number of identical processors.
    pub num_procs: usize,
    /// Work of each job (execution time at unit speed).
    pub works: Vec<f64>,
}

impl MmshInstance {
    /// Creates an instance, checking basic sanity.
    pub fn new(num_procs: usize, works: Vec<f64>) -> Self {
        assert!(num_procs >= 1, "need at least one processor");
        assert!(
            works.iter().all(|&w| w > 0.0 && w.is_finite()),
            "works must be positive"
        );
        MmshInstance { num_procs, works }
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.works.len()
    }
}

/// Max-stretch of running `works` on ONE processor in SPT order — optimal
/// by Lemma 2. With all releases at 0 and unit speed, the stretch of the
/// job at sorted position `i` is `(Σ_{j ≤ i} w_j) / w_i`.
pub fn spt_max_stretch(works: &[f64]) -> f64 {
    let mut sorted = works.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut prefix = 0.0;
    let mut worst: f64 = 0.0;
    for w in sorted {
        prefix += w;
        worst = worst.max(prefix / w);
    }
    worst.max(1.0)
}

/// Max-stretch of a schedule running `works` on one processor in the
/// *given* order without preemption (reference for Lemma 2 tests).
pub fn sequence_max_stretch(works_in_order: &[f64]) -> f64 {
    let mut prefix = 0.0;
    let mut worst: f64 = 0.0;
    for &w in works_in_order {
        prefix += w;
        worst = worst.max(prefix / w);
    }
    worst.max(1.0)
}

/// Max-stretch of a full assignment `assign[i] = processor of job i`
/// (each processor runs its share in SPT order).
pub fn partition_max_stretch(inst: &MmshInstance, assign: &[usize]) -> f64 {
    assert_eq!(assign.len(), inst.num_jobs(), "assignment arity");
    let mut shares: Vec<Vec<f64>> = vec![Vec::new(); inst.num_procs];
    for (i, &p) in assign.iter().enumerate() {
        assert!(p < inst.num_procs, "processor index out of range");
        shares[p].push(inst.works[i]);
    }
    shares
        .iter()
        .map(|s| spt_max_stretch(s))
        .fold(1.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intro_example() {
        // Jobs 1 and 10 on one processor: SPT gives 1.1.
        assert!((spt_max_stretch(&[10.0, 1.0]) - 1.1).abs() < 1e-12);
        // Reverse order gives 11.
        assert!((sequence_max_stretch(&[10.0, 1.0]) - 11.0).abs() < 1e-12);
        assert!((sequence_max_stretch(&[1.0, 10.0]) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(spt_max_stretch(&[]), 1.0);
        assert_eq!(spt_max_stretch(&[5.0]), 1.0);
        assert_eq!(sequence_max_stretch(&[]), 1.0);
    }

    /// Lemma 2: SPT is optimal over all orders on one processor.
    #[test]
    fn lemma2_spt_beats_all_permutations() {
        // All permutations of a 6-job set.
        let works = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6];
        let spt = spt_max_stretch(&works);
        let mut perm: Vec<usize> = (0..works.len()).collect();
        // Heap's algorithm, iterative.
        let mut c = vec![0usize; works.len()];
        let check = |perm: &[usize]| {
            let seq: Vec<f64> = perm.iter().map(|&i| works[i]).collect();
            assert!(sequence_max_stretch(&seq) >= spt - 1e-12);
        };
        check(&perm);
        let mut i = 0;
        while i < works.len() {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                check(&perm);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn equal_jobs_stretch_is_count() {
        // k equal jobs on one processor: the last has stretch k.
        assert!((spt_max_stretch(&[2.0; 5]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn partition_stretch() {
        let inst = MmshInstance::new(2, vec![1.0, 1.0, 2.0, 2.0]);
        // Balanced: {1,2} on each: stretches max(1, 3/2) = 1.5.
        let s = partition_max_stretch(&inst, &[0, 1, 0, 1]);
        assert!((s - 1.5).abs() < 1e-12);
        // All on one processor: SPT completions 1,2,4,6 → stretch 3 (at
        // the second unit job: 2/1 = 2; fourth job 6/2 = 3).
        let s = partition_max_stretch(&inst, &[0, 0, 0, 0]);
        assert!((s - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "works must be positive")]
    fn rejects_nonpositive_work() {
        let _ = MmshInstance::new(1, vec![0.0]);
    }
}
