//! Exact (not ε-approximate) offline optimum on one machine *without
//! release dates*, via critical stretch values.
//!
//! With all jobs released at time 0 the deadline set
//! `d_i(S) = r + S·m_i` is EDF-feasible iff, for jobs sorted by deadline,
//! every prefix satisfies `Σ_{j ≤ i} p_j ≤ S·m_i` — a family of linear
//! constraints in `S` whose *order* depends on `S` only through the sort
//! of the `m_i`. Sorting by `m_i` (ties by `p_i`) is deadline order for
//! every `S > 0`, so the optimum has the closed form
//!
//! `S* = max_i (Σ_{j ≤ i} p_j) / m_i`,
//!
//! which equals the SPT bound when `m_i = p_i`. This module provides that
//! closed form and uses it to cross-validate the ε-binary-search of
//! [`crate::single_machine`] (and, transitively, the online stretch-so-far
//! machinery built on it).

/// A job of the no-release-date single-machine problem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StaticJob {
    /// Processing time on this machine.
    pub proc_time: f64,
    /// Stretch denominator (dedicated-platform time).
    pub min_time: f64,
}

impl StaticJob {
    /// A plain job (`min_time = proc_time`).
    pub fn plain(proc_time: f64) -> Self {
        StaticJob {
            proc_time,
            min_time: proc_time,
        }
    }
}

/// Exact optimal max-stretch for jobs all released at time 0 on one
/// machine (closed form; `O(n log n)`).
pub fn exact_optimal_stretch(jobs: &[StaticJob]) -> f64 {
    if jobs.is_empty() {
        return 1.0;
    }
    assert!(
        jobs.iter().all(|j| j.proc_time > 0.0 && j.min_time > 0.0),
        "times must be positive"
    );
    let mut sorted = jobs.to_vec();
    // Deadline order for every S > 0: by min_time; among equal min_time
    // the constraint is on the same deadline, so order among them is
    // irrelevant to the max — use proc_time for determinism.
    sorted.sort_by(|a, b| {
        (a.min_time, a.proc_time)
            .partial_cmp(&(b.min_time, b.proc_time))
            .expect("finite")
    });
    let mut prefix = 0.0;
    let mut best: f64 = 1.0;
    for j in &sorted {
        prefix += j.proc_time;
        best = best.max(prefix / j.min_time);
    }
    best
}

/// The job order achieving the exact optimum (non-decreasing `min_time`).
pub fn exact_optimal_order(jobs: &[StaticJob]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..jobs.len()).collect();
    idx.sort_by(|&a, &b| {
        (jobs[a].min_time, jobs[a].proc_time)
            .partial_cmp(&(jobs[b].min_time, jobs[b].proc_time))
            .expect("finite")
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmsh::spt_max_stretch;
    use crate::single_machine::{optimal_max_stretch, OfflineJob};
    use mmsec_sim::seed::SplitMix64;

    #[test]
    fn matches_spt_for_plain_jobs() {
        let works = [3.0, 1.0, 4.0, 1.5, 9.0];
        let jobs: Vec<StaticJob> = works.iter().map(|&w| StaticJob::plain(w)).collect();
        assert!((exact_optimal_stretch(&jobs) - spt_max_stretch(&works)).abs() < 1e-12);
    }

    #[test]
    fn intro_example_closed_form() {
        let jobs = [StaticJob::plain(1.0), StaticJob::plain(10.0)];
        assert!((exact_optimal_stretch(&jobs) - 1.1).abs() < 1e-12);
        assert_eq!(exact_optimal_order(&jobs), vec![0, 1]);
    }

    #[test]
    fn min_time_differs_from_processing() {
        // A 6-second local job whose dedicated time is 4 (cloud exists):
        // alone its stretch is 1.5; order by min_time, not proc_time.
        let jobs = [
            StaticJob {
                proc_time: 6.0,
                min_time: 4.0,
            },
            StaticJob::plain(1.0),
        ];
        // Order: min_time 1 before 4; constraints: 1/1 = 1, (1+6)/4 = 1.75.
        assert!((exact_optimal_stretch(&jobs) - 1.75).abs() < 1e-12);
        assert_eq!(exact_optimal_order(&jobs), vec![1, 0]);
    }

    /// The ε-binary-search must agree with the closed form on random
    /// inputs (this transitively validates the EDF feasibility test).
    #[test]
    fn binary_search_agrees_with_closed_form() {
        let mut rng = SplitMix64::new(123);
        for _ in 0..50 {
            let n = 1 + (rng.next_u64() % 8) as usize;
            let jobs: Vec<StaticJob> = (0..n)
                .map(|_| {
                    let p = 0.5 + 9.5 * rng.next_f64();
                    // min_time ≤ proc_time (a faster alternative may exist).
                    let m = p * (0.3 + 0.7 * rng.next_f64());
                    StaticJob {
                        proc_time: p,
                        min_time: m,
                    }
                })
                .collect();
            let exact = exact_optimal_stretch(&jobs);
            let offline: Vec<OfflineJob> = jobs
                .iter()
                .map(|j| OfflineJob {
                    release: 0.0,
                    proc_time: j.proc_time,
                    min_time: j.min_time,
                })
                .collect();
            let approx = optimal_max_stretch(&offline, 1e-9);
            assert!(
                (exact - approx).abs() < 1e-5 * exact,
                "exact {exact} vs binary search {approx} on {jobs:?}"
            );
        }
    }

    /// The achieved stretch of the optimal order equals the optimum.
    #[test]
    fn order_achieves_optimum() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..20 {
            let n = 2 + (rng.next_u64() % 6) as usize;
            let jobs: Vec<StaticJob> = (0..n)
                .map(|_| StaticJob::plain(0.5 + 9.5 * rng.next_f64()))
                .collect();
            let order = exact_optimal_order(&jobs);
            let mut t = 0.0;
            let mut worst: f64 = 1.0;
            for &i in &order {
                t += jobs[i].proc_time;
                worst = worst.max(t / jobs[i].min_time);
            }
            assert!((worst - exact_optimal_stretch(&jobs)).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(exact_optimal_stretch(&[]), 1.0);
        assert_eq!(exact_optimal_stretch(&[StaticJob::plain(5.0)]), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        let _ = exact_optimal_stretch(&[StaticJob::plain(0.0)]);
    }
}
