//! The NP-hardness reduction constructions of paper §IV, executable.
//!
//! * Theorem 1: 2-PARTITION-EQ → MMSH with two processors (weak
//!   NP-hardness). Given `2n` integers summing to `2S`, build `2n + 2`
//!   jobs (`w_i = nS + a_i` plus two jobs of `(n+1)S`); a partition with
//!   equal cardinality and equal sums exists iff max-stretch
//!   `(n² + n + 2)/(n + 1)` is achievable.
//! * Theorem 2: 3-PARTITION → MMSH with `n` processors (strong
//!   NP-hardness). Given `3n` integers summing to `nB` with
//!   `B/4 < a_i < B/2`, add `n` jobs of `B/2`; a 3-partition exists iff
//!   max-stretch 3 is achievable.
//! * Theorem 3: MMSH → MMSECO. One edge unit at speed 1, `p − 1` cloud
//!   processors, zero communications: the edge-cloud platform degenerates
//!   to `p` homogeneous machines.
//!
//! Small decision procedures (subset-sum DP, backtracking) let the tests
//! check both directions of each reduction numerically.

use crate::mmsh::MmshInstance;
use mmsec_platform::{EdgeId, Instance, Job, PlatformSpec};

/// Theorem 1 construction. `a.len()` must be even and `Σa = 2S` even;
/// additionally every `a_i < S` is required so that the two padding jobs
/// `(n+1)S` are strictly the largest — the property the proof's
/// no-direction relies on. (Instances with some `a_i ≥ S` are trivially
/// "no" and excluded without loss of generality.) Returns the MMSH
/// instance and the decision threshold on the max-stretch.
pub fn two_partition_eq_to_mmsh(a: &[u64]) -> (MmshInstance, f64) {
    assert!(!a.is_empty() && a.len() % 2 == 0, "need 2n integers");
    let sum: u64 = a.iter().sum();
    assert!(sum % 2 == 0, "2-PARTITION needs an even total");
    let n = a.len() / 2;
    let s = sum / 2;
    assert!(
        a.iter().all(|&ai| ai < s),
        "reduction requires a_i < S (larger elements are trivially 'no')"
    );
    let mut works: Vec<f64> = a.iter().map(|&ai| (n as u64 * s + ai) as f64).collect();
    works.push(((n as u64 + 1) * s) as f64);
    works.push(((n as u64 + 1) * s) as f64);
    let threshold = ((n * n + n + 2) as f64) / ((n + 1) as f64);
    (MmshInstance::new(2, works), threshold)
}

/// Decision procedure for 2-PARTITION-EQ: is there a subset of cardinality
/// `n` summing to half the total? (DP over count × sum; pseudo-polynomial.)
pub fn has_two_partition_eq(a: &[u64]) -> bool {
    if a.is_empty() || a.len() % 2 != 0 {
        return false;
    }
    let total: u64 = a.iter().sum();
    if total % 2 != 0 {
        return false;
    }
    let half = (total / 2) as usize;
    let n = a.len() / 2;
    // reachable[c][s]: some subset of cardinality c sums to s.
    let mut reachable = vec![vec![false; half + 1]; n + 1];
    reachable[0][0] = true;
    for &ai in a {
        let ai = ai as usize;
        if ai > half {
            continue; // cannot belong to a half-sum subset
        }
        for c in (0..n).rev() {
            for s in (0..=half - ai).rev() {
                if reachable[c][s] {
                    reachable[c + 1][s + ai] = true;
                }
            }
        }
    }
    reachable[n][half]
}

/// Theorem 2 construction. `a.len() = 3n`, `Σa = nB`, `B/4 < a_i < B/2`;
/// returns the MMSH instance (with `n` processors and `4n` jobs) and the
/// threshold 3.
pub fn three_partition_to_mmsh(a: &[u64], b: u64) -> (MmshInstance, f64) {
    assert!(!a.is_empty() && a.len() % 3 == 0, "need 3n integers");
    let n = a.len() / 3;
    let sum: u64 = a.iter().sum();
    assert_eq!(sum, n as u64 * b, "Σa must equal nB");
    assert!(
        a.iter().all(|&ai| 4 * ai > b && 4 * ai < 2 * b),
        "need B/4 < a_i < B/2"
    );
    let mut works: Vec<f64> = a.iter().map(|&ai| ai as f64).collect();
    works.extend(std::iter::repeat(b as f64 / 2.0).take(n));
    (MmshInstance::new(n, works), 3.0)
}

/// Decision procedure for 3-PARTITION by backtracking (exponential; for
/// the small instances of the test suite).
pub fn has_three_partition(a: &[u64], b: u64) -> bool {
    if a.is_empty() || a.len() % 3 != 0 {
        return false;
    }
    let n = a.len() / 3;
    if a.iter().sum::<u64>() != n as u64 * b {
        return false;
    }
    let mut items: Vec<u64> = a.to_vec();
    items.sort_unstable_by(|x, y| y.cmp(x));
    let mut bins = vec![(0u64, 0usize); n]; // (sum, count)
    fn place(items: &[u64], idx: usize, bins: &mut [(u64, usize)], b: u64) -> bool {
        if idx == items.len() {
            return bins.iter().all(|&(s, c)| s == b && c == 3);
        }
        let item = items[idx];
        for i in 0..bins.len() {
            let (s, c) = bins[i];
            if c < 3 && s + item <= b {
                bins[i] = (s + item, c + 1);
                if place(items, idx + 1, bins, b) {
                    return true;
                }
                bins[i] = (s, c);
            }
            // Symmetry: never try more than one empty bin.
            if s == 0 && c == 0 {
                break;
            }
        }
        false
    }
    place(&items, 0, &mut bins, b)
}

/// Theorem 3 construction: embeds an MMSH instance into MMSECO — one edge
/// unit at speed 1 plus `p − 1` cloud processors, all communications zero,
/// all releases zero.
pub fn mmsh_to_mmseco(inst: &MmshInstance) -> Instance {
    assert!(inst.num_procs >= 1);
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(inst.num_procs - 1)
        .build();
    let jobs = inst
        .works
        .iter()
        .map(|&w| Job::new(EdgeId(0), 0.0, w, 0.0, 0.0))
        .collect();
    Instance::new(spec, jobs).expect("reduction produces a valid instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::optimal_mmsh;

    #[test]
    fn two_partition_yes_instance() {
        // {1,2,3,4}: n = 2, S = 5; {1,4} / {2,3} is an equal-cardinality
        // partition. Threshold (4+2+2)/3 = 8/3.
        let a = [1u64, 2, 3, 4];
        assert!(has_two_partition_eq(&a));
        let (inst, threshold) = two_partition_eq_to_mmsh(&a);
        assert_eq!(inst.num_jobs(), 6);
        assert_eq!(inst.num_procs, 2);
        assert!((threshold - 8.0 / 3.0).abs() < 1e-12);
        let opt = optimal_mmsh(&inst);
        assert!(
            opt.max_stretch <= threshold + 1e-9,
            "yes-instance must meet the threshold: {} vs {threshold}",
            opt.max_stretch
        );
    }

    #[test]
    fn two_partition_no_instance() {
        // {2,3,4,7}: total 16, half S = 8, all a_i < 8, but no 2-element
        // subset sums to 8 (2+3, 2+4, 2+7, 3+4, 3+7, 4+7 ≠ 8).
        let a = [2u64, 3, 4, 7];
        assert!(!has_two_partition_eq(&a));
        let (inst, threshold) = two_partition_eq_to_mmsh(&a);
        let opt = optimal_mmsh(&inst);
        assert!(
            opt.max_stretch > threshold + 1e-9,
            "no-instance must exceed the threshold: {} vs {threshold}",
            opt.max_stretch
        );
    }

    #[test]
    fn two_partition_eq_dp_edge_cases() {
        assert!(!has_two_partition_eq(&[])); // empty
        assert!(!has_two_partition_eq(&[1, 2])); // odd total
        assert!(has_two_partition_eq(&[2, 2])); // trivial yes
        assert!(!has_two_partition_eq(&[1, 2, 3])); // odd length
                                                    // Equal sums exist but not with equal cardinality: {3,3,1,1,1,3}
                                                    // total 12, half 6: {3,3} has cardinality 2 ≠ 3, but {3,1,1,1} has
                                                    // cardinality 4 ≠ 3... and {3,3} ∪ ... checking: subsets of size 3
                                                    // summing to 6: {3,1,1}? 3+1+1=5 no; {3,3,...}: 3+3+1=7 no. → false.
        assert!(!has_two_partition_eq(&[3, 3, 1, 1, 1, 3]));
    }

    #[test]
    fn three_partition_yes_instance() {
        // n = 2, B = 20, bounds (5, 10): {6,7,7} and {6,6,8}.
        let a = [6u64, 7, 7, 6, 6, 8];
        assert!(has_three_partition(&a, 20));
        let (inst, threshold) = three_partition_to_mmsh(&a, 20);
        assert_eq!(inst.num_procs, 2);
        assert_eq!(inst.num_jobs(), 8);
        assert_eq!(threshold, 3.0);
        let opt = optimal_mmsh(&inst);
        assert!(
            opt.max_stretch <= threshold + 1e-9,
            "yes-instance: {} vs 3",
            opt.max_stretch
        );
    }

    #[test]
    fn three_partition_no_instance() {
        // n = 2, B = 12 with constraint B/4 = 3 < a_i < 6 = B/2:
        // {4,4,4,5,5,2}? 2 violates the bound. Use {5,5,5,4,4,1}? 1
        // violates. Valid bounded no-instance: {5,5,5,5,4,...}: need sum
        // 24: {5,5,5,5,4,?} → ? = -... Try {4,4,5,5,5,?}: ? = 1 invalid.
        // {4,4,4,4,4,4}: sums 24, each in (3,6); triples sum 12 = B →
        // actually a YES instance. A bounded NO needs careful numbers:
        // {5,5,5,4,4,?}: ? = 1 out of bounds. Mathematically, with n = 2
        // any bounded instance summing to 2B has a solution iff some
        // triple sums to B; {5,5,4,4,4,2}: 2 out of bounds...
        // Use B = 20, bounds (5,10): {9,9,9,7,?,?}: need sum 40 →
        // remaining 6: out of bounds... {9,9,7,7,?,?} → 8: {9,9,7,7,8,?}
        // → 0. Try {9,9,9,6,?,?}: 7: {9,9,9,6,7,?} → 0... Use
        // {6,6,6,9,6,7} sum 40: triples: 6+6+9=21≠20, 6+6+7=19, 6+9+7=22,
        // 6+6+6=18 → NO, and all in (5,10).
        let a = [6u64, 6, 6, 9, 6, 7];
        assert_eq!(a.iter().sum::<u64>(), 40);
        assert!(!has_three_partition(&a, 20));
        let (inst, threshold) = three_partition_to_mmsh(&a, 20);
        let opt = optimal_mmsh(&inst);
        assert!(
            opt.max_stretch > threshold + 1e-9,
            "no-instance: {} vs 3",
            opt.max_stretch
        );
    }

    #[test]
    fn mmseco_embedding_is_homogeneous() {
        let mmsh = MmshInstance::new(3, vec![2.0, 1.0, 4.0]);
        let inst = mmsh_to_mmseco(&mmsh);
        assert_eq!(inst.spec.num_edge(), 1);
        assert_eq!(inst.spec.num_cloud(), 2);
        assert_eq!(inst.spec.edge_speed(EdgeId(0)), 1.0);
        for (_, job) in inst.iter_jobs() {
            assert_eq!(job.up, 0.0);
            assert_eq!(job.dn, 0.0);
            assert_eq!(job.release.seconds(), 0.0);
            // min_time equals the work: edge and cloud are equivalent.
            assert_eq!(job.min_time(&inst.spec), job.work);
        }
    }

    #[test]
    #[should_panic(expected = "even total")]
    fn two_partition_rejects_odd_total() {
        let _ = two_partition_eq_to_mmsh(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "B/4 < a_i < B/2")]
    fn three_partition_rejects_out_of_bounds() {
        let _ = three_partition_to_mmsh(&[1, 5, 6, 4, 4, 4], 12);
    }
}
