//! Exhaustive oracle for tiny MMSECO instances.
//!
//! Enumerates every allocation (edge or a cloud processor per job) and
//! every placement order, timing each candidate with the contention
//! profile (each job's phases run back-to-back as early as possible given
//! the jobs placed before it, respecting release dates and the one-port
//! model). The result is the optimum over *order-based non-preemptive*
//! schedules:
//!
//! * for instances without communications and with equal release dates
//!   (the MMSH embeddings of Theorem 3) this **is** the true optimum, by
//!   Lemma 2;
//! * in general it upper-bounds the preemptive optimum — still a useful
//!   oracle: any heuristic beating it is doing genuinely clever preemption,
//!   and any heuristic far above it on tiny instances is suspect.
//!
//! Cost is `O((P^c + 1)^n · n!)`; the constructor refuses `n > 8`.

use mmsec_platform::projection::Projection;
use mmsec_platform::{CloudId, Instance, JobId, JobState, Target};
use mmsec_sim::Time;

/// Result of the exhaustive search.
#[derive(Clone, Debug)]
pub struct ExhaustiveOptimum {
    /// Best max-stretch found.
    pub max_stretch: f64,
    /// Allocation achieving it.
    pub alloc: Vec<Target>,
    /// Placement order achieving it.
    pub order: Vec<JobId>,
    /// Completion times under that schedule.
    pub completions: Vec<Time>,
}

/// Exhaustive optimum over order-based non-preemptive schedules.
pub fn optimal_order_based(inst: &Instance) -> ExhaustiveOptimum {
    let n = inst.num_jobs();
    assert!(n > 0, "empty instance");
    assert!(n <= 8, "exhaustive search is factorial; n = {n} too large");
    let spec = &inst.spec;
    let n_targets = 1 + spec.num_cloud();

    let fresh: Vec<JobState> = (0..n)
        .map(|_| JobState {
            released: true,
            ..JobState::default()
        })
        .collect();

    let mut best: Option<ExhaustiveOptimum> = None;
    let mut alloc_code = vec![0usize; n];
    loop {
        let alloc: Vec<Target> = alloc_code
            .iter()
            .map(|&c| {
                if c == 0 {
                    Target::Edge
                } else {
                    Target::Cloud(CloudId(c - 1))
                }
            })
            .collect();

        // Permutations via Heap's algorithm over the placement order.
        let mut perm: Vec<usize> = (0..n).collect();
        let mut c = vec![0usize; n];
        evaluate(inst, &fresh, &alloc, &perm, &mut best);
        let mut i = 0;
        while i < n {
            if c[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(c[i], i);
                }
                evaluate(inst, &fresh, &alloc, &perm, &mut best);
                c[i] += 1;
                i = 0;
            } else {
                c[i] = 0;
                i += 1;
            }
        }

        // Next allocation code (mixed-radix increment).
        let mut pos = 0;
        loop {
            if pos == n {
                return best.expect("at least one candidate evaluated");
            }
            alloc_code[pos] += 1;
            if alloc_code[pos] < n_targets {
                break;
            }
            alloc_code[pos] = 0;
            pos += 1;
        }
    }
}

fn evaluate(
    inst: &Instance,
    fresh: &[JobState],
    alloc: &[Target],
    perm: &[usize],
    best: &mut Option<ExhaustiveOptimum>,
) {
    let spec = &inst.spec;
    let mut proj = Projection::new(spec, Time::ZERO);
    let mut completions = vec![Time::ZERO; inst.num_jobs()];
    let mut worst = 1.0f64;
    for &ji in perm {
        let id = JobId(ji);
        let job = inst.job(id);
        // Placement may not start before the release date.
        let c = proj.place(job, &fresh[ji], alloc[ji], spec, job.release);
        completions[ji] = c;
        let stretch = (c - job.release).seconds() / job.min_time(spec);
        worst = worst.max(stretch);
        if let Some(b) = best {
            if worst >= b.max_stretch {
                return; // prune: cannot improve
            }
        }
    }
    let candidate = ExhaustiveOptimum {
        max_stretch: worst,
        alloc: alloc.to_vec(),
        order: perm.iter().map(|&i| JobId(i)).collect(),
        completions,
    };
    let better = best
        .as_ref()
        .map_or(true, |b| candidate.max_stretch < b.max_stretch);
    if better {
        *best = Some(candidate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::optimal_mmsh;
    use crate::mmsh::MmshInstance;
    use crate::reductions::mmsh_to_mmseco;
    use mmsec_platform::{EdgeId, Job, PlatformSpec};

    #[test]
    fn single_job_picks_best_resource() {
        let spec = PlatformSpec::builder()
            .edges(vec![0.25])
            .cloud_pool(1)
            .build();
        // Edge 8; cloud 1+2+1 = 4.
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0)]).unwrap();
        let opt = optimal_order_based(&inst);
        assert!((opt.max_stretch - 1.0).abs() < 1e-12);
        assert!(matches!(opt.alloc[0], Target::Cloud(_)));
    }

    #[test]
    fn matches_mmsh_brute_force_via_theorem3() {
        // On Theorem-3 embeddings the order-based optimum equals the true
        // MMSH optimum (Lemma 2: no preemption needed).
        let mmsh = MmshInstance::new(2, vec![3.0, 1.0, 2.0, 2.5, 1.5]);
        let eco = mmsh_to_mmseco(&mmsh);
        let a = optimal_mmsh(&mmsh);
        let b = optimal_order_based(&eco);
        assert!(
            (a.max_stretch - b.max_stretch).abs() < 1e-9,
            "MMSH brute {} vs exhaustive MMSECO {}",
            a.max_stretch,
            b.max_stretch
        );
    }

    #[test]
    fn release_dates_respected() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
            Job::new(EdgeId(0), 10.0, 2.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let opt = optimal_order_based(&inst);
        assert!((opt.max_stretch - 1.0).abs() < 1e-12);
        assert!(opt.completions[1] >= Time::new(12.0) - Time::new(1e-9));
    }

    #[test]
    fn one_port_contention_is_modeled() {
        // Two cloud-only-attractive jobs from one edge, one cloud: uplinks
        // serialize, so stretches cannot both be 1.
        let spec = PlatformSpec::builder()
            .edges(vec![0.01])
            .cloud_pool(1)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let opt = optimal_order_based(&inst);
        assert!(opt.max_stretch > 1.0 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn refuses_big_instances() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = (0..9)
            .map(|_| Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0))
            .collect();
        let inst = Instance::new(spec, jobs).unwrap();
        let _ = optimal_order_based(&inst);
    }
}
