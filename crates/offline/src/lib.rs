//! `mmsec-offline` — the offline-complexity artifacts of paper §IV, made
//! executable:
//!
//! * [`mmsh`] — the MMSH problem (homogeneous processors, no release
//!   dates) and the SPT structure of Lemma 2;
//! * [`brute`] — exact MMSH optimum by symmetry-pruned branch-and-bound;
//! * [`reductions`] — the Theorem 1/2/3 constructions
//!   (2-PARTITION-EQ → MMSH, 3-PARTITION → MMSH, MMSH → MMSECO) together
//!   with small decision procedures so both directions can be checked
//!   numerically;
//! * [`single_machine`] — the offline optimal max-stretch on one machine
//!   (binary search over preemptive-EDF feasibility, Bender et al.);
//! * [`critical`] — the closed-form exact optimum without release dates,
//!   used to cross-validate the ε-binary-search;
//! * [`dp`] — the pseudo-polynomial DP for two processors with integer
//!   works (the constructive counterpart of Theorem 1's *weak*
//!   NP-completeness), with an exact rational optimum;
//! * [`exhaustive`] — an exhaustive oracle for tiny MMSECO instances.

#![warn(missing_docs)]

pub mod brute;
pub mod critical;
pub mod dp;
pub mod exhaustive;
pub mod mmsh;
pub mod reductions;
pub mod single_machine;

pub use brute::{optimal_mmsh, MmshOptimum};
pub use critical::{exact_optimal_stretch, StaticJob};
pub use exhaustive::{optimal_order_based, ExhaustiveOptimum};
pub use mmsh::{partition_max_stretch, spt_max_stretch, MmshInstance};
pub use single_machine::{optimal_max_stretch, OfflineJob};
