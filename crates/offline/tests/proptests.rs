//! Property tests for the offline solvers: optimality claims hold against
//! randomized alternatives.

use mmsec_offline::brute::optimal_mmsh;
use mmsec_offline::critical::{exact_optimal_stretch, StaticJob};
use mmsec_offline::mmsh::{
    partition_max_stretch, sequence_max_stretch, spt_max_stretch, MmshInstance,
};
use mmsec_offline::single_machine::{edf_feasible, optimal_max_stretch, OfflineJob};
use proptest::prelude::*;

fn works_strategy(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.5f64..20.0, 1..=max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 2, property form: SPT is no worse than any random order.
    #[test]
    fn spt_dominates_random_orders(
        works in works_strategy(10),
        seed in any::<u64>(),
    ) {
        let spt = spt_max_stretch(&works);
        // A seeded random permutation.
        let mut order: Vec<usize> = (0..works.len()).collect();
        let mut sm = mmsec_sim::seed::SplitMix64::new(seed);
        for i in (1..order.len()).rev() {
            let j = (sm.next_u64() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let seq: Vec<f64> = order.iter().map(|&i| works[i]).collect();
        prop_assert!(sequence_max_stretch(&seq) >= spt - 1e-9);
    }

    /// The exact MMSH optimum is no worse than any random partition, and
    /// some partition achieves it.
    #[test]
    fn brute_force_dominates_random_partitions(
        works in works_strategy(9),
        procs in 1usize..4,
        seed in any::<u64>(),
    ) {
        let inst = MmshInstance::new(procs, works.clone());
        let opt = optimal_mmsh(&inst);
        prop_assert!(
            (partition_max_stretch(&inst, &opt.assign) - opt.max_stretch).abs() < 1e-9
        );
        let mut sm = mmsec_sim::seed::SplitMix64::new(seed);
        for _ in 0..5 {
            let assign: Vec<usize> = works
                .iter()
                .map(|_| (sm.next_u64() % procs as u64) as usize)
                .collect();
            prop_assert!(
                partition_max_stretch(&inst, &assign) >= opt.max_stretch - 1e-9
            );
        }
    }

    /// Single-machine binary search: the reported optimum is feasible and
    /// 2% below it is not (unless the optimum is the forced lower bound).
    #[test]
    fn single_machine_optimum_is_tight(
        raw in prop::collection::vec((0.0f64..30.0, 0.5f64..10.0), 1..8),
    ) {
        let jobs: Vec<OfflineJob> = raw
            .iter()
            .map(|&(r, p)| OfflineJob::plain(r, p))
            .collect();
        let opt = optimal_max_stretch(&jobs, 1e-7);
        prop_assert!(edf_feasible(&jobs, opt * (1.0 + 1e-5)));
        let forced = jobs
            .iter()
            .map(|j| j.proc_time / j.min_time)
            .fold(1.0f64, f64::max);
        if opt > forced * 1.03 {
            prop_assert!(!edf_feasible(&jobs, opt * 0.98), "opt {opt} not tight");
        }
    }

    /// Closed form (no releases) agrees with the general binary search.
    #[test]
    fn closed_form_matches_search(
        raw in prop::collection::vec((0.5f64..10.0, 0.3f64..1.0), 1..9),
    ) {
        let static_jobs: Vec<StaticJob> = raw
            .iter()
            .map(|&(p, frac)| StaticJob { proc_time: p, min_time: p * frac })
            .collect();
        let exact = exact_optimal_stretch(&static_jobs);
        let offline: Vec<OfflineJob> = static_jobs
            .iter()
            .map(|j| OfflineJob { release: 0.0, proc_time: j.proc_time, min_time: j.min_time })
            .collect();
        let search = optimal_max_stretch(&offline, 1e-9);
        prop_assert!((exact - search).abs() < 1e-4 * exact, "{exact} vs {search}");
    }

    /// Adding a processor never increases the MMSH optimum.
    #[test]
    fn more_processors_never_hurt(works in works_strategy(8)) {
        let one = optimal_mmsh(&MmshInstance::new(1, works.clone())).max_stretch;
        let two = optimal_mmsh(&MmshInstance::new(2, works.clone())).max_stretch;
        let three = optimal_mmsh(&MmshInstance::new(3, works)).max_stretch;
        prop_assert!(two <= one + 1e-9);
        prop_assert!(three <= two + 1e-9);
    }
}
