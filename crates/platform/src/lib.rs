//! `mmsec-platform` — the edge-cloud platform model, event-driven
//! simulation engine, schedule validity checker, and metrics for
//! *Max-Stretch Minimization on an Edge-Cloud Platform* (Benoit, Elghazi,
//! Robert — IPDPS 2021).
//!
//! # Model (paper §III)
//!
//! A two-level platform couples `P^e` edge computing units (speeds
//! `s_j ≤ 1`) with `P^c` cloud processors (speed 1). Each job originates at
//! an edge unit and either runs locally or is delegated to a cloud
//! processor, paying preemptible uplink/downlink communications under the
//! one-port full-duplex model. The objective is to minimize the maximum
//! stretch `S_i = (C_i − r_i) / min(t^e_i, t^c_i)`.
//!
//! # Quick tour
//!
//! * [`instance::Instance`] — platform + jobs;
//! * [`engine::Simulation`] — run an [`engine::OnlineScheduler`] policy
//!   (batch), or open a resumable [`engine::Session`] for streaming;
//! * [`validate::validate`] — check every §III-B constraint;
//! * [`metrics::StretchReport`] — the objective function;
//! * [`projection::Projection`] — completion-time forecasts for policies.

#![warn(missing_docs)]

pub mod activity;
pub mod engine;
pub mod export;
pub mod instance;
pub mod job;
pub mod metrics;
pub mod projection;
pub mod render;
pub mod resource;
pub mod schedule;
pub mod spec;
pub mod state;
pub mod stats;
pub mod svg;
pub mod tier;
pub mod validate;
pub mod view;

pub use activity::{Directive, DirectiveBuffer, Phase, Target};
pub use engine::{
    CompletionRecord, DecisionCadence, EngineError, EngineOptions, EventRecord, OnlineScheduler,
    RunOutcome, RunStats, Session, SessionStats, SessionStatus, Simulation,
};
// Observability surface (see `mmsec-obs` and `docs/observability.md`).
pub use instance::{figure1_instance, Instance, InstanceBuilder, InstanceError};
pub use job::{Job, JobId};
pub use metrics::{max_stretch, StretchReport};
// Fault-injection surface (see `mmsec-faults` and `docs/faults.md`).
pub use mmsec_faults as faults;
pub use mmsec_faults::{FaultConfig, FaultPlan, LinkFaultModel, LinkWindow, UnitFaultModel};
pub use mmsec_obs as obs;
pub use mmsec_obs::{Observer, ObserverHandle};
pub use render::{gantt, GanttOptions};
pub use schedule::Schedule;
pub use spec::{CloudId, EdgeId, PlatformSpec, SpecBuilder};
pub use state::{JobArena, JobState, PlatformError, PlatformMutation, PlatformState};
pub use stats::{schedule_stats, ScheduleStats};
pub use tier::{TierClass, TierTopology};
pub use validate::{validate, validate_with, ValidateOptions, Violation};
pub use view::{Availability, PendingSet, SimView};
