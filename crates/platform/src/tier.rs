//! Multi-tier continuum topology: edge → fog → … → cloud.
//!
//! The paper's platform is *flat*: every cloud processor sits directly
//! behind the origin edge unit's link, and a job's `up_i` / `dn_i` volumes
//! *are* its communication times. [`TierTopology`] generalizes this to a
//! typed tier chain (ROADMAP item 3, after the continuum-scheduling
//! literature): tier 0 is the edge; remote units live at tiers
//! `1..=depth`; hop `t` connects tier `t` to tier `t+1` with a pair of
//! per-hop link-time factors (upload, download). A transfer to a unit at
//! tier `T` is composed along the route, so its duration is the job's
//! communication volume times the **path factor**
//! `Σ_{t<T} hop(t)` — store-and-forward over the chain.
//!
//! Flat is the exact special case `depth = 1` with unit hop factors: the
//! path factor is then `1.0` and every price below multiplies by it
//! bitwise-neutrally (`x * 1.0 ≡ x` for every finite IEEE-754 `x`), which
//! the `flat ≡ tiered(depth=1)` equivalence proptest pins end to end.
//!
//! The topology caches, per cloud unit, the up/down path factors and
//! their reciprocals (the engine's communication *rates*: a comm phase
//! progresses through its volume at `1/path` volume-units per second),
//! plus the distinct `(speed, path_up, path_dn)` **pricing classes** over
//! live units that [`crate::job::Job::best_cloud_time`] folds over — the
//! tiered analogue of the flat model's cached `max_cloud_speed`.

use crate::spec::{CloudId, SpecError};

/// One distinct remote pricing class: all live cloud units sharing a
/// speed and an up/down path factor price a job identically, so the
/// stretch denominator folds over classes instead of units.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierClass {
    /// Compute speed of the class's units.
    pub speed: f64,
    /// Uplink path factor (edge → unit tier).
    pub path_up: f64,
    /// Downlink path factor (unit tier → edge).
    pub path_dn: f64,
}

/// A typed tier chain with per-hop link-time factors and a tier
/// assignment for every cloud unit. See the [module docs](self).
#[derive(Clone, Debug, PartialEq)]
pub struct TierTopology {
    /// Per-hop upload factors; `hop_up[t]` connects tier `t` to `t+1`.
    hop_up: Vec<f64>,
    /// Per-hop download factors, same indexing.
    hop_dn: Vec<f64>,
    /// Tier of each cloud unit, in `1..=depth`.
    tier_of: Vec<usize>,
    /// Cached per-unit uplink path factor `Σ_{t<tier} hop_up[t]`.
    path_up: Vec<f64>,
    /// Cached per-unit downlink path factor.
    path_dn: Vec<f64>,
    /// Cached reciprocal `1 / path_up` (engine comm rate).
    rate_up: Vec<f64>,
    /// Cached reciprocal `1 / path_dn`.
    rate_dn: Vec<f64>,
    /// Distinct `(speed, path_up, path_dn)` over *live* units, in
    /// first-seen unit order. Rebuilt by the platform runtime whenever
    /// membership, speeds, or hops change.
    classes: Vec<TierClass>,
}

impl TierTopology {
    /// Builds a topology from per-hop `(up, dn)` factor pairs and a tier
    /// assignment for every cloud unit (tier `t ∈ 1..=depth`, where
    /// `depth = hops.len()`). Pricing classes are built with every unit
    /// live. Fails on non-finite/non-positive hop factors, an empty hop
    /// chain, or an out-of-range tier.
    pub fn new(hops: &[(f64, f64)], tier_of: Vec<usize>) -> Result<Self, SpecError> {
        if hops.is_empty() {
            return Err(SpecError::BadHop {
                hop: 0,
                value: f64::NAN,
            });
        }
        for (t, &(u, d)) in hops.iter().enumerate() {
            for v in [u, d] {
                if !(v > 0.0 && v.is_finite()) {
                    return Err(SpecError::BadHop { hop: t, value: v });
                }
            }
        }
        let depth = hops.len();
        for (k, &t) in tier_of.iter().enumerate() {
            if t == 0 || t > depth {
                return Err(SpecError::TierOutOfRange {
                    cloud: k,
                    tier: t,
                    depth,
                });
            }
        }
        let n = tier_of.len();
        let mut topo = TierTopology {
            hop_up: hops.iter().map(|&(u, _)| u).collect(),
            hop_dn: hops.iter().map(|&(_, d)| d).collect(),
            tier_of,
            path_up: vec![0.0; n],
            path_dn: vec![0.0; n],
            rate_up: vec![0.0; n],
            rate_dn: vec![0.0; n],
            classes: Vec::new(),
        };
        topo.recompute_paths();
        Ok(topo)
    }

    /// Number of hops (= number of remote tiers).
    pub fn depth(&self) -> usize {
        self.hop_up.len()
    }

    /// The `(up, dn)` link-time factors of hop `t` (connecting tier `t`
    /// to tier `t+1`).
    pub fn hop(&self, t: usize) -> (f64, f64) {
        (self.hop_up[t], self.hop_dn[t])
    }

    /// Tier of cloud unit `k`, in `1..=depth`.
    pub fn tier_of(&self, k: CloudId) -> usize {
        self.tier_of[k.0]
    }

    /// Uplink path factor of cloud unit `k` (sum of up-hop factors along
    /// the route from the edge tier).
    #[inline]
    pub fn path_up(&self, k: CloudId) -> f64 {
        self.path_up[k.0]
    }

    /// Downlink path factor of cloud unit `k`.
    #[inline]
    pub fn path_dn(&self, k: CloudId) -> f64 {
        self.path_dn[k.0]
    }

    /// Uplink progress rate (`1 / path_up`) — volume units per second of
    /// a transfer toward unit `k`.
    #[inline]
    pub fn rate_up(&self, k: CloudId) -> f64 {
        self.rate_up[k.0]
    }

    /// Downlink progress rate (`1 / path_dn`).
    #[inline]
    pub fn rate_dn(&self, k: CloudId) -> f64 {
        self.rate_dn[k.0]
    }

    /// The distinct live pricing classes (empty when no unit is live).
    pub fn classes(&self) -> &[TierClass] {
        &self.classes
    }

    /// Number of cloud units covered by the tier assignment.
    pub fn num_units(&self) -> usize {
        self.tier_of.len()
    }

    /// Checks internal consistency against a platform with `num_cloud`
    /// cloud units.
    pub fn validate(&self, num_cloud: usize) -> Result<(), SpecError> {
        if self.tier_of.len() != num_cloud {
            return Err(SpecError::TierOutOfRange {
                cloud: self.tier_of.len(),
                tier: 0,
                depth: self.depth(),
            });
        }
        for (t, (&u, &d)) in self.hop_up.iter().zip(&self.hop_dn).enumerate() {
            for v in [u, d] {
                if !(v > 0.0 && v.is_finite()) {
                    return Err(SpecError::BadHop { hop: t, value: v });
                }
            }
        }
        for (k, &t) in self.tier_of.iter().enumerate() {
            if t == 0 || t > self.depth() {
                return Err(SpecError::TierOutOfRange {
                    cloud: k,
                    tier: t,
                    depth: self.depth(),
                });
            }
        }
        Ok(())
    }

    /// Overwrites hop `t`'s factors and refreshes every cached path and
    /// rate. The caller validates the factors and rebuilds the pricing
    /// classes afterwards.
    pub(crate) fn set_hop(&mut self, t: usize, up: f64, dn: f64) {
        self.hop_up[t] = up;
        self.hop_dn[t] = dn;
        self.recompute_paths();
    }

    /// Attaches a newly joined cloud unit to the deepest tier (the
    /// conventional "cloud" end of the chain) and caches its paths.
    pub(crate) fn push_cloud_deepest(&mut self) {
        self.push_cloud_at(self.depth());
    }

    /// Attaches a newly joined cloud unit at `tier` and caches its paths.
    /// The caller validates `tier ∈ 1..=depth`.
    pub(crate) fn push_cloud_at(&mut self, tier: usize) {
        self.tier_of.push(tier);
        let (pu, pd) = self.paths_for(tier);
        self.path_up.push(pu);
        self.path_dn.push(pd);
        self.rate_up.push(1.0 / pu);
        self.rate_dn.push(1.0 / pd);
    }

    /// Rebuilds the live pricing classes from the platform's current
    /// cloud speeds and liveness. Classes are keyed by exact bit
    /// patterns, in first-seen unit order (deterministic).
    pub(crate) fn rebuild_classes(&mut self, cloud_speeds: &[f64], live: &[bool]) {
        self.classes.clear();
        for (k, &s) in cloud_speeds.iter().enumerate() {
            if !live.get(k).copied().unwrap_or(true) {
                continue;
            }
            let (pu, pd) = (self.path_up[k], self.path_dn[k]);
            let dup = self.classes.iter().any(|c| {
                c.speed.to_bits() == s.to_bits()
                    && c.path_up.to_bits() == pu.to_bits()
                    && c.path_dn.to_bits() == pd.to_bits()
            });
            if !dup {
                self.classes.push(TierClass {
                    speed: s,
                    path_up: pu,
                    path_dn: pd,
                });
            }
        }
    }

    /// Path factors for a unit at `tier`: the running sum of hop factors
    /// from the edge (tier 0) up to (excluding) `tier`.
    fn paths_for(&self, tier: usize) -> (f64, f64) {
        let pu = self.hop_up[..tier].iter().sum::<f64>();
        let pd = self.hop_dn[..tier].iter().sum::<f64>();
        (pu, pd)
    }

    fn recompute_paths(&mut self) {
        for k in 0..self.tier_of.len() {
            let (pu, pd) = self.paths_for(self.tier_of[k]);
            self.path_up[k] = pu;
            self.path_dn[k] = pd;
            self.rate_up[k] = 1.0 / pu;
            self.rate_dn[k] = 1.0 / pd;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth1_unit_hops_are_neutral() {
        let t = TierTopology::new(&[(1.0, 1.0)], vec![1, 1]).unwrap();
        assert_eq!(t.depth(), 1);
        for k in [CloudId(0), CloudId(1)] {
            assert_eq!(t.path_up(k).to_bits(), 1.0f64.to_bits());
            assert_eq!(t.path_dn(k).to_bits(), 1.0f64.to_bits());
            assert_eq!(t.rate_up(k).to_bits(), 1.0f64.to_bits());
            assert_eq!(t.rate_dn(k).to_bits(), 1.0f64.to_bits());
        }
    }

    #[test]
    fn paths_compose_along_the_route() {
        // Two hops: edge→fog (0.5 up, 0.25 dn), fog→cloud (2.0 up, 1.0 dn).
        let t = TierTopology::new(&[(0.5, 0.25), (2.0, 1.0)], vec![1, 2]).unwrap();
        assert_eq!(t.path_up(CloudId(0)), 0.5);
        assert_eq!(t.path_dn(CloudId(0)), 0.25);
        assert_eq!(t.path_up(CloudId(1)), 2.5);
        assert_eq!(t.path_dn(CloudId(1)), 1.25);
        assert_eq!(t.rate_up(CloudId(1)), 1.0 / 2.5);
        assert_eq!(t.tier_of(CloudId(1)), 2);
    }

    #[test]
    fn set_hop_refreshes_paths() {
        let mut t = TierTopology::new(&[(1.0, 1.0), (1.0, 1.0)], vec![1, 2]).unwrap();
        t.set_hop(1, 3.0, 0.5);
        assert_eq!(t.hop(1), (3.0, 0.5));
        assert_eq!(t.path_up(CloudId(0)), 1.0); // tier-1 unit untouched
        assert_eq!(t.path_up(CloudId(1)), 4.0);
        assert_eq!(t.path_dn(CloudId(1)), 1.5);
    }

    #[test]
    fn classes_group_by_speed_and_paths() {
        let mut t = TierTopology::new(&[(0.5, 0.5), (1.0, 1.0)], vec![1, 1, 2]).unwrap();
        t.rebuild_classes(&[1.0, 1.0, 1.0], &[true, true, true]);
        // Units 0 and 1 share (1.0, 0.5, 0.5); unit 2 is (1.0, 1.5, 1.5).
        assert_eq!(t.classes().len(), 2);
        assert_eq!(t.classes()[0].path_up, 0.5);
        assert_eq!(t.classes()[1].path_up, 1.5);
        // Tombstoning the deep unit drops its class.
        t.rebuild_classes(&[1.0, 1.0, 1.0], &[true, true, false]);
        assert_eq!(t.classes().len(), 1);
        // All dead → no classes (best_cloud_time folds to infinity).
        t.rebuild_classes(&[1.0, 1.0, 1.0], &[false, false, false]);
        assert!(t.classes().is_empty());
    }

    #[test]
    fn new_cloud_joins_deepest_tier() {
        let mut t = TierTopology::new(&[(1.0, 1.0), (2.0, 2.0)], vec![1]).unwrap();
        t.push_cloud_deepest();
        assert_eq!(t.num_units(), 2);
        assert_eq!(t.tier_of(CloudId(1)), 2);
        assert_eq!(t.path_up(CloudId(1)), 3.0);
    }

    #[test]
    fn rejects_bad_hops_and_tiers() {
        assert!(matches!(
            TierTopology::new(&[], vec![]),
            Err(SpecError::BadHop { .. })
        ));
        assert!(matches!(
            TierTopology::new(&[(0.0, 1.0)], vec![1]),
            Err(SpecError::BadHop { hop: 0, .. })
        ));
        assert!(matches!(
            TierTopology::new(&[(1.0, f64::INFINITY)], vec![1]),
            Err(SpecError::BadHop { hop: 0, .. })
        ));
        assert!(matches!(
            TierTopology::new(&[(1.0, 1.0)], vec![2]),
            Err(SpecError::TierOutOfRange {
                cloud: 0,
                tier: 2,
                ..
            })
        ));
        assert!(matches!(
            TierTopology::new(&[(1.0, 1.0)], vec![0]),
            Err(SpecError::TierOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_checks_unit_count() {
        let t = TierTopology::new(&[(1.0, 1.0)], vec![1, 1]).unwrap();
        assert!(t.validate(2).is_ok());
        assert!(t.validate(3).is_err());
    }
}
