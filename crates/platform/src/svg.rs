//! Self-contained SVG rendering of schedules: one lane per resource,
//! color-coded per job, hatched for abandoned attempts. No dependencies —
//! the output is a single standalone `.svg` file.

use crate::activity::{Phase, Target};
use crate::instance::Instance;
use crate::job::JobId;
use crate::resource::{ResourceId, ResourceIndex};
use crate::schedule::Schedule;
use mmsec_sim::Interval;
use std::fmt::Write as _;

/// SVG rendering options.
#[derive(Clone, Copy, Debug)]
pub struct SvgOptions {
    /// Total drawing width in pixels (time axis).
    pub width: u32,
    /// Height of one resource lane in pixels.
    pub lane_height: u32,
    /// Skip resources that are never used.
    pub hide_idle_resources: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 900,
            lane_height: 22,
            hide_idle_resources: true,
        }
    }
}

/// Deterministic pastel color for a job.
fn job_color(job: JobId) -> String {
    // Golden-angle hue stepping gives well-separated hues for small ids.
    let hue = (job.0 as f64 * 137.508) % 360.0;
    format!("hsl({hue:.0},70%,60%)")
}

/// Renders the schedule as a standalone SVG document.
pub fn schedule_to_svg(instance: &Instance, schedule: &Schedule, opts: SvgOptions) -> String {
    let index = ResourceIndex::new(&instance.spec);
    // Gather (resource, interval, job, abandoned).
    let mut uses: Vec<(usize, Interval, JobId, bool)> = Vec::new();
    for (id, job) in instance.iter_jobs() {
        let Some(target) = schedule.alloc[id.0] else {
            continue;
        };
        let mut add = |phase: Phase, set: &mmsec_sim::IntervalSet| {
            for iv in set.iter() {
                for r in phase.resources(job, target).iter() {
                    uses.push((index.index(r), *iv, id, false));
                }
            }
        };
        add(Phase::Compute, &schedule.exec[id.0]);
        if matches!(target, Target::Cloud(_)) {
            add(Phase::Uplink, &schedule.up[id.0]);
            add(Phase::Downlink, &schedule.dn[id.0]);
        }
    }
    for seg in &schedule.abandoned {
        let job = instance.job(seg.job);
        for r in seg.phase.resources(job, seg.target).iter() {
            uses.push((index.index(r), seg.interval, seg.job, true));
        }
    }

    let horizon = uses
        .iter()
        .map(|(_, iv, _, _)| iv.end().seconds())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);

    // Which lanes to draw.
    let mut used_lane = vec![false; index.count()];
    for (ri, _, _, _) in &uses {
        used_lane[*ri] = true;
    }
    let lanes: Vec<usize> = (0..index.count())
        .filter(|&ri| used_lane[ri] || !opts.hide_idle_resources)
        .collect();
    let lane_row: Vec<Option<usize>> = {
        let mut map = vec![None; index.count()];
        for (row, &ri) in lanes.iter().enumerate() {
            map[ri] = Some(row);
        }
        map
    };

    let label_w = 90u32;
    let h = opts.lane_height;
    let total_h = h * lanes.len() as u32 + 30;
    let total_w = label_w + opts.width + 10;
    let x_of = |t: f64| label_w as f64 + t / horizon * opts.width as f64;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" height="{total_h}" font-family="monospace" font-size="11">"#
    );
    let _ = writeln!(
        svg,
        r#"<defs><pattern id="hatch" width="6" height="6" patternTransform="rotate(45)" patternUnits="userSpaceOnUse"><line x1="0" y1="0" x2="0" y2="6" stroke="black" stroke-width="2" opacity="0.35"/></pattern></defs>"#
    );

    // Lane backgrounds and labels.
    for (row, &ri) in lanes.iter().enumerate() {
        let y = row as u32 * h;
        let name = resource_label(index.resource(ri));
        let _ = writeln!(
            svg,
            r##"<rect x="{label_w}" y="{y}" width="{}" height="{h}" fill="{}"/>"##,
            opts.width,
            if row % 2 == 0 { "#f6f6f6" } else { "#ececec" }
        );
        let _ = writeln!(
            svg,
            r#"<text x="4" y="{}" dominant-baseline="middle">{name}</text>"#,
            y + h / 2
        );
    }

    // Activity boxes.
    for (ri, iv, job, abandoned) in &uses {
        let Some(row) = lane_row[*ri] else { continue };
        let y = row as u32 * h + 2;
        let x = x_of(iv.start().seconds());
        let w = (x_of(iv.end().seconds()) - x).max(1.0);
        let color = job_color(*job);
        let _ = writeln!(
            svg,
            r##"<rect x="{x:.2}" y="{y}" width="{w:.2}" height="{}" fill="{color}" stroke="#333" stroke-width="0.5"><title>{job} [{:.3}, {:.3})</title></rect>"##,
            h - 4,
            iv.start().seconds(),
            iv.end().seconds()
        );
        if *abandoned {
            let _ = writeln!(
                svg,
                r#"<rect x="{x:.2}" y="{y}" width="{w:.2}" height="{}" fill="url(#hatch)"/>"#,
                h - 4
            );
        }
        if w > 14.0 {
            let _ = writeln!(
                svg,
                r#"<text x="{:.2}" y="{}" dominant-baseline="middle" text-anchor="middle">{}</text>"#,
                x + w / 2.0,
                y + (h - 4) / 2,
                job.0 + 1
            );
        }
    }

    // Time axis.
    let axis_y = h * lanes.len() as u32 + 14;
    let _ = writeln!(
        svg,
        r#"<text x="{label_w}" y="{axis_y}">0</text><text x="{}" y="{axis_y}" text-anchor="end">{horizon:.2}</text>"#,
        label_w + opts.width
    );
    svg.push_str("</svg>\n");
    svg
}

fn resource_label(r: ResourceId) -> String {
    r.to_string().replace('(', " ").replace(')', "")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{OnlineScheduler, Simulation};
    use crate::instance::figure1_instance;
    use crate::view::SimView;
    use crate::{CloudId, DirectiveBuffer};

    struct AllCloud;
    impl OnlineScheduler for AllCloud {
        fn name(&self) -> String {
            "c".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            for j in view.pending_jobs() {
                out.push(j, Target::Cloud(CloudId(0)));
            }
        }
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let inst = figure1_instance();
        let out = Simulation::of(&inst).policy(&mut AllCloud).run().unwrap();
        let svg = schedule_to_svg(&inst, &out.schedule, SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One lane per used resource; the idle edge CPU is hidden (all
        // jobs were delegated to the cloud).
        assert!(!svg.contains("cpu e0"));
        assert!(svg.contains("cpu c0"));
        assert!(svg.contains("out e0"));
        // Every job appears in a tooltip.
        for j in 1..=6 {
            assert!(svg.contains(&format!("J{j} [")), "missing job {j}");
        }
        // No idle-cloud lane beyond c0 (only one cloud anyway).
        assert_eq!(svg.matches("<svg").count(), 1);
    }

    #[test]
    fn abandoned_attempts_are_hatched() {
        use crate::schedule::TraceBuilder;
        use mmsec_sim::{Interval, Time};
        let inst = figure1_instance();
        let mut tb = TraceBuilder::new(inst.num_jobs());
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(0.0, 1.0),
        );
        tb.abandon(JobId(0));
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(1.0, 4.0),
        );
        tb.complete(JobId(0), Time::new(4.0));
        let svg = schedule_to_svg(&inst, &tb.finish(), SvgOptions::default());
        assert!(svg.contains("url(#hatch)"));
    }

    #[test]
    fn colors_are_deterministic_and_distinct() {
        assert_eq!(job_color(JobId(0)), job_color(JobId(0)));
        assert_ne!(job_color(JobId(0)), job_color(JobId(1)));
        assert_ne!(job_color(JobId(1)), job_color(JobId(2)));
    }
}
