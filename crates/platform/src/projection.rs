//! Contention-profile projection: a fast forecast of job completion times.
//!
//! SSF-EDF (§V-D) must decide, for a candidate target stretch, whether all
//! deadlines can be met: it walks jobs in EDF order and assigns each "on
//! the processor where it completes the earliest". Completion here is
//! forecast with scalar *earliest-free* profiles per resource: placing a
//! job advances the profiles of the resources it uses. This is classical
//! list scheduling over the 6 resource families (CPUs + 4 port kinds) and
//! deliberately ignores future preemption — it is a forecast, not a
//! simulation; the actual execution stays event-driven and preemptive.

use crate::activity::Target;
use crate::job::{Job, JobId};
use crate::resource::{ResourceId, ResourceMap};
use crate::spec::PlatformSpec;
use crate::state::JobState;
use crate::view::SimView;
use mmsec_sim::Time;

/// Remaining volumes of a job if placed on `target`, accounting for the
/// loss of progress when `target` differs from the committed resource.
fn volumes(st: &JobState, job: &Job, target: Target) -> (f64, f64, f64) {
    let keep = st.committed == Some(target);
    match target {
        Target::Edge => {
            let w = if keep {
                st.remaining_work(job)
            } else {
                job.work
            };
            (0.0, w, 0.0)
        }
        Target::Cloud(_) => {
            if keep {
                (
                    st.remaining_up(job),
                    st.remaining_work(job),
                    st.remaining_dn(job),
                )
            } else {
                (job.up, job.work, job.dn)
            }
        }
    }
}

/// Scalar earliest-free profiles for every resource.
#[derive(Clone, Debug)]
pub struct Projection {
    free: ResourceMap<Time>,
    /// Platform version the profiles were sized for (0 when built from a
    /// bare spec). [`Projection::reset_for`] rebuilds on mismatch.
    version: u64,
    /// Resources whose profile moved since the last reset (duplicates
    /// allowed). A reset only rewrites these entries: every profile read
    /// goes through [`Projection::forecast`], which clamps with
    /// `.max(now)`, so an untouched entry left at an *earlier* reset
    /// instant is indistinguishable from one rewritten to `now`.
    moved: Vec<ResourceId>,
    /// Latest reset instant. A reset that moves *backwards* in time
    /// (never the case inside a run, where `now` is monotone) falls back
    /// to the full fill, because stale untouched entries would then
    /// exceed `now` and survive the `.max(now)` clamp.
    floor: Time,
}

impl Projection {
    /// All resources free from `now` on.
    pub fn new(spec: &PlatformSpec, now: Time) -> Self {
        Projection {
            free: ResourceMap::new(spec, now),
            version: 0,
            moved: Vec::new(),
            floor: now,
        }
    }

    /// Profiles initialized from a simulation view (all resources free at
    /// `view.now`; running activities are re-decided anyway at an event).
    pub fn from_view(view: &SimView<'_>) -> Self {
        Projection {
            free: ResourceMap::new(view.spec(), view.now),
            version: view.platform_version(),
            moved: Vec::new(),
            floor: view.now,
        }
    }

    /// Re-frees every resource from `now` on, reusing the allocation:
    /// equivalent to building a fresh projection for the same platform.
    /// O(placements since the last reset), not O(resources).
    pub fn reset(&mut self, now: Time) {
        if now >= self.floor {
            for r in self.moved.drain(..) {
                self.free[r] = now;
            }
        } else {
            self.moved.clear();
            self.free.fill(now);
        }
        self.floor = now;
    }

    /// Version-aware [`Projection::reset`] for run-long holders: when the
    /// platform mutated since the profiles were built (units joined or
    /// left, so the maps are the wrong size), rebuilds them for the
    /// current spec; otherwise re-frees in place.
    pub fn reset_for(&mut self, view: &SimView<'_>) {
        if self.version != view.platform_version() {
            *self = Projection::from_view(view);
        } else {
            self.reset(view.now);
        }
    }

    /// Forecast completion time of `job` (state `st`) if placed next on
    /// `target`, *without* reserving the resources.
    pub fn completion(
        &self,
        job: &Job,
        st: &JobState,
        target: Target,
        spec: &PlatformSpec,
        now: Time,
    ) -> Time {
        self.forecast(job, st, target, spec, now).completion
    }

    /// Forecast and reserve: advances the profiles of every resource the
    /// job would use. Returns the forecast completion time.
    pub fn place(
        &mut self,
        job: &Job,
        st: &JobState,
        target: Target,
        spec: &PlatformSpec,
        now: Time,
    ) -> Time {
        let f = self.forecast(job, st, target, spec, now);
        self.place_forecast(job, &f, target);
        f.completion
    }

    /// Applies an already-computed forecast's reservations. Callers that
    /// just obtained `f` from [`Projection::forecast`] on this projection
    /// (with no intervening mutation) get exactly the writes
    /// [`Projection::place`] would perform, without forecasting twice.
    pub fn place_forecast(&mut self, job: &Job, f: &Forecast, target: Target) {
        match target {
            Target::Edge => {
                self.free[ResourceId::EdgeCpu(job.origin)] = f.exec_end;
                self.moved.push(ResourceId::EdgeCpu(job.origin));
            }
            Target::Cloud(k) => {
                if f.has_up {
                    self.free[ResourceId::EdgeOut(job.origin)] = f.up_end;
                    self.free[ResourceId::CloudIn(k)] = f.up_end;
                    self.moved.push(ResourceId::EdgeOut(job.origin));
                    self.moved.push(ResourceId::CloudIn(k));
                }
                self.free[ResourceId::CloudCpu(k)] = f.exec_end;
                self.moved.push(ResourceId::CloudCpu(k));
                if f.has_dn {
                    self.free[ResourceId::CloudOut(k)] = f.completion;
                    self.free[ResourceId::EdgeIn(job.origin)] = f.completion;
                    self.moved.push(ResourceId::CloudOut(k));
                    self.moved.push(ResourceId::EdgeIn(job.origin));
                }
            }
        }
    }

    /// Picks the target (edge or any cloud processor) with the earliest
    /// forecast completion; ties prefer the edge, then lower cloud ids
    /// (deterministic).
    pub fn best_target(
        &self,
        job: &Job,
        st: &JobState,
        spec: &PlatformSpec,
        now: Time,
    ) -> (Target, Time) {
        let mut best = (
            Target::Edge,
            self.completion(job, st, Target::Edge, spec, now),
        );
        for k in spec.clouds() {
            let t = Target::Cloud(k);
            let c = self.completion(job, st, t, spec, now);
            if c < best.1 {
                best = (t, c);
            }
        }
        best
    }

    /// Raw forecast of one placement: the phase-end instants and which
    /// communication phases exist. Exposed so decision rounds can reuse
    /// the winning candidate's forecast at claim time instead of
    /// recomputing it.
    pub fn forecast(
        &self,
        job: &Job,
        st: &JobState,
        target: Target,
        spec: &PlatformSpec,
        now: Time,
    ) -> Forecast {
        let (up, work, dn) = volumes(st, job, target);
        match target {
            Target::Edge => {
                let start = self.free[ResourceId::EdgeCpu(job.origin)].max(now);
                let end = start + Time::new(work / spec.edge_speed(job.origin));
                Forecast {
                    up_end: start,
                    exec_end: end,
                    completion: end,
                    has_up: false,
                    has_dn: false,
                }
            }
            Target::Cloud(k) => {
                // Communication *volumes* become link-time durations by
                // pricing them along the route: exactly `v * 1.0` (a
                // bitwise no-op) on the flat platform, `v * path` on a
                // continuum platform.
                let up = up * spec.path_up(k);
                let dn = dn * spec.path_dn(k);
                let has_up = up > 0.0;
                let up_start = if has_up {
                    self.free[ResourceId::EdgeOut(job.origin)]
                        .max(self.free[ResourceId::CloudIn(k)])
                        .max(now)
                } else {
                    now
                };
                let up_end = up_start + Time::new(up);
                let exec_start = up_end.max(self.free[ResourceId::CloudCpu(k)]).max(now);
                let exec_end = exec_start + Time::new(work / spec.cloud_speed(k));
                let has_dn = dn > 0.0;
                let dn_start = if has_dn {
                    exec_end
                        .max(self.free[ResourceId::CloudOut(k)])
                        .max(self.free[ResourceId::EdgeIn(job.origin)])
                } else {
                    exec_end
                };
                let completion = dn_start + Time::new(dn);
                Forecast {
                    up_end,
                    exec_end,
                    completion,
                    has_up,
                    has_dn,
                }
            }
        }
    }
}

/// Phase-end instants of one forecast placement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Forecast {
    /// End of the uplink phase (equals its start when there is no uplink).
    pub up_end: Time,
    /// End of the compute phase.
    pub exec_end: Time,
    /// End of the last phase: the forecast completion time.
    pub completion: Time,
    /// Whether an uplink phase exists (reserves the uplink ports).
    pub has_up: bool,
    /// Whether a downlink phase exists (reserves the downlink ports).
    pub has_dn: bool,
}

impl Forecast {
    /// Closed-form forecast against a *pristine* projection — one whose
    /// every profile still equals `now` (freshly reset, nothing placed).
    /// Performs the exact floating-point operation sequence of
    /// [`Projection::forecast`] specialized to `free[r] == now`, so the
    /// result is bit-identical (pinned by the `pristine_matches_forecast`
    /// proptest below); it just skips the profile loads. `speed` is the
    /// target CPU's speed; `(up, work, dn)` are the remaining volumes.
    pub fn pristine(target: Target, up: f64, work: f64, dn: f64, speed: f64, now: Time) -> Self {
        Forecast::pristine_quot(target, up, work / speed, dn, now)
    }

    /// [`Self::pristine`] with the CPU division already performed:
    /// `exec` is `work / speed`. The division is the only
    /// volume-dependent operation in the closed form that is not a plain
    /// addition, and IEEE-754 division is deterministic — so a caller
    /// that evaluates the same (volumes, speed) pair round after round
    /// can cache the quotient once and replay the additions here,
    /// bit-identical to recomputing `pristine` from scratch.
    pub fn pristine_quot(target: Target, up: f64, exec: f64, dn: f64, now: Time) -> Self {
        match target {
            Target::Edge => {
                // start = free.max(now) == now; end = start + work/speed.
                let end = now + Time::new(exec);
                Forecast {
                    up_end: now,
                    exec_end: end,
                    completion: end,
                    has_up: false,
                    has_dn: false,
                }
            }
            Target::Cloud(_) => {
                let has_up = up > 0.0;
                // up_start = max(now, now, now) == now either way.
                let up_end = now + Time::new(up);
                // exec_start = up_end.max(now).max(now): adding the
                // non-negative `up` to `now` can only round upward, so
                // up_end >= now and the maxes return up_end bitwise.
                let exec_end = up_end + Time::new(exec);
                let has_dn = dn > 0.0;
                // dn_start = exec_end.max(now).max(now) == exec_end.
                let completion = exec_end + Time::new(dn);
                Forecast {
                    up_end,
                    exec_end,
                    completion,
                    has_up,
                    has_dn,
                }
            }
        }
    }
}

/// Forecast completion times for `order` (a priority-ordered list of
/// pending jobs with chosen targets); convenience used by tests and by the
/// SSF-EDF feasibility check.
pub fn project_sequence(view: &SimView<'_>, order: &[(JobId, Target)]) -> Vec<(JobId, Time)> {
    let mut proj = Projection::from_view(view);
    order
        .iter()
        .map(|&(id, target)| {
            let st = view.state(id);
            let c = proj.place(view.job(id), &st, target, view.spec(), view.now);
            (id, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::spec::{CloudId, EdgeId};
    use crate::state::JobArena;
    use crate::view::PendingSet;

    fn view_fixture(jobs: Vec<Job>) -> (Instance, Vec<JobState>) {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(2)
            .build();
        let inst = Instance::new(spec, jobs).unwrap();
        let mut states = vec![JobState::default(); inst.num_jobs()];
        for s in &mut states {
            s.released = true;
        }
        (inst, states)
    }

    #[test]
    fn single_job_forecasts() {
        let (inst, states) = view_fixture(vec![Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0)]);
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        let proj = Projection::from_view(&view);
        let job = inst.job(JobId(0));
        // Edge: 2 / 0.5 = 4. Cloud: 1 + 2 + 1 = 4.
        assert_eq!(
            proj.completion(job, &states[0], Target::Edge, view.spec(), view.now),
            Time::new(4.0)
        );
        assert_eq!(
            proj.completion(
                job,
                &states[0],
                Target::Cloud(CloudId(0)),
                view.spec(),
                view.now
            ),
            Time::new(4.0)
        );
        // Tie prefers the edge.
        let (t, c) = proj.best_target(job, &states[0], view.spec(), view.now);
        assert_eq!(t, Target::Edge);
        assert_eq!(c, Time::new(4.0));
    }

    #[test]
    fn placement_advances_profiles() {
        let (inst, states) = view_fixture(vec![
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
        ]);
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        let mut proj = Projection::from_view(&view);
        let spec = view.spec();
        let c0 = proj.place(
            inst.job(JobId(0)),
            &states[0],
            Target::Cloud(CloudId(0)),
            spec,
            view.now,
        );
        assert_eq!(c0, Time::new(4.0));
        // Second job on the same cloud: uplink waits for EdgeOut until 1,
        // up [1,2), exec waits for cloud CPU until 3, exec [3,5), dn [5,6).
        let c1 = proj.completion(
            inst.job(JobId(1)),
            &states[1],
            Target::Cloud(CloudId(0)),
            spec,
            view.now,
        );
        assert_eq!(c1, Time::new(6.0));
        // On the other cloud processor: up [1,2) (EdgeOut), exec [2,4),
        // dn [4,5) (EdgeIn free at 4 from J1's downlink... J1 dn ends 4).
        let c1b = proj.completion(
            inst.job(JobId(1)),
            &states[1],
            Target::Cloud(CloudId(1)),
            spec,
            view.now,
        );
        assert_eq!(c1b, Time::new(5.0));
        // best_target picks the edge (free: 2/0.5 = 4) over cloud 1 (5).
        let (t, c) = proj.best_target(inst.job(JobId(1)), &states[1], spec, view.now);
        assert_eq!(t, Target::Edge);
        assert_eq!(c, Time::new(4.0));
    }

    #[test]
    fn progress_kept_on_committed_target_only() {
        let (inst, mut states) = view_fixture(vec![Job::new(EdgeId(0), 0.0, 4.0, 2.0, 2.0)]);
        states[0].committed = Some(Target::Cloud(CloudId(0)));
        states[0].up_done = 1.5;
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(10.0), &arena, &pending);
        let proj = Projection::from_view(&view);
        let job = inst.job(JobId(0));
        // Same cloud: 0.5 up + 4 work + 2 dn = 6.5 after now.
        assert_eq!(
            proj.completion(
                job,
                &states[0],
                Target::Cloud(CloudId(0)),
                view.spec(),
                view.now
            ),
            Time::new(16.5)
        );
        // Other cloud: full 2 + 4 + 2 = 8.
        assert_eq!(
            proj.completion(
                job,
                &states[0],
                Target::Cloud(CloudId(1)),
                view.spec(),
                view.now
            ),
            Time::new(18.0)
        );
    }

    #[test]
    fn zero_comm_volumes_skip_ports() {
        let (inst, states) = view_fixture(vec![
            Job::new(EdgeId(0), 0.0, 2.0, 5.0, 0.0), // holds EdgeOut for 5
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0), // no uplink at all
        ]);
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        let mut proj = Projection::from_view(&view);
        proj.place(
            inst.job(JobId(0)),
            &states[0],
            Target::Cloud(CloudId(0)),
            view.spec(),
            view.now,
        );
        // J2 has up = 0: it does not wait for the busy EdgeOut port; it
        // only waits for the cloud CPU (busy until 7).
        let c = proj.completion(
            inst.job(JobId(1)),
            &states[1],
            Target::Cloud(CloudId(0)),
            view.spec(),
            view.now,
        );
        assert_eq!(c, Time::new(9.0));
        let c2 = proj.completion(
            inst.job(JobId(1)),
            &states[1],
            Target::Cloud(CloudId(1)),
            view.spec(),
            view.now,
        );
        assert_eq!(c2, Time::new(2.0));
    }

    mod pristine {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// [`Forecast::pristine`] must be bit-identical to
            /// [`Projection::forecast`] on a freshly reset projection,
            /// across zero and positive communication volumes, committed
            /// and fresh placements, both target kinds, and flat as well
            /// as continuum (path-priced) platforms — callers hand
            /// `pristine` the *path-scaled* communication durations.
            #[test]
            fn pristine_matches_forecast(
                work in 0.0f64..50.0,
                up in prop_oneof![Just(0.0f64), 1e-12f64..20.0],
                dn in prop_oneof![Just(0.0f64), 1e-12f64..20.0],
                done in proptest::collection::vec(0.0f64..1.0, 3),
                committed in 0usize..4,
                target_pick in 0usize..3,
                tiered in any::<bool>(),
                now in 0.0f64..1e6,
            ) {
                let spec = if tiered {
                    PlatformSpec::builder()
                        .edge(0.7)
                        .tier(0.5, 0.75)
                        .cloud(1.0)
                        .tier(1.5, 2.0)
                        .cloud(1.0)
                        .build()
                } else {
                    PlatformSpec::builder().edge(0.7).cloud_pool(2).build()
                };
                let job = Job::new(EdgeId(0), 0.0, work, up, dn);
                let mut st = JobState {
                    released: true,
                    up_done: done[0] * up,
                    work_done: done[1] * work,
                    dn_done: done[2] * dn,
                    ..JobState::default()
                };
                st.committed = match committed {
                    0 => None,
                    1 => Some(Target::Edge),
                    c => Some(Target::Cloud(CloudId(c - 2))),
                };
                let target = match target_pick {
                    0 => Target::Edge,
                    t => Target::Cloud(CloudId(t - 1)),
                };
                let now = Time::new(now);
                let proj = Projection::new(&spec, now);
                let reference = proj.forecast(&job, &st, target, &spec, now);
                let (u, w, d) = volumes(&st, &job, target);
                let (u, d, speed) = match target {
                    Target::Edge => (u, d, spec.edge_speed(job.origin)),
                    Target::Cloud(k) => (
                        u * spec.path_up(k),
                        d * spec.path_dn(k),
                        spec.cloud_speed(k),
                    ),
                };
                let fast = Forecast::pristine(target, u, w, d, speed, now);
                prop_assert_eq!(fast, reference);
            }
        }
    }

    #[test]
    fn project_sequence_orders_matter() {
        let (inst, states) = view_fixture(vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        ]);
        let arena = JobArena::from_states(&inst, &states);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &arena, &pending);
        // Both on the edge CPU, short first.
        let completions =
            project_sequence(&view, &[(JobId(0), Target::Edge), (JobId(1), Target::Edge)]);
        assert_eq!(completions[0].1, Time::new(2.0));
        assert_eq!(completions[1].1, Time::new(22.0));
        // Long first.
        let completions =
            project_sequence(&view, &[(JobId(1), Target::Edge), (JobId(0), Target::Edge)]);
        assert_eq!(completions[0].1, Time::new(20.0));
        assert_eq!(completions[1].1, Time::new(22.0));
    }
}
