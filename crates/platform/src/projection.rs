//! Contention-profile projection: a fast forecast of job completion times.
//!
//! SSF-EDF (§V-D) must decide, for a candidate target stretch, whether all
//! deadlines can be met: it walks jobs in EDF order and assigns each "on
//! the processor where it completes the earliest". Completion here is
//! forecast with scalar *earliest-free* profiles per resource: placing a
//! job advances the profiles of the resources it uses. This is classical
//! list scheduling over the 6 resource families (CPUs + 4 port kinds) and
//! deliberately ignores future preemption — it is a forecast, not a
//! simulation; the actual execution stays event-driven and preemptive.

use crate::activity::Target;
use crate::job::{Job, JobId};
use crate::resource::{ResourceId, ResourceMap};
use crate::spec::PlatformSpec;
use crate::state::JobState;
use crate::view::SimView;
use mmsec_sim::Time;

/// Remaining volumes of a job if placed on `target`, accounting for the
/// loss of progress when `target` differs from the committed resource.
fn volumes(st: &JobState, job: &Job, target: Target) -> (f64, f64, f64) {
    let keep = st.committed == Some(target);
    match target {
        Target::Edge => {
            let w = if keep {
                st.remaining_work(job)
            } else {
                job.work
            };
            (0.0, w, 0.0)
        }
        Target::Cloud(_) => {
            if keep {
                (
                    st.remaining_up(job),
                    st.remaining_work(job),
                    st.remaining_dn(job),
                )
            } else {
                (job.up, job.work, job.dn)
            }
        }
    }
}

/// Scalar earliest-free profiles for every resource.
#[derive(Clone, Debug)]
pub struct Projection {
    free: ResourceMap<Time>,
    /// Platform version the profiles were sized for (0 when built from a
    /// bare spec). [`Projection::reset_for`] rebuilds on mismatch.
    version: u64,
}

impl Projection {
    /// All resources free from `now` on.
    pub fn new(spec: &PlatformSpec, now: Time) -> Self {
        Projection {
            free: ResourceMap::new(spec, now),
            version: 0,
        }
    }

    /// Profiles initialized from a simulation view (all resources free at
    /// `view.now`; running activities are re-decided anyway at an event).
    pub fn from_view(view: &SimView<'_>) -> Self {
        Projection {
            free: ResourceMap::new(view.spec(), view.now),
            version: view.platform_version(),
        }
    }

    /// Re-frees every resource from `now` on, reusing the allocation:
    /// equivalent to building a fresh projection for the same platform.
    pub fn reset(&mut self, now: Time) {
        self.free.fill(now);
    }

    /// Version-aware [`Projection::reset`] for run-long holders: when the
    /// platform mutated since the profiles were built (units joined or
    /// left, so the maps are the wrong size), rebuilds them for the
    /// current spec; otherwise re-frees in place.
    pub fn reset_for(&mut self, view: &SimView<'_>) {
        if self.version != view.platform_version() {
            *self = Projection::from_view(view);
        } else {
            self.free.fill(view.now);
        }
    }

    /// Forecast completion time of `job` (state `st`) if placed next on
    /// `target`, *without* reserving the resources.
    pub fn completion(
        &self,
        job: &Job,
        st: &JobState,
        target: Target,
        spec: &PlatformSpec,
        now: Time,
    ) -> Time {
        self.forecast(job, st, target, spec, now).completion
    }

    /// Forecast and reserve: advances the profiles of every resource the
    /// job would use. Returns the forecast completion time.
    pub fn place(
        &mut self,
        job: &Job,
        st: &JobState,
        target: Target,
        spec: &PlatformSpec,
        now: Time,
    ) -> Time {
        let f = self.forecast(job, st, target, spec, now);
        match target {
            Target::Edge => {
                self.free[ResourceId::EdgeCpu(job.origin)] = f.exec_end;
            }
            Target::Cloud(k) => {
                if f.has_up {
                    self.free[ResourceId::EdgeOut(job.origin)] = f.up_end;
                    self.free[ResourceId::CloudIn(k)] = f.up_end;
                }
                self.free[ResourceId::CloudCpu(k)] = f.exec_end;
                if f.has_dn {
                    self.free[ResourceId::CloudOut(k)] = f.completion;
                    self.free[ResourceId::EdgeIn(job.origin)] = f.completion;
                }
            }
        }
        f.completion
    }

    /// Picks the target (edge or any cloud processor) with the earliest
    /// forecast completion; ties prefer the edge, then lower cloud ids
    /// (deterministic).
    pub fn best_target(
        &self,
        job: &Job,
        st: &JobState,
        spec: &PlatformSpec,
        now: Time,
    ) -> (Target, Time) {
        let mut best = (
            Target::Edge,
            self.completion(job, st, Target::Edge, spec, now),
        );
        for k in spec.clouds() {
            let t = Target::Cloud(k);
            let c = self.completion(job, st, t, spec, now);
            if c < best.1 {
                best = (t, c);
            }
        }
        best
    }

    fn forecast(
        &self,
        job: &Job,
        st: &JobState,
        target: Target,
        spec: &PlatformSpec,
        now: Time,
    ) -> Forecast {
        let (up, work, dn) = volumes(st, job, target);
        match target {
            Target::Edge => {
                let start = self.free[ResourceId::EdgeCpu(job.origin)].max(now);
                let end = start + Time::new(work / spec.edge_speed(job.origin));
                Forecast {
                    up_end: start,
                    exec_end: end,
                    completion: end,
                    has_up: false,
                    has_dn: false,
                }
            }
            Target::Cloud(k) => {
                let has_up = up > 0.0;
                let up_start = if has_up {
                    self.free[ResourceId::EdgeOut(job.origin)]
                        .max(self.free[ResourceId::CloudIn(k)])
                        .max(now)
                } else {
                    now
                };
                let up_end = up_start + Time::new(up);
                let exec_start = up_end.max(self.free[ResourceId::CloudCpu(k)]).max(now);
                let exec_end = exec_start + Time::new(work / spec.cloud_speed(k));
                let has_dn = dn > 0.0;
                let dn_start = if has_dn {
                    exec_end
                        .max(self.free[ResourceId::CloudOut(k)])
                        .max(self.free[ResourceId::EdgeIn(job.origin)])
                } else {
                    exec_end
                };
                let completion = dn_start + Time::new(dn);
                Forecast {
                    up_end,
                    exec_end,
                    completion,
                    has_up,
                    has_dn,
                }
            }
        }
    }
}

struct Forecast {
    up_end: Time,
    exec_end: Time,
    completion: Time,
    has_up: bool,
    has_dn: bool,
}

/// Forecast completion times for `order` (a priority-ordered list of
/// pending jobs with chosen targets); convenience used by tests and by the
/// SSF-EDF feasibility check.
pub fn project_sequence(view: &SimView<'_>, order: &[(JobId, Target)]) -> Vec<(JobId, Time)> {
    let mut proj = Projection::from_view(view);
    order
        .iter()
        .map(|&(id, target)| {
            let c = proj.place(
                view.job(id),
                &view.jobs[id.0],
                target,
                view.spec(),
                view.now,
            );
            (id, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::spec::{CloudId, EdgeId};
    use crate::view::PendingSet;

    fn view_fixture(jobs: Vec<Job>) -> (Instance, Vec<JobState>) {
        let spec = PlatformSpec::homogeneous_cloud(vec![0.5], 2);
        let inst = Instance::new(spec, jobs).unwrap();
        let mut states = vec![JobState::default(); inst.num_jobs()];
        for s in &mut states {
            s.released = true;
        }
        (inst, states)
    }

    #[test]
    fn single_job_forecasts() {
        let (inst, states) = view_fixture(vec![Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0)]);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        let proj = Projection::from_view(&view);
        let job = inst.job(JobId(0));
        // Edge: 2 / 0.5 = 4. Cloud: 1 + 2 + 1 = 4.
        assert_eq!(
            proj.completion(job, &states[0], Target::Edge, view.spec(), view.now),
            Time::new(4.0)
        );
        assert_eq!(
            proj.completion(
                job,
                &states[0],
                Target::Cloud(CloudId(0)),
                view.spec(),
                view.now
            ),
            Time::new(4.0)
        );
        // Tie prefers the edge.
        let (t, c) = proj.best_target(job, &states[0], view.spec(), view.now);
        assert_eq!(t, Target::Edge);
        assert_eq!(c, Time::new(4.0));
    }

    #[test]
    fn placement_advances_profiles() {
        let (inst, states) = view_fixture(vec![
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
        ]);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        let mut proj = Projection::from_view(&view);
        let spec = view.spec();
        let c0 = proj.place(
            inst.job(JobId(0)),
            &states[0],
            Target::Cloud(CloudId(0)),
            spec,
            view.now,
        );
        assert_eq!(c0, Time::new(4.0));
        // Second job on the same cloud: uplink waits for EdgeOut until 1,
        // up [1,2), exec waits for cloud CPU until 3, exec [3,5), dn [5,6).
        let c1 = proj.completion(
            inst.job(JobId(1)),
            &states[1],
            Target::Cloud(CloudId(0)),
            spec,
            view.now,
        );
        assert_eq!(c1, Time::new(6.0));
        // On the other cloud processor: up [1,2) (EdgeOut), exec [2,4),
        // dn [4,5) (EdgeIn free at 4 from J1's downlink... J1 dn ends 4).
        let c1b = proj.completion(
            inst.job(JobId(1)),
            &states[1],
            Target::Cloud(CloudId(1)),
            spec,
            view.now,
        );
        assert_eq!(c1b, Time::new(5.0));
        // best_target picks the edge (free: 2/0.5 = 4) over cloud 1 (5).
        let (t, c) = proj.best_target(inst.job(JobId(1)), &states[1], spec, view.now);
        assert_eq!(t, Target::Edge);
        assert_eq!(c, Time::new(4.0));
    }

    #[test]
    fn progress_kept_on_committed_target_only() {
        let (inst, mut states) = view_fixture(vec![Job::new(EdgeId(0), 0.0, 4.0, 2.0, 2.0)]);
        states[0].committed = Some(Target::Cloud(CloudId(0)));
        states[0].up_done = 1.5;
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::new(10.0), &states, &pending);
        let proj = Projection::from_view(&view);
        let job = inst.job(JobId(0));
        // Same cloud: 0.5 up + 4 work + 2 dn = 6.5 after now.
        assert_eq!(
            proj.completion(
                job,
                &states[0],
                Target::Cloud(CloudId(0)),
                view.spec(),
                view.now
            ),
            Time::new(16.5)
        );
        // Other cloud: full 2 + 4 + 2 = 8.
        assert_eq!(
            proj.completion(
                job,
                &states[0],
                Target::Cloud(CloudId(1)),
                view.spec(),
                view.now
            ),
            Time::new(18.0)
        );
    }

    #[test]
    fn zero_comm_volumes_skip_ports() {
        let (inst, states) = view_fixture(vec![
            Job::new(EdgeId(0), 0.0, 2.0, 5.0, 0.0), // holds EdgeOut for 5
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0), // no uplink at all
        ]);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        let mut proj = Projection::from_view(&view);
        proj.place(
            inst.job(JobId(0)),
            &states[0],
            Target::Cloud(CloudId(0)),
            view.spec(),
            view.now,
        );
        // J2 has up = 0: it does not wait for the busy EdgeOut port; it
        // only waits for the cloud CPU (busy until 7).
        let c = proj.completion(
            inst.job(JobId(1)),
            &states[1],
            Target::Cloud(CloudId(0)),
            view.spec(),
            view.now,
        );
        assert_eq!(c, Time::new(9.0));
        let c2 = proj.completion(
            inst.job(JobId(1)),
            &states[1],
            Target::Cloud(CloudId(1)),
            view.spec(),
            view.now,
        );
        assert_eq!(c2, Time::new(2.0));
    }

    #[test]
    fn project_sequence_orders_matter() {
        let (inst, states) = view_fixture(vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        ]);
        let pending = PendingSet::from_states(&inst, &states);
        let view = SimView::new(&inst, Time::ZERO, &states, &pending);
        // Both on the edge CPU, short first.
        let completions =
            project_sequence(&view, &[(JobId(0), Target::Edge), (JobId(1), Target::Edge)]);
        assert_eq!(completions[0].1, Time::new(2.0));
        assert_eq!(completions[1].1, Time::new(22.0));
        // Long first.
        let completions =
            project_sequence(&view, &[(JobId(1), Target::Edge), (JobId(0), Target::Edge)]);
        assert_eq!(completions[0].1, Time::new(20.0));
        assert_eq!(completions[1].1, Time::new(22.0));
    }
}
