//! Run results: statistics, outcomes, and failure modes of a simulation.

use crate::activity::{Phase, Target};
use crate::job::JobId;
use crate::schedule::Schedule;
use mmsec_sim::Time;
use std::fmt;
use std::time::Duration;

/// One entry of the optional event log.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Virtual time of the decision.
    pub time: Time,
    /// Number of released, unfinished jobs at the decision.
    pub pending: usize,
    /// Activities granted until the next event.
    pub activations: Vec<(JobId, Phase, Target)>,
}

/// Failure modes of a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// No activity and no future event, yet jobs are unfinished: the
    /// scheduler stopped scheduling them.
    Stalled {
        /// Virtual time of the stall.
        time: Time,
        /// Jobs that can never finish.
        pending: Vec<JobId>,
    },
    /// The event cap was exceeded (scheduler livelock).
    EventLimit {
        /// The cap that was hit.
        limit: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stalled { time, pending } => write!(
                f,
                "simulation stalled at t={time}: {} job(s) unscheduled",
                pending.len()
            ),
            EngineError::EventLimit { limit } => {
                write!(f, "event limit {limit} exceeded (livelocked scheduler?)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Run statistics, including the scheduling-time measurements of §VI-B.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Number of decision events.
    pub events: u64,
    /// Number of events at which `scheduler.decide` was actually invoked.
    /// Always `events` unless decision-epoch gating skipped some (see
    /// [`EngineOptions::decision_gating`](super::EngineOptions::decision_gating));
    /// `decides + decide_skips == events`.
    pub decides: u64,
    /// Number of events at which the policy call was skipped because no
    /// decision-relevant state had changed since the last invoked decide.
    pub decide_skips: u64,
    /// Total wall-clock time spent inside `scheduler.decide`.
    pub decide_time: Duration,
    /// Total wall-clock time of the simulation.
    pub total_time: Duration,
    /// Total number of job re-executions.
    pub restarts: u64,
}

/// A successful simulation run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The produced schedule.
    pub schedule: Schedule,
    /// Statistics.
    pub stats: RunStats,
    /// Per-event log, present iff
    /// [`EngineOptions::record_events`](super::EngineOptions::record_events).
    pub event_log: Option<Vec<EventRecord>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let stalled = EngineError::Stalled {
            time: Time::new(3.0),
            pending: vec![JobId(0), JobId(2)],
        };
        assert_eq!(
            stalled.to_string(),
            "simulation stalled at t=3: 2 job(s) unscheduled"
        );
        let limit = EngineError::EventLimit { limit: 42 };
        assert!(limit.to_string().contains("event limit 42"));
    }
}
