use super::*;
use crate::activity::Target;
use crate::instance::figure1_instance;
use crate::job::Job;
use crate::spec::{CloudId, EdgeId, PlatformSpec};

/// Sends every job to the cloud processor 0, FIFO priority.
struct AllCloudFifo;
impl OnlineScheduler for AllCloudFifo {
    fn name(&self) -> String {
        "all-cloud-fifo".into()
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        for j in view.pending_jobs() {
            out.push(j, Target::Cloud(CloudId(0)));
        }
    }
}

/// Runs every job locally, FIFO priority.
struct AllEdgeFifo;
impl OnlineScheduler for AllEdgeFifo {
    fn name(&self) -> String {
        "all-edge-fifo".into()
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        for j in view.pending_jobs() {
            out.push(j, Target::Edge);
        }
    }
}

/// Never schedules anything.
struct DoNothing;
impl OnlineScheduler for DoNothing {
    fn name(&self) -> String {
        "do-nothing".into()
    }
    fn decide(&mut self, _view: &SimView<'_>, _out: &mut DirectiveBuffer) {}
}

fn single_job_instance(work: f64, up: f64, dn: f64) -> Instance {
    let spec = PlatformSpec::homogeneous_cloud(vec![0.5], 1);
    Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, work, up, dn)]).unwrap()
}

#[test]
fn single_cloud_job_timing() {
    let inst = single_job_instance(3.0, 1.0, 2.0);
    let out = simulate(&inst, &mut AllCloudFifo).unwrap();
    // up 1 + work 3 + dn 2 = 6.
    assert_eq!(out.schedule.completion[0], Some(Time::new(6.0)));
    assert_eq!(out.schedule.alloc[0], Some(Target::Cloud(CloudId(0))));
    assert_eq!(out.schedule.up[0].total_length(), Time::new(1.0));
    assert_eq!(out.schedule.exec[0].total_length(), Time::new(3.0));
    assert_eq!(out.schedule.dn[0].total_length(), Time::new(2.0));
    assert!(out.stats.events <= 8);
}

#[test]
fn single_edge_job_timing() {
    let inst = single_job_instance(3.0, 1.0, 2.0);
    let out = simulate(&inst, &mut AllEdgeFifo).unwrap();
    // 3 work at speed 0.5 → 6 seconds.
    assert_eq!(out.schedule.completion[0], Some(Time::new(6.0)));
    assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
    assert!(out.schedule.up[0].is_empty());
}

#[test]
fn zero_comm_job_skips_phases() {
    let inst = single_job_instance(4.0, 0.0, 0.0);
    let out = simulate(&inst, &mut AllCloudFifo).unwrap();
    assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
    assert!(out.schedule.up[0].is_empty());
    assert!(out.schedule.dn[0].is_empty());
}

#[test]
fn release_dates_are_respected() {
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
    let jobs = vec![Job::new(EdgeId(0), 5.0, 2.0, 0.0, 0.0)];
    let inst = Instance::new(spec, jobs).unwrap();
    let out = simulate(&inst, &mut AllEdgeFifo).unwrap();
    assert_eq!(out.schedule.exec[0].min_start(), Some(Time::new(5.0)));
    assert_eq!(out.schedule.completion[0], Some(Time::new(7.0)));
}

#[test]
fn cloud_serializes_two_jobs() {
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
        Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();
    let out = simulate(&inst, &mut AllCloudFifo).unwrap();
    // J1: up [0,1), exec [1,3), dn [3,4). J2's uplink must wait for the
    // edge send port: up [1,2), exec [3,5), dn [5,6).
    assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
    assert_eq!(out.schedule.completion[1], Some(Time::new(6.0)));
    assert_eq!(out.schedule.up[1].min_start(), Some(Time::new(1.0)));
}

#[test]
fn stalled_scheduler_reports_error() {
    let inst = single_job_instance(1.0, 0.0, 0.0);
    let err = simulate(&inst, &mut DoNothing).unwrap_err();
    assert!(matches!(err, EngineError::Stalled { pending, .. } if pending.len() == 1));
}

#[test]
fn infinite_ports_allow_parallel_uplinks() {
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 2);
    // Two jobs from the same edge, each to a different cloud processor.
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 1.0, 2.0, 0.0),
        Job::new(EdgeId(0), 0.0, 1.0, 2.0, 0.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();

    struct SpreadCloud;
    impl OnlineScheduler for SpreadCloud {
        fn name(&self) -> String {
            "spread".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            for j in view.pending_jobs() {
                out.push(j, Target::Cloud(CloudId(j.0 % 2)));
            }
        }
    }

    // One-port: second uplink waits → completions 3 and 5.
    let strict = simulate(&inst, &mut SpreadCloud).unwrap();
    assert_eq!(strict.schedule.completion[0], Some(Time::new(3.0)));
    assert_eq!(strict.schedule.completion[1], Some(Time::new(5.0)));

    // Macro-dataflow ablation: both uplinks in parallel → both at 3.
    let loose = simulate_with(
        &inst,
        &mut SpreadCloud,
        EngineOptions {
            infinite_ports: true,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert_eq!(loose.schedule.completion[0], Some(Time::new(3.0)));
    assert_eq!(loose.schedule.completion[1], Some(Time::new(3.0)));
}

/// Starts the job on the edge, then retargets it to the cloud at the
/// second decision.
struct Flip {
    calls: u32,
}
impl OnlineScheduler for Flip {
    fn name(&self) -> String {
        "flip".into()
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        self.calls += 1;
        let tgt = if self.calls == 1 {
            Target::Edge
        } else {
            Target::Cloud(CloudId(0))
        };
        for j in view.pending_jobs() {
            out.push(j, tgt);
        }
    }
}

#[test]
fn reexecution_wipes_progress() {
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
    let jobs = vec![Job::new(EdgeId(0), 0.0, 4.0, 1.0, 1.0)];
    let inst = Instance::new(spec, jobs).unwrap();

    // Add a decoy job released at t=2 to create a mid-flight event (after
    // 4 work-seconds would be too late, so we force an artificial event
    // via a second job's release).
    let mut jobs2 = inst.jobs.clone();
    jobs2.push(Job::new(EdgeId(0), 2.0, 0.5, 10.0, 10.0));
    let inst2 = Instance::new(inst.spec.clone(), jobs2).unwrap();
    let out = simulate(&inst2, &mut Flip { calls: 0 }).unwrap();
    // J1 runs on edge [0,2) (2 of 4 work done), then restarts on the
    // cloud at t=2: up [2,3), exec [3,7), dn [7,8).
    assert_eq!(out.schedule.completion[0], Some(Time::new(8.0)));
    assert_eq!(out.schedule.restarts[0], 1);
    assert_eq!(out.schedule.wasted_time(), Time::new(2.0));
    assert_eq!(out.stats.restarts, 1);
    assert_eq!(out.schedule.alloc[0], Some(Target::Cloud(CloudId(0))));
}

#[test]
fn reexecution_can_be_disabled() {
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 4.0, 1.0, 1.0),
        Job::new(EdgeId(0), 2.0, 0.5, 10.0, 10.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();

    let out = simulate_with(
        &inst,
        &mut Flip { calls: 0 },
        EngineOptions {
            allow_reexecution: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    // The retarget is refused: J1 stays on the edge, finishing at 4.
    assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
    assert_eq!(out.schedule.restarts[0], 0);
    assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
}

#[test]
fn non_preemptive_mode_pins_activities() {
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 0);
    // Long job first, short job released mid-flight. LIFO priority
    // would preempt; non-preemptive mode must refuse.
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        Job::new(EdgeId(0), 1.0, 1.0, 0.0, 0.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();

    struct Lifo;
    impl OnlineScheduler for Lifo {
        fn name(&self) -> String {
            "lifo".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            let mut v: Vec<_> = view.pending_jobs().collect();
            v.reverse();
            for j in v {
                out.push(j, Target::Edge);
            }
        }
    }

    let preemptive = simulate(&inst, &mut Lifo).unwrap();
    assert_eq!(preemptive.schedule.completion[1], Some(Time::new(2.0)));
    assert_eq!(preemptive.schedule.completion[0], Some(Time::new(11.0)));

    let nonpre = simulate_with(
        &inst,
        &mut Lifo,
        EngineOptions {
            allow_preemption: false,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    assert_eq!(nonpre.schedule.completion[0], Some(Time::new(10.0)));
    assert_eq!(nonpre.schedule.completion[1], Some(Time::new(11.0)));
}

#[test]
fn unavailability_window_pauses_cloud_compute() {
    use mmsec_sim::Interval;
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1)
        .with_cloud_unavailability(CloudId(0), &[Interval::from_secs(2.0, 5.0)]);
    let jobs = vec![Job::new(EdgeId(0), 0.0, 4.0, 1.0, 0.0)];
    let inst = Instance::new(spec, jobs).unwrap();
    let out = simulate(&inst, &mut AllCloudFifo).unwrap();
    // up [0,1), exec [1,2) then paused during [2,5), exec [5,8).
    assert_eq!(out.schedule.completion[0], Some(Time::new(8.0)));
    assert_eq!(out.schedule.exec[0].total_length(), Time::new(4.0));
    assert_eq!(out.schedule.exec[0].len(), 2);
}

#[test]
fn figure1_runs_under_fifo_policies() {
    let inst = figure1_instance();
    let out = simulate(&inst, &mut AllEdgeFifo).unwrap();
    assert!(out.schedule.all_finished());
    let out = simulate(&inst, &mut AllCloudFifo).unwrap();
    assert!(out.schedule.all_finished());
}

#[test]
fn event_log_records_decisions() {
    let inst = single_job_instance(3.0, 1.0, 2.0);
    let out = simulate_with(
        &inst,
        &mut AllCloudFifo,
        EngineOptions {
            record_events: true,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let log = out.event_log.expect("log recorded");
    assert!(!log.is_empty());
    // First decision at t = 0 activates the uplink.
    assert_eq!(log[0].time, Time::ZERO);
    assert_eq!(log[0].pending, 1);
    assert_eq!(
        log[0].activations,
        vec![(JobId(0), Phase::Uplink, Target::Cloud(CloudId(0)))]
    );
    // Times are non-decreasing; phases progress up → exec → down.
    for w in log.windows(2) {
        assert!(w[0].time <= w[1].time);
    }
    // Without the option, no log is produced.
    let out = simulate(&inst, &mut AllCloudFifo).unwrap();
    assert!(out.event_log.is_none());
}

#[test]
fn observed_run_emits_a_well_formed_event_stream() {
    struct Capture(Vec<String>, usize, usize);
    impl Observer for Capture {
        fn on_event(&mut self, event: &ObsEvent) {
            self.0.push(event.tag().to_string());
            match event {
                ObsEvent::Placed { interval, .. } => {
                    assert!(interval.length() > Time::ZERO);
                    self.1 += 1;
                }
                ObsEvent::Completed { response, .. } => {
                    assert!(*response > 0.0);
                    self.2 += 1;
                }
                _ => {}
            }
        }
    }
    let inst = figure1_instance();
    let mut cap = Capture(Vec::new(), 0, 0);
    let out =
        simulate_observed(&inst, &mut AllCloudFifo, EngineOptions::default(), &mut cap).unwrap();
    let Capture(tags, placed, completed) = cap;
    assert_eq!(tags.first().map(String::as_str), Some("run-start"));
    assert_eq!(tags.last().map(String::as_str), Some("run-end"));
    assert_eq!(tags.iter().filter(|t| *t == "job-released").count(), 6);
    assert_eq!(completed, 6);
    // Each cloud job contributes at least uplink + compute + downlink.
    assert!(placed >= 3 * 6, "only {placed} placements observed");
    // Every decide-start is eventually closed by a decide-end.
    assert_eq!(
        tags.iter().filter(|t| *t == "decide-start").count(),
        tags.iter().filter(|t| *t == "decide-end").count()
    );
    // The observed run produces the same schedule as the plain one.
    let plain = simulate(&inst, &mut AllCloudFifo).unwrap();
    assert_eq!(out.schedule, plain.schedule);
}

#[test]
fn event_limit_guards_against_livelock() {
    let inst = single_job_instance(1e9, 0.0, 0.0);
    let err = simulate_with(
        &inst,
        &mut AllEdgeFifo,
        EngineOptions {
            max_events: Some(0),
            ..EngineOptions::default()
        },
    )
    .unwrap_err();
    assert_eq!(err, EngineError::EventLimit { limit: 0 });
}

#[test]
fn auto_event_limit_catches_livelocked_policy() {
    // A genuinely livelocked policy: it flips the single job between two
    // cloud processors at every decision. Each uplink completion triggers
    // a decision, the retarget wipes the uplink progress, and a fresh
    // uplink starts — the simulation generates events forever without
    // ever finishing the job. The automatic `1000 + 64·n + 8·w` cap (see
    // `events::auto_event_limit`) must abort the run.
    struct Thrash {
        calls: u64,
    }
    impl OnlineScheduler for Thrash {
        fn name(&self) -> String {
            "thrash".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            self.calls += 1;
            let tgt = Target::Cloud(CloudId((self.calls % 2) as usize));
            for j in view.pending_jobs() {
                out.push(j, tgt);
            }
        }
    }

    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 2);
    let jobs = vec![Job::new(EdgeId(0), 0.0, 1.0, 1.0, 1.0)];
    let inst = Instance::new(spec, jobs).unwrap();
    let expected = events::auto_event_limit(&inst);
    assert_eq!(expected, 1000 + 64);
    let err = simulate(&inst, &mut Thrash { calls: 0 }).unwrap_err();
    assert_eq!(err, EngineError::EventLimit { limit: expected });
}

#[test]
fn pending_set_is_maintained_incrementally() {
    // Two staggered jobs: the event log's pending counts must follow the
    // release/completion lifecycle exactly.
    let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
        Job::new(EdgeId(0), 1.0, 2.0, 0.0, 0.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();
    let out = simulate_with(
        &inst,
        &mut AllEdgeFifo,
        EngineOptions {
            record_events: true,
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let log = out.event_log.expect("log recorded");
    let counts: Vec<_> = log.iter().map(|r| r.pending).collect();
    // t=0: job 0 pending; t=1: both pending; t=2: job 0 done, job 1 left.
    assert_eq!(counts, vec![1, 2, 1]);
}

// ---------------------------------------------------------------------------
// Fault injection (see `mmsec-faults` and `docs/faults.md`).
// ---------------------------------------------------------------------------

mod faults {
    use super::*;
    use mmsec_faults::{FaultPlan, LinkWindow};
    use mmsec_sim::Interval;

    #[test]
    fn empty_plan_is_bit_identical_to_fault_free_run() {
        let inst = figure1_instance();
        let plain = simulate(&inst, &mut AllCloudFifo).unwrap();
        let plan = FaultPlan::empty(inst.spec.num_edge(), inst.spec.num_cloud());
        let faulted =
            simulate_with_faults(&inst, &mut AllCloudFifo, EngineOptions::default(), &plan)
                .unwrap();
        assert_eq!(plain.schedule, faulted.schedule);
        assert_eq!(plain.stats.events, faulted.stats.events);
    }

    #[test]
    fn edge_crash_wipes_local_progress_and_restarts() {
        // Work 4 at edge speed 0.5 → 8 s nominally. The crash at t = 2
        // wipes the first unit of work; the job restarts from scratch when
        // the edge recovers at t = 3 and finishes at 3 + 8 = 11.
        let inst = single_job_instance(4.0, 0.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, Interval::from_secs(2.0, 3.0));
        let out =
            simulate_with_faults(&inst, &mut AllEdgeFifo, EngineOptions::default(), &plan).unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(11.0)));
        assert_eq!(out.stats.restarts, 1);
    }

    #[test]
    fn cloud_crash_during_downlink_rereleases_instead_of_completing() {
        // Phases without faults: up [0,1), exec [1,2), dn [2,4) → C = 4.
        // The cloud crashes at t = 2.5 — mid-downlink, after the compute
        // has finished. Paper restart semantics: the result is lost and the
        // job re-runs from scratch, it does NOT silently complete. The
        // re-run waits for recovery at t = 3 (the down cloud's ports are
        // blocked): up [3,4), exec [4,5), dn [5,7).
        let inst = single_job_instance(1.0, 1.0, 2.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_cloud_down(0, Interval::from_secs(2.5, 3.0));
        let out = simulate_with_faults(&inst, &mut AllCloudFifo, EngineOptions::default(), &plan)
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(7.0)));
        assert_eq!(out.stats.restarts, 1);
    }

    #[test]
    fn origin_edge_crash_pauses_cloud_committed_job_without_restart() {
        // Up 2, work 1, no downlink → C = 3 without faults. The origin
        // edge goes down during the uplink [1, 2): a cloud-committed job is
        // not killed — its data is already (partially) off the edge — but
        // the edge's ports are blocked, so the uplink pauses and resumes on
        // recovery with progress intact: up [0,1) ∪ [2,3), exec [3,4).
        let inst = single_job_instance(1.0, 2.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, Interval::from_secs(1.0, 2.0));
        let out = simulate_with_faults(&inst, &mut AllCloudFifo, EngineOptions::default(), &plan)
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
        assert_eq!(out.stats.restarts, 0);
        assert_eq!(out.schedule.up[0].total_length(), Time::new(2.0));
    }

    #[test]
    fn link_outage_pauses_comm_without_restart() {
        // Same shape as above but through a link window with factor 0: the
        // edge CPU stays usable, only the ports are blocked.
        let inst = single_job_instance(1.0, 2.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_link_window(0, LinkWindow::new(Interval::from_secs(1.0, 2.0), 0.0));
        let out = simulate_with_faults(&inst, &mut AllCloudFifo, EngineOptions::default(), &plan)
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
        assert_eq!(out.stats.restarts, 0);
    }

    #[test]
    fn link_degradation_slows_comm_only() {
        // Factor 0.5 over the whole run: the 1-second uplink takes 2
        // seconds, the compute is unaffected → up [0,2), exec [2,3).
        let inst = single_job_instance(1.0, 1.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_link_window(0, LinkWindow::new(Interval::from_secs(0.0, 10.0), 0.5));
        let out = simulate_with_faults(&inst, &mut AllCloudFifo, EngineOptions::default(), &plan)
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(3.0)));
        assert_eq!(out.schedule.up[0].total_length(), Time::new(2.0));
        assert_eq!(out.schedule.exec[0].total_length(), Time::new(1.0));
        assert_eq!(out.stats.restarts, 0);
    }

    #[test]
    fn permanently_down_unit_surfaces_clean_stall_not_event_limit() {
        // The only unit the policy will use fail-stops mid-run. The engine
        // must surface `Stalled` (job can never finish) rather than
        // livelocking into `EventLimit`.
        let inst = single_job_instance(4.0, 0.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.set_edge_dead_from(0, Time::new(2.0));
        let err = simulate_with_faults(&inst, &mut AllEdgeFifo, EngineOptions::default(), &plan)
            .unwrap_err();
        assert!(
            matches!(err, EngineError::Stalled { ref pending, .. } if pending.len() == 1),
            "expected Stalled, got {err:?}"
        );
    }

    #[test]
    fn fault_events_reach_the_observer() {
        struct Capture(Vec<String>);
        impl Observer for Capture {
            fn on_event(&mut self, event: &ObsEvent) {
                self.0.push(event.tag().to_string());
            }
        }
        let inst = single_job_instance(4.0, 0.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, Interval::from_secs(2.0, 3.0));
        let mut cap = Capture(Vec::new());
        simulate_with_faults_observed(
            &inst,
            &mut AllEdgeFifo,
            EngineOptions::default(),
            &plan,
            &mut cap,
        )
        .unwrap();
        assert!(cap.0.iter().any(|t| t == "unit-down"));
        assert!(cap.0.iter().any(|t| t == "unit-up"));
        assert!(cap.0.iter().any(|t| t == "job-killed"));
    }
}
