use super::*;
use crate::activity::{Phase, Target};
use crate::instance::figure1_instance;
use crate::job::{Job, JobId};
use crate::spec::{CloudId, EdgeId, PlatformSpec};
use mmsec_obs::{Event as ObsEvent, Observer};
use mmsec_sim::Time;

/// Sends every job to the cloud processor 0, FIFO priority.
struct AllCloudFifo;
impl OnlineScheduler for AllCloudFifo {
    fn name(&self) -> String {
        "all-cloud-fifo".into()
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        for j in view.pending_jobs() {
            out.push(j, Target::Cloud(CloudId(0)));
        }
    }
}

/// Runs every job locally, FIFO priority.
struct AllEdgeFifo;
impl OnlineScheduler for AllEdgeFifo {
    fn name(&self) -> String {
        "all-edge-fifo".into()
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        for j in view.pending_jobs() {
            out.push(j, Target::Edge);
        }
    }
}

/// Never schedules anything.
struct DoNothing;
impl OnlineScheduler for DoNothing {
    fn name(&self) -> String {
        "do-nothing".into()
    }
    fn decide(&mut self, _view: &SimView<'_>, _out: &mut DirectiveBuffer) {}
}

fn single_job_instance(work: f64, up: f64, dn: f64) -> Instance {
    let spec = PlatformSpec::builder()
        .edges(vec![0.5])
        .cloud_pool(1)
        .build();
    Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, work, up, dn)]).unwrap()
}

#[test]
fn single_cloud_job_timing() {
    let inst = single_job_instance(3.0, 1.0, 2.0);
    let out = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .run()
        .unwrap();
    // up 1 + work 3 + dn 2 = 6.
    assert_eq!(out.schedule.completion[0], Some(Time::new(6.0)));
    assert_eq!(out.schedule.alloc[0], Some(Target::Cloud(CloudId(0))));
    assert_eq!(out.schedule.up[0].total_length(), Time::new(1.0));
    assert_eq!(out.schedule.exec[0].total_length(), Time::new(3.0));
    assert_eq!(out.schedule.dn[0].total_length(), Time::new(2.0));
    assert!(out.stats.events <= 8);
}

#[test]
fn single_edge_job_timing() {
    let inst = single_job_instance(3.0, 1.0, 2.0);
    let out = Simulation::of(&inst)
        .policy(&mut AllEdgeFifo)
        .run()
        .unwrap();
    // 3 work at speed 0.5 → 6 seconds.
    assert_eq!(out.schedule.completion[0], Some(Time::new(6.0)));
    assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
    assert!(out.schedule.up[0].is_empty());
}

#[test]
fn zero_comm_job_skips_phases() {
    let inst = single_job_instance(4.0, 0.0, 0.0);
    let out = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .run()
        .unwrap();
    assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
    assert!(out.schedule.up[0].is_empty());
    assert!(out.schedule.dn[0].is_empty());
}

#[test]
fn release_dates_are_respected() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let jobs = vec![Job::new(EdgeId(0), 5.0, 2.0, 0.0, 0.0)];
    let inst = Instance::new(spec, jobs).unwrap();
    let out = Simulation::of(&inst)
        .policy(&mut AllEdgeFifo)
        .run()
        .unwrap();
    assert_eq!(out.schedule.exec[0].min_start(), Some(Time::new(5.0)));
    assert_eq!(out.schedule.completion[0], Some(Time::new(7.0)));
}

#[test]
fn cloud_serializes_two_jobs() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
        Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();
    let out = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .run()
        .unwrap();
    // J1: up [0,1), exec [1,3), dn [3,4). J2's uplink must wait for the
    // edge send port: up [1,2), exec [3,5), dn [5,6).
    assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
    assert_eq!(out.schedule.completion[1], Some(Time::new(6.0)));
    assert_eq!(out.schedule.up[1].min_start(), Some(Time::new(1.0)));
}

#[test]
fn stalled_scheduler_reports_error() {
    let inst = single_job_instance(1.0, 0.0, 0.0);
    let err = Simulation::of(&inst)
        .policy(&mut DoNothing)
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::Stalled { pending, .. } if pending.len() == 1));
}

/// Stall forensics: a flight recorder riding along a stalled run holds
/// the lead-up events and dumps a parseable artifact naming them.
#[test]
fn stalled_run_flight_dump_holds_the_lead_up_events() {
    use mmsec_obs::{json, FlightRecorder, Shared};
    let inst = single_job_instance(1.0, 0.0, 0.0);
    let flight = Shared::new(FlightRecorder::with_capacity(8));
    let mut engine_side = flight.clone();
    let err = Simulation::of(&inst)
        .policy(&mut DoNothing)
        .observer(&mut engine_side)
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::Stalled { .. }));

    let dir = std::env::temp_dir().join(format!("mmsec-stall-dump-{}", std::process::id()));
    std::env::set_var("MMSEC_FAILURE_DIR", &dir);
    let path = flight
        .with(|f| f.dump("stall-test"))
        .expect("ring has events");
    std::env::remove_var("MMSEC_FAILURE_DIR");
    assert!(path.starts_with(&dir));

    let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("mmsec-flight/1")
    );
    let tags: Vec<&str> = doc
        .get("events")
        .and_then(json::Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("tag").and_then(json::Json::as_str))
        .collect();
    // The lead-up to the stall: the run started, the job was released,
    // and the policy decided (granting nothing) before the engine gave up.
    assert!(tags.contains(&"run-start"), "tags: {tags:?}");
    assert!(tags.contains(&"job-released"), "tags: {tags:?}");
    assert!(tags.contains(&"decide-end"), "tags: {tags:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn infinite_ports_allow_parallel_uplinks() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(2)
        .build();
    // Two jobs from the same edge, each to a different cloud processor.
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 1.0, 2.0, 0.0),
        Job::new(EdgeId(0), 0.0, 1.0, 2.0, 0.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();

    struct SpreadCloud;
    impl OnlineScheduler for SpreadCloud {
        fn name(&self) -> String {
            "spread".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            for j in view.pending_jobs() {
                out.push(j, Target::Cloud(CloudId(j.0 % 2)));
            }
        }
    }

    // One-port: second uplink waits → completions 3 and 5.
    let strict = Simulation::of(&inst)
        .policy(&mut SpreadCloud)
        .run()
        .unwrap();
    assert_eq!(strict.schedule.completion[0], Some(Time::new(3.0)));
    assert_eq!(strict.schedule.completion[1], Some(Time::new(5.0)));

    // Macro-dataflow ablation: both uplinks in parallel → both at 3.
    let loose = Simulation::of(&inst)
        .policy(&mut SpreadCloud)
        .options(EngineOptions {
            infinite_ports: true,
            ..EngineOptions::default()
        })
        .run()
        .unwrap();
    assert_eq!(loose.schedule.completion[0], Some(Time::new(3.0)));
    assert_eq!(loose.schedule.completion[1], Some(Time::new(3.0)));
}

/// Starts the job on the edge, then retargets it to the cloud at the
/// second decision.
struct Flip {
    calls: u32,
}
impl OnlineScheduler for Flip {
    fn name(&self) -> String {
        "flip".into()
    }
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
        self.calls += 1;
        let tgt = if self.calls == 1 {
            Target::Edge
        } else {
            Target::Cloud(CloudId(0))
        };
        for j in view.pending_jobs() {
            out.push(j, tgt);
        }
    }
}

#[test]
fn reexecution_wipes_progress() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let jobs = vec![Job::new(EdgeId(0), 0.0, 4.0, 1.0, 1.0)];
    let inst = Instance::new(spec, jobs).unwrap();

    // Add a decoy job released at t=2 to create a mid-flight event (after
    // 4 work-seconds would be too late, so we force an artificial event
    // via a second job's release).
    let mut jobs2 = inst.jobs.clone();
    jobs2.push(Job::new(EdgeId(0), 2.0, 0.5, 10.0, 10.0));
    let inst2 = Instance::new(inst.spec.clone(), jobs2).unwrap();
    let out = Simulation::of(&inst2)
        .policy(&mut Flip { calls: 0 })
        .run()
        .unwrap();
    // J1 runs on edge [0,2) (2 of 4 work done), then restarts on the
    // cloud at t=2: up [2,3), exec [3,7), dn [7,8).
    assert_eq!(out.schedule.completion[0], Some(Time::new(8.0)));
    assert_eq!(out.schedule.restarts[0], 1);
    assert_eq!(out.schedule.wasted_time(), Time::new(2.0));
    assert_eq!(out.stats.restarts, 1);
    assert_eq!(out.schedule.alloc[0], Some(Target::Cloud(CloudId(0))));
}

#[test]
fn reexecution_can_be_disabled() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 4.0, 1.0, 1.0),
        Job::new(EdgeId(0), 2.0, 0.5, 10.0, 10.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();

    let out = Simulation::of(&inst)
        .policy(&mut Flip { calls: 0 })
        .options(EngineOptions {
            allow_reexecution: false,
            ..EngineOptions::default()
        })
        .run()
        .unwrap();
    // The retarget is refused: J1 stays on the edge, finishing at 4.
    assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
    assert_eq!(out.schedule.restarts[0], 0);
    assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
}

#[test]
fn non_preemptive_mode_pins_activities() {
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(0)
        .build();
    // Long job first, short job released mid-flight. LIFO priority
    // would preempt; non-preemptive mode must refuse.
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
        Job::new(EdgeId(0), 1.0, 1.0, 0.0, 0.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();

    struct Lifo;
    impl OnlineScheduler for Lifo {
        fn name(&self) -> String {
            "lifo".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            let mut v: Vec<_> = view.pending_jobs().collect();
            v.reverse();
            for j in v {
                out.push(j, Target::Edge);
            }
        }
    }

    let preemptive = Simulation::of(&inst).policy(&mut Lifo).run().unwrap();
    assert_eq!(preemptive.schedule.completion[1], Some(Time::new(2.0)));
    assert_eq!(preemptive.schedule.completion[0], Some(Time::new(11.0)));

    let nonpre = Simulation::of(&inst)
        .policy(&mut Lifo)
        .options(EngineOptions {
            allow_preemption: false,
            ..EngineOptions::default()
        })
        .run()
        .unwrap();
    assert_eq!(nonpre.schedule.completion[0], Some(Time::new(10.0)));
    assert_eq!(nonpre.schedule.completion[1], Some(Time::new(11.0)));
}

#[test]
fn unavailability_window_pauses_cloud_compute() {
    use mmsec_sim::Interval;
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build()
        .with_cloud_unavailability(CloudId(0), &[Interval::from_secs(2.0, 5.0)]);
    let jobs = vec![Job::new(EdgeId(0), 0.0, 4.0, 1.0, 0.0)];
    let inst = Instance::new(spec, jobs).unwrap();
    let out = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .run()
        .unwrap();
    // up [0,1), exec [1,2) then paused during [2,5), exec [5,8).
    assert_eq!(out.schedule.completion[0], Some(Time::new(8.0)));
    assert_eq!(out.schedule.exec[0].total_length(), Time::new(4.0));
    assert_eq!(out.schedule.exec[0].len(), 2);
}

#[test]
fn figure1_runs_under_fifo_policies() {
    let inst = figure1_instance();
    let out = Simulation::of(&inst)
        .policy(&mut AllEdgeFifo)
        .run()
        .unwrap();
    assert!(out.schedule.all_finished());
    let out = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .run()
        .unwrap();
    assert!(out.schedule.all_finished());
}

#[test]
fn event_log_records_decisions() {
    let inst = single_job_instance(3.0, 1.0, 2.0);
    let out = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .options(EngineOptions {
            record_events: true,
            ..EngineOptions::default()
        })
        .run()
        .unwrap();
    let log = out.event_log.expect("log recorded");
    assert!(!log.is_empty());
    // First decision at t = 0 activates the uplink.
    assert_eq!(log[0].time, Time::ZERO);
    assert_eq!(log[0].pending, 1);
    assert_eq!(
        log[0].activations,
        vec![(JobId(0), Phase::Uplink, Target::Cloud(CloudId(0)))]
    );
    // Times are non-decreasing; phases progress up → exec → down.
    for w in log.windows(2) {
        assert!(w[0].time <= w[1].time);
    }
    // Without the option, no log is produced.
    let out = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .run()
        .unwrap();
    assert!(out.event_log.is_none());
}

#[test]
fn observed_run_emits_a_well_formed_event_stream() {
    struct Capture(Vec<String>, usize, usize);
    impl Observer for Capture {
        fn on_event(&mut self, event: &ObsEvent) {
            self.0.push(event.tag().to_string());
            match event {
                ObsEvent::Placed { interval, .. } => {
                    assert!(interval.length() > Time::ZERO);
                    self.1 += 1;
                }
                ObsEvent::Completed { response, .. } => {
                    assert!(*response > 0.0);
                    self.2 += 1;
                }
                _ => {}
            }
        }
    }
    let inst = figure1_instance();
    let mut cap = Capture(Vec::new(), 0, 0);
    let out = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .observer(&mut cap)
        .run()
        .unwrap();
    let Capture(tags, placed, completed) = cap;
    assert_eq!(tags.first().map(String::as_str), Some("run-start"));
    assert_eq!(tags.last().map(String::as_str), Some("run-end"));
    assert_eq!(tags.iter().filter(|t| *t == "job-released").count(), 6);
    assert_eq!(completed, 6);
    // Each cloud job contributes at least uplink + compute + downlink.
    assert!(placed >= 3 * 6, "only {placed} placements observed");
    // Every decide-start is eventually closed by a decide-end.
    assert_eq!(
        tags.iter().filter(|t| *t == "decide-start").count(),
        tags.iter().filter(|t| *t == "decide-end").count()
    );
    // The observed run produces the same schedule as the plain one.
    let plain = Simulation::of(&inst)
        .policy(&mut AllCloudFifo)
        .run()
        .unwrap();
    assert_eq!(out.schedule, plain.schedule);
}

#[test]
fn event_limit_guards_against_livelock() {
    let inst = single_job_instance(1e9, 0.0, 0.0);
    let err = Simulation::of(&inst)
        .policy(&mut AllEdgeFifo)
        .options(EngineOptions {
            max_events: Some(0),
            ..EngineOptions::default()
        })
        .run()
        .unwrap_err();
    assert_eq!(err, EngineError::EventLimit { limit: 0 });
}

#[test]
fn auto_event_limit_catches_livelocked_policy() {
    // A genuinely livelocked policy: it flips the single job between two
    // cloud processors at every decision. Each uplink completion triggers
    // a decision, the retarget wipes the uplink progress, and a fresh
    // uplink starts — the simulation generates events forever without
    // ever finishing the job. The automatic `1000 + 64·n + 8·w` cap (see
    // `events::auto_event_limit`) must abort the run.
    struct Thrash {
        calls: u64,
    }
    impl OnlineScheduler for Thrash {
        fn name(&self) -> String {
            "thrash".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            self.calls += 1;
            let tgt = Target::Cloud(CloudId((self.calls % 2) as usize));
            for j in view.pending_jobs() {
                out.push(j, tgt);
            }
        }
    }

    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(2)
        .build();
    let jobs = vec![Job::new(EdgeId(0), 0.0, 1.0, 1.0, 1.0)];
    let inst = Instance::new(spec, jobs).unwrap();
    let expected = events::auto_event_limit(&inst);
    assert_eq!(expected, 1000 + 64);
    let err = Simulation::of(&inst)
        .policy(&mut Thrash { calls: 0 })
        .run()
        .unwrap_err();
    assert_eq!(err, EngineError::EventLimit { limit: expected });
}

#[test]
fn pending_set_is_maintained_incrementally() {
    // Two staggered jobs: the event log's pending counts must follow the
    // release/completion lifecycle exactly.
    let spec = PlatformSpec::builder()
        .edges(vec![1.0])
        .cloud_pool(1)
        .build();
    let jobs = vec![
        Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
        Job::new(EdgeId(0), 1.0, 2.0, 0.0, 0.0),
    ];
    let inst = Instance::new(spec, jobs).unwrap();
    let out = Simulation::of(&inst)
        .policy(&mut AllEdgeFifo)
        .options(EngineOptions {
            record_events: true,
            ..EngineOptions::default()
        })
        .run()
        .unwrap();
    let log = out.event_log.expect("log recorded");
    let counts: Vec<_> = log.iter().map(|r| r.pending).collect();
    // t=0: job 0 pending; t=1: both pending; t=2: job 0 done, job 1 left.
    assert_eq!(counts, vec![1, 2, 1]);
}

// ---------------------------------------------------------------------------
// Fault injection (see `mmsec-faults` and `docs/faults.md`).
// ---------------------------------------------------------------------------

mod faults {
    use super::*;
    use mmsec_faults::{FaultPlan, LinkWindow};
    use mmsec_sim::Interval;

    #[test]
    fn empty_plan_is_bit_identical_to_fault_free_run() {
        let inst = figure1_instance();
        let plain = Simulation::of(&inst)
            .policy(&mut AllCloudFifo)
            .run()
            .unwrap();
        let plan = FaultPlan::empty(inst.spec.num_edge(), inst.spec.num_cloud());
        let faulted = Simulation::of(&inst)
            .policy(&mut AllCloudFifo)
            .faults(&plan)
            .run()
            .unwrap();
        assert_eq!(plain.schedule, faulted.schedule);
        assert_eq!(plain.stats.events, faulted.stats.events);
    }

    #[test]
    fn edge_crash_wipes_local_progress_and_restarts() {
        // Work 4 at edge speed 0.5 → 8 s nominally. The crash at t = 2
        // wipes the first unit of work; the job restarts from scratch when
        // the edge recovers at t = 3 and finishes at 3 + 8 = 11.
        let inst = single_job_instance(4.0, 0.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, Interval::from_secs(2.0, 3.0));
        let out = Simulation::of(&inst)
            .policy(&mut AllEdgeFifo)
            .faults(&plan)
            .run()
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(11.0)));
        assert_eq!(out.stats.restarts, 1);
    }

    #[test]
    fn cloud_crash_during_downlink_rereleases_instead_of_completing() {
        // Phases without faults: up [0,1), exec [1,2), dn [2,4) → C = 4.
        // The cloud crashes at t = 2.5 — mid-downlink, after the compute
        // has finished. Paper restart semantics: the result is lost and the
        // job re-runs from scratch, it does NOT silently complete. The
        // re-run waits for recovery at t = 3 (the down cloud's ports are
        // blocked): up [3,4), exec [4,5), dn [5,7).
        let inst = single_job_instance(1.0, 1.0, 2.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_cloud_down(0, Interval::from_secs(2.5, 3.0));
        let out = Simulation::of(&inst)
            .policy(&mut AllCloudFifo)
            .faults(&plan)
            .run()
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(7.0)));
        assert_eq!(out.stats.restarts, 1);
    }

    #[test]
    fn origin_edge_crash_pauses_cloud_committed_job_without_restart() {
        // Up 2, work 1, no downlink → C = 3 without faults. The origin
        // edge goes down during the uplink [1, 2): a cloud-committed job is
        // not killed — its data is already (partially) off the edge — but
        // the edge's ports are blocked, so the uplink pauses and resumes on
        // recovery with progress intact: up [0,1) ∪ [2,3), exec [3,4).
        let inst = single_job_instance(1.0, 2.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, Interval::from_secs(1.0, 2.0));
        let out = Simulation::of(&inst)
            .policy(&mut AllCloudFifo)
            .faults(&plan)
            .run()
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
        assert_eq!(out.stats.restarts, 0);
        assert_eq!(out.schedule.up[0].total_length(), Time::new(2.0));
    }

    #[test]
    fn link_outage_pauses_comm_without_restart() {
        // Same shape as above but through a link window with factor 0: the
        // edge CPU stays usable, only the ports are blocked.
        let inst = single_job_instance(1.0, 2.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_link_window(0, LinkWindow::new(Interval::from_secs(1.0, 2.0), 0.0));
        let out = Simulation::of(&inst)
            .policy(&mut AllCloudFifo)
            .faults(&plan)
            .run()
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
        assert_eq!(out.stats.restarts, 0);
    }

    #[test]
    fn link_degradation_slows_comm_only() {
        // Factor 0.5 over the whole run: the 1-second uplink takes 2
        // seconds, the compute is unaffected → up [0,2), exec [2,3).
        let inst = single_job_instance(1.0, 1.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_link_window(0, LinkWindow::new(Interval::from_secs(0.0, 10.0), 0.5));
        let out = Simulation::of(&inst)
            .policy(&mut AllCloudFifo)
            .faults(&plan)
            .run()
            .unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(3.0)));
        assert_eq!(out.schedule.up[0].total_length(), Time::new(2.0));
        assert_eq!(out.schedule.exec[0].total_length(), Time::new(1.0));
        assert_eq!(out.stats.restarts, 0);
    }

    #[test]
    fn permanently_down_unit_surfaces_clean_stall_not_event_limit() {
        // The only unit the policy will use fail-stops mid-run. The engine
        // must surface `Stalled` (job can never finish) rather than
        // livelocking into `EventLimit`.
        let inst = single_job_instance(4.0, 0.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.set_edge_dead_from(0, Time::new(2.0));
        let err = Simulation::of(&inst)
            .policy(&mut AllEdgeFifo)
            .faults(&plan)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, EngineError::Stalled { ref pending, .. } if pending.len() == 1),
            "expected Stalled, got {err:?}"
        );
    }

    #[test]
    fn fault_events_reach_the_observer() {
        struct Capture(Vec<String>);
        impl Observer for Capture {
            fn on_event(&mut self, event: &ObsEvent) {
                self.0.push(event.tag().to_string());
            }
        }
        let inst = single_job_instance(4.0, 0.0, 0.0);
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, Interval::from_secs(2.0, 3.0));
        let mut cap = Capture(Vec::new());
        Simulation::of(&inst)
            .policy(&mut AllEdgeFifo)
            .faults(&plan)
            .observer(&mut cap)
            .run()
            .unwrap();
        assert!(cap.0.iter().any(|t| t == "unit-down"));
        assert!(cap.0.iter().any(|t| t == "unit-up"));
        assert!(cap.0.iter().any(|t| t == "job-killed"));
    }
}

// ---------------------------------------------------------------------------
// Streaming sessions (see `engine::session`).
// ---------------------------------------------------------------------------

mod session {
    use super::*;

    #[test]
    fn mid_run_submit_is_bit_identical_to_batch() {
        // Batch: both jobs known up front.
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(1)
            .build();
        let j0 = Job::new(EdgeId(0), 0.0, 3.0, 1.0, 1.0);
        let j1 = Job::new(EdgeId(0), 3.0, 2.0, 1.0, 1.0);
        let batch_inst = Instance::new(spec.clone(), vec![j0, j1]).unwrap();
        let batch = Simulation::of(&batch_inst)
            .policy(&mut AllCloudFifo)
            .run()
            .unwrap();

        // Session: the second job arrives only once time has reached its
        // release date.
        let inst = Instance::new(spec, vec![j0]).unwrap();
        let mut policy = AllCloudFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        assert_eq!(
            session.run_until(Time::new(3.0)).unwrap(),
            SessionStatus::Reached
        );
        let id = session.submit(j1).unwrap();
        assert_eq!(id, JobId(1));
        session.drain().unwrap();
        let out = session.into_outcome();

        assert_eq!(out.schedule, batch.schedule);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let inst = single_job_instance(3.0, 1.0, 2.0); // completes at 6.
        let mut policy = AllCloudFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        assert_eq!(
            session.run_until(Time::new(2.5)).unwrap(),
            SessionStatus::Reached
        );
        assert_eq!(session.now(), Time::new(2.5));
        // Re-requesting the same bound is a cheap no-op, not an event.
        let events = session.snapshot().run.events;
        assert_eq!(
            session.run_until(Time::new(2.5)).unwrap(),
            SessionStatus::Reached
        );
        assert_eq!(session.snapshot().run.events, events);
        // A generous bound runs to completion.
        assert_eq!(
            session.run_until(Time::new(100.0)).unwrap(),
            SessionStatus::Done
        );
        assert!(session.is_idle());
        let out = session.into_outcome();
        assert_eq!(out.schedule.completion[0], Some(Time::new(6.0)));
    }

    #[test]
    fn pause_does_not_change_the_schedule() {
        let inst = figure1_instance();
        let mut policy = AllCloudFifo;
        let batch = Simulation::of(&inst).policy(&mut policy).run().unwrap();

        let mut policy = AllCloudFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        // Pause at many awkward instants, including repeats.
        for k in 1..40 {
            session.run_until(Time::new(k as f64 * 0.7)).unwrap();
        }
        session.drain().unwrap();
        assert_eq!(session.into_outcome().schedule, batch.schedule);
    }

    #[test]
    fn blocked_session_wakes_on_submit() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0)]).unwrap();
        let mut policy = DoNothing;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        // The scheduler grants nothing and no future event exists.
        assert_eq!(session.step().unwrap(), SessionStatus::Blocked);
        // A blocked session is resumable: new work re-arms the queue.
        session
            .submit(Job::new(EdgeId(0), 5.0, 1.0, 0.0, 0.0))
            .unwrap();
        assert_eq!(session.step().unwrap(), SessionStatus::Advanced);
        assert_eq!(session.now(), Time::new(5.0));
        // Draining while jobs can never finish is the batch stall.
        assert!(matches!(session.drain(), Err(EngineError::Stalled { .. })));
    }

    #[test]
    fn late_submission_runs_now_but_keeps_declared_release() {
        let inst = single_job_instance(1.0, 0.0, 0.0); // edge speed 0.5: done at 2.
        let mut policy = AllEdgeFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        assert_eq!(
            session.run_until(Time::new(4.0)).unwrap(),
            SessionStatus::Done
        );
        // `Done` leaves the clock at the last completion (t = 2), and the
        // declared release 1.0 lies in the past: the job starts now.
        assert_eq!(session.now(), Time::new(2.0));
        session
            .submit(Job::new(EdgeId(0), 1.0, 1.0, 0.0, 0.0))
            .unwrap();
        session.drain().unwrap();
        let recs = session.take_completions();
        assert_eq!(recs.len(), 2);
        let late = recs[1];
        assert_eq!(late.release, Time::new(1.0));
        assert_eq!(late.completion, Time::new(4.0)); // starts at 2, runs 2.
                                                     // Stretch is measured from the declared release, over the fastest
                                                     // processing time min(t^e, t^c) = min(2, 1): (4 − 1) / 1.
        assert!((late.stretch - 3.0).abs() < 1e-12);
        // Records are handed over exactly once.
        assert!(session.take_completions().is_empty());
    }

    #[test]
    fn snapshot_tracks_progress() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0),
            Job::new(EdgeId(0), 10.0, 1.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut policy = AllEdgeFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();

        let s = session.snapshot();
        assert_eq!((s.submitted, s.completed, s.unfinished), (2, 0, 2));

        session.run_until(Time::new(5.0)).unwrap();
        let s = session.snapshot();
        assert_eq!((s.submitted, s.completed, s.unfinished), (2, 1, 1));
        assert_eq!(s.pending, 0); // second job not released yet.
        assert_eq!(s.max_stretch, 1.0);

        session.drain().unwrap();
        let s = session.snapshot();
        assert_eq!((s.completed, s.unfinished, s.pending), (2, 0, 0));
        assert_eq!(s.now, Time::new(11.0));
    }

    #[test]
    fn submit_rejects_bad_origin() {
        let inst = single_job_instance(1.0, 0.0, 0.0);
        let mut policy = AllEdgeFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        let bad = Job::new(EdgeId(7), 0.0, 1.0, 0.0, 0.0);
        assert!(matches!(
            session.submit(bad),
            Err(crate::instance::InstanceError::OriginOutOfRange { .. })
        ));
    }

    #[test]
    fn presubmission_can_move_the_start_of_time_backwards() {
        // The instance's only job releases at 10; a pre-start submission
        // at 2 must run first — the clock snaps to the earliest event.
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 10.0, 1.0, 0.0, 0.0)]).unwrap();
        let mut policy = AllEdgeFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        session
            .submit(Job::new(EdgeId(0), 2.0, 1.0, 0.0, 0.0))
            .unwrap();
        session.drain().unwrap();
        let out = session.into_outcome();
        assert_eq!(out.schedule.completion[1], Some(Time::new(3.0)));
        assert_eq!(out.schedule.completion[0], Some(Time::new(11.0)));
    }
}

mod elastic {
    use super::*;
    use crate::state::{PlatformError, PlatformMutation};

    /// Sends every pending job to the first *available* cloud, falling
    /// back to the origin edge — the simplest policy that reacts to
    /// membership changes.
    struct CloudIfUp;
    impl OnlineScheduler for CloudIfUp {
        fn name(&self) -> String {
            "cloud-if-up".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            let target = view
                .spec()
                .clouds()
                .find(|&k| view.cloud_available(k))
                .map_or(Target::Edge, Target::Cloud);
            for j in view.pending_jobs() {
                out.push(j, target);
            }
        }
    }

    fn one_edge_instance(edge_speed: f64, num_cloud: usize) -> Instance {
        let spec = PlatformSpec::builder()
            .edges(vec![edge_speed])
            .cloud_pool(num_cloud)
            .build();
        Instance::new(spec, Vec::new()).unwrap()
    }

    #[test]
    fn mutations_version_and_reject_typed() {
        let inst = one_edge_instance(1.0, 1);
        let mut policy = CloudIfUp;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        assert_eq!(session.platform().version(), 1);
        assert!(!session.platform().is_dynamic());

        let j = session.add_edge(0.5).unwrap();
        assert_eq!(j, EdgeId(1));
        assert_eq!(session.platform().version(), 2);
        assert!(session.platform().is_dynamic());
        let k = session.add_cloud(2.0).unwrap();
        assert_eq!(k, CloudId(1));
        assert_eq!(session.platform().version(), 3);

        // Typed rejections, none of which burn a version.
        assert!(matches!(
            session.remove_edge(EdgeId(9)),
            Err(PlatformError::UnknownEdge { edge: 9 })
        ));
        assert!(matches!(
            session.set_cloud_speed(CloudId(0), -1.0),
            Err(PlatformError::BadSpeed { .. })
        ));
        session.remove_cloud(CloudId(1)).unwrap();
        assert!(matches!(
            session.remove_cloud(CloudId(1)),
            Err(PlatformError::AlreadyRemoved { .. })
        ));
        session.remove_edge(EdgeId(1)).unwrap();
        assert!(matches!(
            session.remove_edge(EdgeId(0)),
            Err(PlatformError::LastEdge)
        ));
        assert_eq!(session.platform().version(), 5);
        assert_eq!(session.platform().num_edges_live(), 1);
        assert_eq!(session.platform().num_clouds_live(), 1);
    }

    #[test]
    fn submit_to_removed_edge_is_rejected() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0, 1.0])
            .cloud_pool(0)
            .build();
        let inst = Instance::new(spec, Vec::new()).unwrap();
        let mut policy = AllEdgeFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        session.remove_edge(EdgeId(1)).unwrap();
        let job = Job::new(EdgeId(1), 0.0, 1.0, 0.0, 0.0);
        assert!(matches!(
            session.submit(job),
            Err(crate::instance::InstanceError::OriginOutOfRange { .. })
        ));
        // The surviving edge still accepts work.
        session
            .submit(Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0))
            .unwrap();
        session.drain().unwrap();
        assert_eq!(
            session.into_outcome().schedule.completion[0],
            Some(Time::new(1.0))
        );
    }

    #[test]
    fn remove_edge_with_unfinished_jobs_is_origin_in_use() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0, 1.0])
            .cloud_pool(0)
            .build();
        let inst = Instance::new(
            spec,
            vec![
                Job::new(EdgeId(1), 0.0, 5.0, 0.0, 0.0),
                Job::new(EdgeId(1), 0.0, 1.0, 0.0, 0.0),
            ],
        )
        .unwrap();
        let mut policy = AllEdgeFifo;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        assert!(matches!(
            session.remove_edge(EdgeId(1)),
            Err(PlatformError::OriginInUse {
                edge: 1,
                unfinished: 2
            })
        ));
        session.drain().unwrap();
        // Once its jobs finished, the unit may leave.
        session.remove_edge(EdgeId(1)).unwrap();
        assert_eq!(session.platform().version(), 2);
    }

    #[test]
    fn remove_cloud_kills_in_flight_work() {
        let inst = one_edge_instance(1.0, 1);
        let mut policy = CloudIfUp;
        let mut obs = crate::engine::tests::elastic::EventTags::default();
        let mut session = Simulation::of(&inst)
            .policy(&mut policy)
            .observer(&mut obs)
            .session();
        // Cloud route: 1s up + 4s work + 1s down = 6; edge route: 4s.
        session
            .submit(Job::new(EdgeId(0), 0.0, 4.0, 1.0, 1.0))
            .unwrap();
        session.run_until(Time::new(2.0)).unwrap();
        // Mid-work on the cloud (upload finished at 1): the processor
        // leaves, in-flight progress is lost, and the job falls back to
        // the edge for a fresh 4s run.
        session.remove_cloud(CloudId(0)).unwrap();
        session.drain().unwrap();
        let out = session.into_outcome();
        assert_eq!(out.schedule.completion[0], Some(Time::new(6.0)));
        assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
        assert_eq!(out.stats.restarts, 1);
        assert!(obs.0.iter().any(|t| t == "job-killed"));
        assert!(obs.0.iter().any(|t| t == "platform-changed"));
    }

    #[test]
    fn mid_run_cloud_join_rescues_a_slow_edge() {
        // A slow edge grinds at 0.1; a fast cloud joining at t=1 takes
        // over (re-execution from scratch beats staying put).
        let inst = one_edge_instance(0.1, 0);
        let mut policy = CloudIfUp;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        session
            .submit(Job::new(EdgeId(0), 0.0, 1.0, 0.01, 0.01))
            .unwrap();
        session.run_until(Time::new(1.0)).unwrap();
        let k = session.add_cloud(10.0).unwrap();
        assert_eq!(k, CloudId(0));
        session.drain().unwrap();
        let out = session.into_outcome();
        assert_eq!(out.schedule.alloc[0], Some(Target::Cloud(CloudId(0))));
        let c = out.schedule.completion[0].unwrap().seconds();
        // 1 (join) + 0.01 up + 0.1 work + 0.01 down, far below the 10s
        // edge-only completion.
        assert!((c - 1.12).abs() < 1e-9, "completion {c}");
        assert_eq!(out.stats.restarts, 1);
    }

    #[test]
    fn mutations_on_drained_session_are_allowed() {
        let inst = one_edge_instance(1.0, 1);
        let mut policy = CloudIfUp;
        let mut session = Simulation::of(&inst).policy(&mut policy).session();
        session
            .submit(Job::new(EdgeId(0), 0.0, 1.0, 1.0, 1.0))
            .unwrap();
        session.drain().unwrap();
        // A drained session is not dead: the platform can keep evolving
        // and accept more work (serve does exactly this between beats).
        let v = session
            .apply_platform(PlatformMutation::AddCloud { speed: 3.0 })
            .unwrap();
        assert_eq!(v, 2);
        session.remove_cloud(CloudId(0)).unwrap();
        session
            .submit(Job::new(EdgeId(0), 10.0, 1.0, 0.1, 0.1))
            .unwrap();
        session.drain().unwrap();
        let out = session.into_outcome();
        assert_eq!(out.schedule.alloc[1], Some(Target::Cloud(CloudId(1))));
        assert!(out.schedule.all_finished());
    }

    /// Tag-collecting observer shared by the elastic tests.
    #[derive(Default)]
    pub(super) struct EventTags(Vec<String>);
    impl Observer for EventTags {
        fn on_event(&mut self, event: &ObsEvent) {
            self.0.push(event.tag().to_string());
        }
    }
}
