//! Engine events: the queue of future decision points and the mapping of
//! engine happenings onto the observer taxonomy.

use crate::activity::{Phase, Target};
use crate::instance::Instance;
use crate::job::JobId;
use crate::spec::{CloudId, EdgeId};
use mmsec_faults::{FaultBoundary, FaultPlan};
use mmsec_obs::{PhaseKind, Unit};
use mmsec_sim::{CalendarQueue, EventQueue, Time};

/// A future decision point known in advance (phase completions are
/// discovered dynamically and never enter the queue: the engine advances
/// time directly to the earliest one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum EngineEvent {
    /// A job becomes available for scheduling.
    Release(JobId),
    /// Cloud availability-window boundary: a pure decision point.
    Boundary,
    /// Fault injection: edge server crashes (work in flight on it is lost).
    EdgeDown(EdgeId),
    /// Fault injection: edge server recovers.
    EdgeUp(EdgeId),
    /// Fault injection: cloud processor crashes.
    CloudDown(CloudId),
    /// Fault injection: cloud processor recovers.
    CloudUp(CloudId),
    /// Fault injection: the link capacity of an edge changes (the new
    /// factor is read back from the [`FaultPlan`] at the event's time).
    LinkChange(EdgeId),
}

/// Boundaries fire before releases at equal times so that a decision taken
/// at the instant a window opens/closes already sees the new availability.
/// Fault recoveries share the boundary rank and fault crashes follow them,
/// so two windows touching at an instant net to "down" at that instant
/// (half-open windows: recovery applies first, then the next crash).
/// Releases keep firing last. With no fault plan the queue only ever holds
/// boundaries and releases, whose relative order is unchanged — fault-free
/// runs stay bit-identical to the pre-fault engine.
pub(super) const RANK_BOUNDARY: u8 = 0;
pub(super) const RANK_FAULT_UP: u8 = 0;
pub(super) const RANK_FAULT_DOWN: u8 = 1;
pub(super) const RANK_RELEASE: u8 = 2;

/// Whether events of `rank` are decision-relevant: firing one can change
/// what a policy would decide, so the engine bumps its decision epoch.
/// Every rank currently queued qualifies — boundaries flip blocked
/// resources, fault transitions flip availability, releases change the
/// pending membership. The classification is by rank (via
/// [`mmsec_sim::EventQueue::pop_ranked`]) so a future bookkeeping-only
/// rank can opt out without the engine matching on payloads; the one
/// payload-level refinement is a [`EngineEvent::LinkChange`] that re-reads
/// an unchanged factor, which the engine demotes to a no-op itself.
pub(super) fn rank_is_decision_relevant(rank: u8) -> bool {
    matches!(rank, RANK_BOUNDARY | RANK_FAULT_DOWN | RANK_RELEASE)
}

/// True for events that replay the fault plan (crashes, recoveries, link
/// changes). The phase profiler attributes their handling to its
/// fault-replay phase instead of the general event-pop span.
pub(super) fn is_fault_event(ev: &EngineEvent) -> bool {
    !matches!(ev, EngineEvent::Release(_) | EngineEvent::Boundary)
}

/// The engine's future-event queue: the calendar queue on the hot path,
/// with the reference binary heap selectable per run
/// ([`super::EngineOptions::reference_queue`]). Both pop in the exact same
/// `(time, rank, seq)` order, so which variant a run uses is unobservable
/// in its schedule — pinned by the engine equivalence proptests, which run
/// one engine per variant and compare outcomes bit-for-bit.
#[derive(Clone, Debug)]
pub(super) enum EngineQueue {
    /// Calendar/bucket queue (the default).
    Calendar(CalendarQueue<EngineEvent>),
    /// Reference binary heap.
    Heap(EventQueue<EngineEvent>),
}

impl EngineQueue {
    /// Creates an empty queue of the requested variant.
    pub(super) fn new(reference: bool) -> Self {
        if reference {
            EngineQueue::Heap(EventQueue::new())
        } else {
            EngineQueue::Calendar(CalendarQueue::new())
        }
    }

    /// Number of pending events.
    pub(super) fn len(&self) -> usize {
        match self {
            EngineQueue::Calendar(q) => q.len(),
            EngineQueue::Heap(q) => q.len(),
        }
    }

    /// True when no events are pending.
    pub(super) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `payload` at `time` with tie-break `rank`.
    #[inline]
    pub(super) fn push(&mut self, time: Time, rank: u8, payload: EngineEvent) {
        match self {
            EngineQueue::Calendar(q) => q.push(time, rank, payload),
            EngineQueue::Heap(q) => q.push(time, rank, payload),
        }
    }

    /// Time of the next event without removing it.
    #[inline]
    pub(super) fn peek_time(&self) -> Option<Time> {
        match self {
            EngineQueue::Calendar(q) => q.peek_time(),
            EngineQueue::Heap(q) => q.peek_time(),
        }
    }

    /// Removes and returns the next event as `(time, payload)` (the engine
    /// itself always wants the rank; tests use this shorthand).
    #[cfg(test)]
    pub(super) fn pop(&mut self) -> Option<(Time, EngineEvent)> {
        match self {
            EngineQueue::Calendar(q) => q.pop(),
            EngineQueue::Heap(q) => q.pop(),
        }
    }

    /// Removes and returns the next event as `(time, rank, payload)`.
    #[inline]
    pub(super) fn pop_ranked(&mut self) -> Option<(Time, u8, EngineEvent)> {
        match self {
            EngineQueue::Calendar(q) => q.pop_ranked(),
            EngineQueue::Heap(q) => q.pop_ranked(),
        }
    }
}

/// Pushes every availability boundary of a compiled fault plan into the
/// queue (called right after [`prime_queue`] when a plan is supplied).
pub(super) fn prime_faults(queue: &mut EngineQueue, plan: &FaultPlan) {
    for b in plan.boundaries() {
        // Recoveries take the earlier rank (see the rank table above);
        // crashes and link changes fire after them at equal times.
        let rank = if b.is_recovery() {
            RANK_FAULT_UP
        } else {
            RANK_FAULT_DOWN
        };
        let event = match b {
            FaultBoundary::EdgeDown(j, _) => EngineEvent::EdgeDown(EdgeId(j)),
            FaultBoundary::EdgeUp(j, _) => EngineEvent::EdgeUp(EdgeId(j)),
            FaultBoundary::CloudDown(k, _) => EngineEvent::CloudDown(CloudId(k)),
            FaultBoundary::CloudUp(k, _) => EngineEvent::CloudUp(CloudId(k)),
            FaultBoundary::LinkChange(j, _) => EngineEvent::LinkChange(EdgeId(j)),
        };
        queue.push(b.time(), rank, event);
    }
}

/// Builds the initial event queue: one release per job plus both
/// boundaries of every cloud availability window. `reference` selects the
/// binary-heap variant over the calendar queue.
pub(super) fn prime_queue(instance: &Instance, reference: bool) -> EngineQueue {
    let mut queue = EngineQueue::new(reference);
    for (id, job) in instance.iter_jobs() {
        queue.push(job.release, RANK_RELEASE, EngineEvent::Release(id));
    }
    let spec = &instance.spec;
    for k in spec.clouds() {
        for w in spec.cloud_unavailability(k).iter() {
            queue.push(w.start(), RANK_BOUNDARY, EngineEvent::Boundary);
            queue.push(w.end(), RANK_BOUNDARY, EngineEvent::Boundary);
        }
    }
    queue
}

/// Automatic event cap used when [`super::EngineOptions::max_events`] is
/// `None`: `1000 + 64·n + 8·w`, where `n` is the number of jobs and `w`
/// the total number of cloud availability windows.
///
/// Rationale: a well-behaved policy generates O(1) events per job — one
/// release, at most three phase completions, and a bounded number of
/// re-execution points — so `64·n` leaves a generous ~20× margin over the
/// worst observed policies; each availability window adds two boundary
/// events plus the pause/resume churn around them, covered by `8·w`; the
/// `1000` floor keeps tiny instances from tripping the cap during
/// pathological-but-finite warm-up behavior. A policy that exceeds this
/// budget is almost certainly livelocked (e.g. retargeting a job forever,
/// wiping its progress each time, so the simulation never advances) and
/// the run is aborted with [`super::EngineError::EventLimit`].
pub fn auto_event_limit(instance: &Instance) -> u64 {
    1000 + 64 * instance.num_jobs() as u64 + 8 * total_windows(instance) as u64
}

/// Like [`auto_event_limit`], with a fault plan contributing `8` events
/// per fault window — two boundaries plus the kill/replace churn around
/// each — mirroring the budget of cloud availability windows.
pub fn auto_event_limit_with_faults(instance: &Instance, plan: &FaultPlan) -> u64 {
    auto_event_limit(instance) + 8 * plan.total_windows() as u64
}

/// Total number of cloud availability windows over all cloud processors.
pub(super) fn total_windows(instance: &Instance) -> usize {
    instance
        .spec
        .clouds()
        .map(|k| instance.spec.cloud_unavailability(k).len())
        .sum()
}

/// Resource a `phase` of a job occupies, in observer terms: communications
/// are attributed to the origin edge's ports, computations to the unit
/// that executes them.
pub(super) fn obs_unit(origin: EdgeId, target: Target, phase: Phase) -> Unit {
    match (phase, target) {
        (Phase::Compute, Target::Cloud(k)) => Unit::Cloud(k.0),
        (Phase::Compute, Target::Edge) => Unit::Edge(origin.0),
        (Phase::Uplink | Phase::Downlink, _) => Unit::Edge(origin.0),
    }
}

pub(super) fn obs_phase(phase: Phase) -> PhaseKind {
    match phase {
        Phase::Uplink => PhaseKind::Uplink,
        Phase::Compute => PhaseKind::Compute,
        Phase::Downlink => PhaseKind::Downlink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::spec::{CloudId, PlatformSpec};
    use mmsec_sim::{Interval, Time};

    #[test]
    fn auto_event_limit_formula() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let jobs: Vec<_> = (0..5)
            .map(|i| Job::new(EdgeId(0), i as f64, 1.0, 0.0, 0.0))
            .collect();
        let inst = Instance::new(spec, jobs).unwrap();
        // No windows: 1000 + 64·5.
        assert_eq!(auto_event_limit(&inst), 1000 + 64 * 5);

        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(2)
            .build()
            .with_cloud_unavailability(CloudId(0), &[Interval::from_secs(1.0, 2.0)])
            .with_cloud_unavailability(
                CloudId(1),
                &[Interval::from_secs(0.5, 1.0), Interval::from_secs(3.0, 4.0)],
            );
        let jobs = vec![Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        // 3 windows over both clouds: 1000 + 64·1 + 8·3.
        assert_eq!(auto_event_limit(&inst), 1000 + 64 + 24);
    }

    #[test]
    fn fault_recovery_outranks_crash_outranks_release() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let jobs = vec![Job::new(EdgeId(0), 2.0, 1.0, 0.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, Interval::from_secs(1.0, 2.0));
        plan.add_cloud_down(0, Interval::from_secs(2.0, 3.0));
        let mut queue = prime_queue(&inst, false);
        prime_faults(&mut queue, &plan);
        let fired: Vec<_> = std::iter::from_fn(|| queue.pop()).collect();
        assert_eq!(
            fired,
            vec![
                (Time::new(1.0), EngineEvent::EdgeDown(EdgeId(0))),
                // At t = 2: recovery first, then the next crash, then the
                // release — a decision at t = 2 sees edge 0 up and cloud 0
                // down.
                (Time::new(2.0), EngineEvent::EdgeUp(EdgeId(0))),
                (Time::new(2.0), EngineEvent::CloudDown(CloudId(0))),
                (Time::new(2.0), EngineEvent::Release(JobId(0))),
                (Time::new(3.0), EngineEvent::CloudUp(CloudId(0))),
            ]
        );
    }

    #[test]
    fn fault_event_limit_extends_the_base_budget() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        let jobs = vec![Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut plan = FaultPlan::empty(1, 1);
        plan.add_edge_down(0, Interval::from_secs(1.0, 2.0));
        plan.add_cloud_down(0, Interval::from_secs(4.0, 5.0));
        assert_eq!(
            auto_event_limit_with_faults(&inst, &plan),
            auto_event_limit(&inst) + 16
        );
    }

    #[test]
    fn prime_queue_orders_boundaries_before_releases() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build()
            .with_cloud_unavailability(CloudId(0), &[Interval::from_secs(2.0, 5.0)]);
        let jobs = vec![Job::new(EdgeId(0), 2.0, 1.0, 0.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut queue = prime_queue(&inst, false);
        // At t = 2 the window-start boundary outranks the release.
        let (t, ev) = queue.pop().unwrap();
        assert_eq!(t.seconds(), 2.0);
        assert_eq!(ev, EngineEvent::Boundary);
        let (t, ev) = queue.pop().unwrap();
        assert_eq!(t.seconds(), 2.0);
        assert_eq!(ev, EngineEvent::Release(JobId(0)));
        let (t, ev) = queue.pop().unwrap();
        assert_eq!(t.seconds(), 5.0);
        assert_eq!(ev, EngineEvent::Boundary);
        assert!(queue.pop().is_none());
    }
}
