//! Engine events: the queue of future decision points and the mapping of
//! engine happenings onto the observer taxonomy.

use crate::activity::{Phase, Target};
use crate::instance::Instance;
use crate::job::JobId;
use crate::spec::EdgeId;
use mmsec_obs::{PhaseKind, Unit};
use mmsec_sim::EventQueue;

/// A future decision point known in advance (phase completions are
/// discovered dynamically and never enter the queue: the engine advances
/// time directly to the earliest one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum EngineEvent {
    /// A job becomes available for scheduling.
    Release(JobId),
    /// Cloud availability-window boundary: a pure decision point.
    Boundary,
}

/// Boundaries fire before releases at equal times so that a decision taken
/// at the instant a window opens/closes already sees the new availability.
pub(super) const RANK_BOUNDARY: u8 = 0;
pub(super) const RANK_RELEASE: u8 = 1;

/// Builds the initial event queue: one release per job plus both
/// boundaries of every cloud availability window.
pub(super) fn prime_queue(instance: &Instance) -> EventQueue<EngineEvent> {
    let mut queue = EventQueue::new();
    for (id, job) in instance.iter_jobs() {
        queue.push(job.release, RANK_RELEASE, EngineEvent::Release(id));
    }
    let spec = &instance.spec;
    for k in spec.clouds() {
        for w in spec.cloud_unavailability(k).iter() {
            queue.push(w.start(), RANK_BOUNDARY, EngineEvent::Boundary);
            queue.push(w.end(), RANK_BOUNDARY, EngineEvent::Boundary);
        }
    }
    queue
}

/// Automatic event cap used when [`super::EngineOptions::max_events`] is
/// `None`: `1000 + 64·n + 8·w`, where `n` is the number of jobs and `w`
/// the total number of cloud availability windows.
///
/// Rationale: a well-behaved policy generates O(1) events per job — one
/// release, at most three phase completions, and a bounded number of
/// re-execution points — so `64·n` leaves a generous ~20× margin over the
/// worst observed policies; each availability window adds two boundary
/// events plus the pause/resume churn around them, covered by `8·w`; the
/// `1000` floor keeps tiny instances from tripping the cap during
/// pathological-but-finite warm-up behavior. A policy that exceeds this
/// budget is almost certainly livelocked (e.g. retargeting a job forever,
/// wiping its progress each time, so the simulation never advances) and
/// the run is aborted with [`super::EngineError::EventLimit`].
pub fn auto_event_limit(instance: &Instance) -> u64 {
    1000 + 64 * instance.num_jobs() as u64 + 8 * total_windows(instance) as u64
}

/// Total number of cloud availability windows over all cloud processors.
pub(super) fn total_windows(instance: &Instance) -> usize {
    instance
        .spec
        .clouds()
        .map(|k| instance.spec.cloud_unavailability(k).len())
        .sum()
}

/// Resource a `phase` of a job occupies, in observer terms: communications
/// are attributed to the origin edge's ports, computations to the unit
/// that executes them.
pub(super) fn obs_unit(origin: EdgeId, target: Target, phase: Phase) -> Unit {
    match (phase, target) {
        (Phase::Compute, Target::Cloud(k)) => Unit::Cloud(k.0),
        (Phase::Compute, Target::Edge) => Unit::Edge(origin.0),
        (Phase::Uplink | Phase::Downlink, _) => Unit::Edge(origin.0),
    }
}

pub(super) fn obs_phase(phase: Phase) -> PhaseKind {
    match phase {
        Phase::Uplink => PhaseKind::Uplink,
        Phase::Compute => PhaseKind::Compute,
        Phase::Downlink => PhaseKind::Downlink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::spec::{CloudId, PlatformSpec};
    use mmsec_sim::Interval;

    #[test]
    fn auto_event_limit_formula() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
        let jobs: Vec<_> = (0..5)
            .map(|i| Job::new(EdgeId(0), i as f64, 1.0, 0.0, 0.0))
            .collect();
        let inst = Instance::new(spec, jobs).unwrap();
        // No windows: 1000 + 64·5.
        assert_eq!(auto_event_limit(&inst), 1000 + 64 * 5);

        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 2)
            .with_cloud_unavailability(CloudId(0), &[Interval::from_secs(1.0, 2.0)])
            .with_cloud_unavailability(
                CloudId(1),
                &[Interval::from_secs(0.5, 1.0), Interval::from_secs(3.0, 4.0)],
            );
        let jobs = vec![Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        // 3 windows over both clouds: 1000 + 64·1 + 8·3.
        assert_eq!(auto_event_limit(&inst), 1000 + 64 + 24);
    }

    #[test]
    fn prime_queue_orders_boundaries_before_releases() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1)
            .with_cloud_unavailability(CloudId(0), &[Interval::from_secs(2.0, 5.0)]);
        let jobs = vec![Job::new(EdgeId(0), 2.0, 1.0, 0.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut queue = prime_queue(&inst);
        // At t = 2 the window-start boundary outranks the release.
        let (t, ev) = queue.pop().unwrap();
        assert_eq!(t.seconds(), 2.0);
        assert_eq!(ev, EngineEvent::Boundary);
        let (t, ev) = queue.pop().unwrap();
        assert_eq!(t.seconds(), 2.0);
        assert_eq!(ev, EngineEvent::Release(JobId(0)));
        let (t, ev) = queue.pop().unwrap();
        assert_eq!(t.seconds(), 5.0);
        assert_eq!(ev, EngineEvent::Boundary);
        assert!(queue.pop().is_none());
    }
}
