//! Resource-grant walk: turning a prioritized directive list into the set
//! of activities that hold resources until the next event.

use crate::activity::{Directive, Phase, Target};
use crate::job::{Job, JobId};
use crate::resource::{ResourceId, ResourceMap, ResourcePair};
use crate::state::JobState;
use crate::view::SimView;

/// An activity granted resources until the next event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Activation {
    /// The job being advanced.
    pub job: JobId,
    /// Its committed target.
    pub target: Target,
    /// The phase being run.
    pub phase: Phase,
    /// Progress rate (volume units per second).
    pub rate: f64,
    /// Resources held.
    pub resources: ResourcePair,
}

/// Remaining volume (time units for communications, work units for
/// computations) of `phase` for a job in state `st`.
pub fn remaining_volume(st: &JobState, job: &Job, phase: Phase) -> f64 {
    match phase {
        Phase::Uplink => st.remaining_up(job),
        Phase::Compute => st.remaining_work(job),
        Phase::Downlink => st.remaining_dn(job),
    }
}

/// Greedy list allocation shared by the engine and by schedulers that want
/// to predict it: walk `directives` in priority order and activate each
/// job's current phase iff its resources are unblocked. Claimed resources
/// are marked in `blocked`; granted activities are appended to `out`
/// (callers reuse the buffer across events to stay allocation-free).
pub fn greedy_allocate(
    view: &SimView<'_>,
    directives: &[Directive],
    blocked: &mut ResourceMap<bool>,
    skip: &[bool],
    infinite_ports: bool,
    out: &mut Vec<Activation>,
) {
    let spec = view.spec();
    for d in directives {
        let st = &view.jobs[d.job.0];
        if skip.get(d.job.0).copied().unwrap_or(false) || !st.active() {
            continue;
        }
        debug_assert_eq!(
            st.committed,
            Some(d.target),
            "allocation must follow commitment"
        );
        let job = view.job(d.job);
        let Some(phase) = st.current_phase(job, d.target) else {
            continue;
        };
        let resources = phase.resources(job, d.target);
        let needs_exclusive = |r: ResourceId| -> bool {
            !infinite_ports || matches!(r, ResourceId::EdgeCpu(_) | ResourceId::CloudCpu(_))
        };
        if resources.iter().any(|r| needs_exclusive(r) && blocked[r]) {
            continue;
        }
        for r in resources.iter() {
            if needs_exclusive(r) {
                blocked[r] = true;
            }
        }
        out.push(Activation {
            job: d.job,
            target: d.target,
            phase,
            rate: phase.rate(job, d.target, spec),
            resources,
        });
    }
}

/// Non-preemptive pinning: every activity that was running and has not
/// completed its phase keeps its resources, ahead of any new grant. Marks
/// the held resources in `blocked`, the pinned jobs in `skip`, and appends
/// the continued activations to `out`.
pub(super) fn pin_running(
    view: &SimView<'_>,
    blocked: &mut ResourceMap<bool>,
    skip: &mut [bool],
    out: &mut Vec<Activation>,
) {
    let spec = view.spec();
    for (i, st) in view.jobs.iter().enumerate() {
        let (Some(phase), Some(target)) = (st.running, st.committed) else {
            continue;
        };
        if st.finished {
            continue;
        }
        let job = view.job(JobId(i));
        // Still the same phase? (A completed phase unpins the job.)
        if st.current_phase(job, target) != Some(phase) {
            continue;
        }
        let resources = phase.resources(job, target);
        for r in resources.iter() {
            blocked[r] = true;
        }
        skip[i] = true;
        out.push(Activation {
            job: JobId(i),
            target,
            phase,
            rate: phase.rate(job, target, spec),
            resources,
        });
    }
}
