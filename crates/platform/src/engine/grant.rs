//! Resource-grant walk: turning a prioritized directive list into the set
//! of activities that hold resources until the next event.

use crate::activity::{Directive, Phase, Target};
use crate::job::{Job, JobId};
use crate::resource::{ResourceId, ResourceMap, ResourcePair};
use crate::state::JobArena;
use crate::view::SimView;

/// An activity granted resources until the next event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Activation {
    /// The job being advanced.
    pub job: JobId,
    /// Its committed target.
    pub target: Target,
    /// The phase being run.
    pub phase: Phase,
    /// Progress rate (volume units per second).
    pub rate: f64,
    /// Remaining volume of `phase` at grant time. Nothing accrues
    /// between the grant and the horizon scan, so the scan divides this
    /// by `rate` instead of re-reading the arena. (`rate` may still be
    /// scaled by a link factor after the grant, which is why the volume
    /// is stored rather than a finish time.)
    pub remaining: f64,
    /// Resources held.
    pub resources: ResourcePair,
}

/// Remaining volume (time units for communications, work units for
/// computations) of `phase` for job `i` of the arena.
pub fn remaining_volume(jobs: &JobArena, i: usize, job: &Job, phase: Phase) -> f64 {
    match phase {
        Phase::Uplink => jobs.remaining_up(i, job),
        Phase::Compute => jobs.remaining_work(i, job),
        Phase::Downlink => jobs.remaining_dn(i, job),
    }
}

/// Greedy list allocation shared by the engine and by schedulers that want
/// to predict it: walk `directives` in priority order and activate each
/// job's current phase iff its resources are unblocked. Claimed resources
/// are marked in `blocked`; granted activities are appended to `out`
/// (callers reuse the buffer across events to stay allocation-free).
pub fn greedy_allocate(
    view: &SimView<'_>,
    directives: &[Directive],
    blocked: &mut ResourceMap<bool>,
    skip: &[bool],
    infinite_ports: bool,
    out: &mut Vec<Activation>,
) {
    let spec = view.spec();
    let jobs = view.jobs;
    for d in directives {
        let i = d.job.0;
        if skip.get(i).copied().unwrap_or(false) || !jobs.active(i) {
            continue;
        }
        debug_assert_eq!(
            jobs.committed[i],
            Some(d.target),
            "allocation must follow commitment"
        );
        let job = view.job(d.job);
        let Some(phase) = jobs.current_phase(i, job, d.target) else {
            continue;
        };
        let resources = phase.resources(job, d.target);
        let needs_exclusive = |r: ResourceId| -> bool {
            !infinite_ports || matches!(r, ResourceId::EdgeCpu(_) | ResourceId::CloudCpu(_))
        };
        if resources.iter().any(|r| needs_exclusive(r) && blocked[r]) {
            continue;
        }
        for r in resources.iter() {
            if needs_exclusive(r) {
                blocked[r] = true;
            }
        }
        out.push(Activation {
            job: d.job,
            target: d.target,
            phase,
            rate: phase.rate(job, d.target, spec),
            remaining: remaining_volume(jobs, i, job, phase),
            resources,
        });
    }
}

/// Non-preemptive pinning: every activity that was running and has not
/// completed its phase keeps its resources, ahead of any new grant. Marks
/// the held resources in `blocked`, the pinned jobs in `skip`, and appends
/// the continued activations to `out`.
pub(super) fn pin_running(
    view: &SimView<'_>,
    blocked: &mut ResourceMap<bool>,
    skip: &mut [bool],
    out: &mut Vec<Activation>,
) {
    let spec = view.spec();
    let jobs = view.jobs;
    // Indexed sweep over parallel arena columns; `i` addresses four of
    // them plus `skip`, so an enumerate over any one column buys nothing.
    #[allow(clippy::needless_range_loop)]
    for i in 0..jobs.len() {
        let (Some(phase), Some(target)) = (jobs.running[i], jobs.committed[i]) else {
            continue;
        };
        if jobs.finished[i] {
            continue;
        }
        let job = view.job(JobId(i));
        // Still the same phase? (A completed phase unpins the job.)
        if jobs.current_phase(i, job, target) != Some(phase) {
            continue;
        }
        let resources = phase.resources(job, target);
        for r in resources.iter() {
            blocked[r] = true;
        }
        skip[i] = true;
        out.push(Activation {
            job: JobId(i),
            target,
            phase,
            rate: phase.rate(job, target, spec),
            remaining: remaining_volume(jobs, i, job, phase),
            resources,
        });
    }
}
