//! Event-driven simulation engine.
//!
//! The engine realizes the execution model of §III and the event-based
//! decision structure of §V: decisions are (re)taken only when an event
//! occurs — a job release, an uplink/downlink completion, or an execution
//! completion (plus, for the §VII extension, a cloud availability-window
//! boundary). At each event the scheduler fills a *prioritized directive
//! buffer* `(job → target)`; the engine walks it in order and activates
//! each job's current phase iff every resource it needs is free. Between
//! two events the assignment of activities to resources is constant.
//!
//! Semantics enforced here:
//! * **preemption** — a job that is not granted resources at an event
//!   simply pauses (progress kept) and may resume later;
//! * **no migration, re-execution allowed** — when a directive changes a
//!   job's committed target, all progress is wiped and the abandoned
//!   activity is recorded (it occupied resources but is lost);
//! * **one-port full-duplex** — communications claim the sender and
//!   receiver ports exclusively (unless the macro-dataflow ablation
//!   `infinite_ports` is enabled).
//!
//! # Module layout
//!
//! * [`mod@self`] — the [`OnlineScheduler`] contract, [`EngineOptions`],
//!   and the seven-step run loop ([`simulate`] / [`simulate_with`] /
//!   [`simulate_observed`]);
//! * [`grant`] — the greedy resource-grant walk ([`greedy_allocate`]) and
//!   non-preemptive pinning;
//! * [`events`] — the event queue priming, the automatic event cap
//!   ([`events::auto_event_limit`]), and observer-taxonomy mapping;
//! * [`outcome`] — [`RunOutcome`], [`RunStats`], [`EngineError`], and the
//!   optional [`EventRecord`] log.
//!
//! # Allocation discipline
//!
//! The decide hot path performs no per-event allocation: the engine owns
//! one [`DirectiveBuffer`] (cleared and refilled by the policy at each
//! event), one activation buffer, one resource-block map, and a stamp
//! array for directive sanitization — all sized once per run and reused
//! across events. The incrementally maintained [`PendingSet`] replaces the
//! per-event full-state rescan policies used to pay to enumerate pending
//! jobs.

pub mod events;
pub mod grant;
pub mod outcome;

pub use grant::{greedy_allocate, remaining_volume, Activation};
pub use outcome::{EngineError, EventRecord, RunOutcome, RunStats};

use crate::activity::{DirectiveBuffer, Phase};
use crate::instance::Instance;
use crate::job::JobId;
use crate::resource::{ResourceId, ResourceMap};
use crate::schedule::TraceBuilder;
use crate::state::JobState;
use crate::view::{PendingSet, SimView};
use events::{obs_phase, obs_unit, prime_queue, EngineEvent};
use mmsec_obs::{Event as ObsEvent, Observer, ObserverHandle};
use mmsec_sim::{Interval, Time};
use std::time::Instant;

/// An online scheduling policy (the object of study of paper §V).
pub trait OnlineScheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> String;

    /// Called once before the simulation starts.
    fn on_start(&mut self, _instance: &Instance) {}

    /// Called at every event. Fills `out` — cleared by the engine before
    /// the call — with the prioritized directive list: jobs omitted stay
    /// paused (keeping progress), jobs whose target changed are re-executed
    /// from scratch. The buffer is engine-owned and reused across events,
    /// so a steady-state decision allocates nothing for its output.
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer);

    /// Offers the policy an observer for its internal events (e.g. SSF-EDF
    /// reports its stretch binary-search probes). The default keeps none;
    /// policies that emit must store the handle. Called by the run wiring
    /// (not the engine) before the simulation starts.
    fn attach_observer(&mut self, _observer: ObserverHandle) {}
}

/// Engine knobs. Defaults reproduce the paper's model exactly; the other
/// settings drive the ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineOptions {
    /// Disable the one-port model: communications do not contend for ports
    /// (the "macro-dataflow" model the paper argues against in §II).
    pub infinite_ports: bool,
    /// Allow pausing a started activity (paper: true).
    pub allow_preemption: bool,
    /// Allow restarting a job from scratch on another resource (paper: true).
    pub allow_reexecution: bool,
    /// Hard cap on decision events (guards against livelocking policies).
    /// `None` picks [`events::auto_event_limit`] automatically.
    pub max_events: Option<u64>,
    /// Record a per-event log (time, pending count, activations) in
    /// [`RunOutcome::event_log`] — for debugging and the CLI's `--trace`.
    pub record_events: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            infinite_ports: false,
            allow_preemption: true,
            allow_reexecution: true,
            max_events: None,
            record_events: false,
        }
    }
}

/// Simulates `instance` under `scheduler` with the paper's default model.
pub fn simulate(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<RunOutcome, EngineError> {
    simulate_with(instance, scheduler, EngineOptions::default())
}

/// Simulates `instance` under `scheduler` with explicit engine options.
pub fn simulate_with(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
) -> Result<RunOutcome, EngineError> {
    simulate_impl(instance, scheduler, opts, None)
}

/// Simulates `instance` while streaming typed [`ObsEvent`]s to `observer`.
///
/// The observer sees the full engine-side taxonomy (releases, decide
/// start/end with wall-clock latency, placed intervals, restarts,
/// completions, run start/end). Policy-internal events (binary-search
/// probes) additionally require handing the policy a clone of the same
/// observer via [`OnlineScheduler::attach_observer`] *before* calling
/// this — typically through [`mmsec_obs::Shared`].
pub fn simulate_observed(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
    observer: &mut dyn Observer,
) -> Result<RunOutcome, EngineError> {
    simulate_impl(instance, scheduler, opts, Some(observer))
}

fn simulate_impl(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
    mut observer: Option<&mut dyn Observer>,
) -> Result<RunOutcome, EngineError> {
    // Evaluates the event expression only when an observer is attached:
    // an unobserved run pays one branch per emission point and nothing
    // else (no allocation, no formatting).
    macro_rules! emit {
        ($ev:expr) => {
            if let Some(o) = observer.as_deref_mut() {
                o.on_event(&$ev);
            }
        };
    }
    let started = Instant::now();
    let spec = &instance.spec;
    assert!(
        !spec.has_unavailability() || opts.allow_preemption,
        "cloud availability windows require preemption"
    );
    let n = instance.num_jobs();
    let limit = opts
        .max_events
        .unwrap_or_else(|| events::auto_event_limit(instance));

    let mut jobs = vec![JobState::default(); n];
    let mut queue = prime_queue(instance);

    let mut trace = TraceBuilder::new(n);
    let mut stats = RunStats::default();
    let mut event_log: Option<Vec<EventRecord>> = opts.record_events.then(Vec::new);
    let mut now = queue.peek_time().unwrap_or(Time::ZERO);

    // Run-long buffers, reused across events (see "Allocation discipline"
    // in the module docs).
    let mut pending = PendingSet::new();
    let mut buf = DirectiveBuffer::new();
    let mut activations: Vec<Activation> = Vec::new();
    let mut blocked = ResourceMap::new(spec, false);
    let mut skip = vec![false; n];
    // Per-event "first directive wins" marks, stamped with the event
    // counter so no per-event clearing is needed.
    let mut seen = vec![0u64; n];

    scheduler.on_start(instance);
    emit!(ObsEvent::RunStart {
        policy: scheduler.name(),
        jobs: n,
        edges: spec.num_edge(),
        clouds: spec.num_cloud(),
    });

    loop {
        // 1. Fire all events at (approximately) the current instant.
        while let Some(t) = queue.peek_time() {
            if t.approx_le(now) {
                let (_, ev) = queue.pop().expect("peeked");
                if let EngineEvent::Release(id) = ev {
                    jobs[id.0].released = true;
                    pending.insert(instance.job(id).release, id);
                    emit!(ObsEvent::JobReleased { t: now, job: id.0 });
                }
            } else {
                break;
            }
        }

        if jobs.iter().all(|s| s.finished) {
            break;
        }

        stats.events += 1;
        if stats.events > limit {
            return Err(EngineError::EventLimit { limit });
        }

        // 2. Ask the policy for directives.
        {
            let view = SimView::new(instance, now, &jobs, &pending);
            emit!(ObsEvent::DecideStart {
                t: now,
                pending: view.num_pending(),
            });
            buf.clear();
            let t0 = Instant::now();
            scheduler.decide(&view, &mut buf);
            let wall = t0.elapsed();
            stats.decide_time += wall;
            // Sanitize: keep the first directive per job, drop
            // unreleased/finished jobs.
            let stamp = stats.events;
            buf.retain(|d| {
                let ok = d.job.0 < n && jobs[d.job.0].active() && seen[d.job.0] != stamp;
                if ok {
                    seen[d.job.0] = stamp;
                }
                ok
            });
            emit!(ObsEvent::DecideEnd {
                t: now,
                wall,
                directives: buf.len(),
            });
        }

        // 3. Apply commitments / re-executions.
        for d in buf.as_mut_slice() {
            let st = &mut jobs[d.job.0];
            match st.committed {
                None => st.committed = Some(d.target),
                Some(t) if t == d.target => {}
                Some(t) => {
                    let has_progress = st.up_done + st.work_done + st.dn_done > 0.0;
                    let pinned = !opts.allow_preemption && st.running.is_some();
                    if !has_progress && !pinned {
                        // Nothing executed yet: re-commitment is free.
                        st.committed = Some(d.target);
                    } else if opts.allow_reexecution && !pinned {
                        st.reset_progress();
                        stats.restarts += 1;
                        trace.abandon(d.job);
                        emit!(ObsEvent::Restarted {
                            t: now,
                            job: d.job.0,
                            from: obs_unit(instance.job(d.job).origin, t, Phase::Compute),
                            to: obs_unit(instance.job(d.job).origin, d.target, Phase::Compute),
                        });
                        st.committed = Some(d.target);
                    } else {
                        // Retarget refused: keep the old commitment.
                        d.target = t;
                    }
                }
            }
        }

        // 4. Block resources: unavailability windows, then pinned
        //    (non-preemptable) running activities, then the greedy grant.
        blocked.fill(false);
        for k in spec.clouds() {
            if spec.cloud_unavailability(k).iter().any(|w| w.contains(now)) {
                blocked[ResourceId::CloudCpu(k)] = true;
            }
        }
        activations.clear();
        {
            let view = SimView::new(instance, now, &jobs, &pending);
            if !opts.allow_preemption {
                skip.fill(false);
                grant::pin_running(&view, &mut blocked, &mut skip, &mut activations);
            }
            greedy_allocate(
                &view,
                buf.as_slice(),
                &mut blocked,
                &skip,
                opts.infinite_ports,
                &mut activations,
            );
        }

        for st in jobs.iter_mut() {
            st.running = None;
        }
        for act in &activations {
            jobs[act.job.0].running = Some(act.phase);
        }

        if let Some(log) = event_log.as_mut() {
            log.push(EventRecord {
                time: now,
                pending: pending.len(),
                activations: activations
                    .iter()
                    .map(|a| (a.job, a.phase, a.target))
                    .collect(),
            });
        }

        // 5. Find the next event horizon.
        let mut t_next = queue.peek_time();
        for act in &activations {
            let st = &jobs[act.job.0];
            let job = instance.job(act.job);
            let rem = remaining_volume(st, job, act.phase) / act.rate;
            let fin = now + Time::new(rem);
            t_next = Some(t_next.map_or(fin, |t| t.min(fin)));
        }
        let Some(t_next) = t_next else {
            let pending = jobs
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.finished)
                .map(|(i, _)| JobId(i))
                .collect();
            return Err(EngineError::Stalled { time: now, pending });
        };

        // 6. Advance time, accrue progress, record the trace.
        let t_next = t_next.max(now);
        let dt = (t_next - now).seconds();
        if dt > 0.0 {
            for act in &activations {
                let st = &mut jobs[act.job.0];
                let amount = act.rate * dt;
                match act.phase {
                    Phase::Uplink => st.up_done += amount,
                    Phase::Compute => st.work_done += amount,
                    Phase::Downlink => st.dn_done += amount,
                }
                trace.record(act.job, act.phase, act.target, Interval::new(now, t_next));
                emit!(ObsEvent::Placed {
                    job: act.job.0,
                    origin: instance.job(act.job).origin.0,
                    target: obs_unit(instance.job(act.job).origin, act.target, act.phase),
                    phase: obs_phase(act.phase),
                    interval: Interval::new(now, t_next),
                    volume: if act.phase == Phase::Compute {
                        0.0
                    } else {
                        amount
                    },
                });
            }
        }
        now = t_next;

        // 7. Job completions (phase transitions become visible to the next
        //    decision automatically).
        for act in &activations {
            let st = &mut jobs[act.job.0];
            if st.finished {
                continue;
            }
            let job = instance.job(act.job);
            if st.current_phase(job, act.target).is_none() {
                st.finished = true;
                st.completion = Some(now);
                st.running = None;
                pending.remove(job.release, act.job);
                trace.complete(act.job, now);
                emit!(ObsEvent::Completed {
                    t: now,
                    job: act.job.0,
                    response: (now - job.release).seconds(),
                });
            }
        }
    }

    emit!(ObsEvent::RunEnd { makespan: now });
    stats.total_time = started.elapsed();
    Ok(RunOutcome {
        schedule: trace.finish(),
        stats,
        event_log,
    })
}

#[cfg(test)]
mod tests;
