//! Event-driven simulation engine.
//!
//! The engine realizes the execution model of §III and the event-based
//! decision structure of §V: decisions are (re)taken only when an event
//! occurs — a job release, an uplink/downlink completion, or an execution
//! completion (plus, for the §VII extension, a cloud availability-window
//! boundary). At each event the scheduler fills a *prioritized directive
//! buffer* `(job → target)`; the engine walks it in order and activates
//! each job's current phase iff every resource it needs is free. Between
//! two events the assignment of activities to resources is constant.
//!
//! Semantics enforced here:
//! * **preemption** — a job that is not granted resources at an event
//!   simply pauses (progress kept) and may resume later;
//! * **no migration, re-execution allowed** — when a directive changes a
//!   job's committed target, all progress is wiped and the abandoned
//!   activity is recorded (it occupied resources but is lost);
//! * **one-port full-duplex** — communications claim the sender and
//!   receiver ports exclusively (unless the macro-dataflow ablation
//!   `infinite_ports` is enabled).
//!
//! # Module layout
//!
//! * [`mod@self`] — the [`OnlineScheduler`] contract and
//!   [`EngineOptions`];
//! * [`session`] — the seven-step run loop as a resumable [`Session`]
//!   driver (pause/resume, mid-run [`Session::submit`]);
//! * [`simulation`] — the [`Simulation`] builder, the one batch entry
//!   point;
//! * [`grant`] — the greedy resource-grant walk ([`greedy_allocate`]) and
//!   non-preemptive pinning;
//! * [`events`] — the event queue priming, the automatic event cap
//!   ([`events::auto_event_limit`]), and observer-taxonomy mapping;
//! * [`outcome`] — [`RunOutcome`], [`RunStats`], [`EngineError`], and the
//!   optional [`EventRecord`] log.
//!
//! # Allocation discipline
//!
//! The decide hot path performs no per-event allocation: the engine owns
//! one [`DirectiveBuffer`] (cleared and refilled by the policy at each
//! event), one activation buffer, one resource-block map, and a stamp
//! array for directive sanitization — all sized once per run and reused
//! across events. The incrementally maintained [`PendingSet`](crate::view::PendingSet) replaces the
//! per-event full-state rescan policies used to pay to enumerate pending
//! jobs.
//!
//! # Decision-epoch gating
//!
//! The engine maintains a *decision epoch*, bumped only by transitions
//! that can change a schedule: job releases, job completions,
//! unit/link availability changes, and directive refusals. For policies
//! declaring [`DecisionCadence::OnEpochChange`] (and under preemption),
//! the policy call is skipped entirely at events where the epoch is
//! unchanged and the previous directives are reused — bit-identical to
//! deciding again, and visible in [`RunStats::decides`] versus
//! [`RunStats::decide_skips`]. Policies read the epoch and the pending
//! membership delta since their last call via
//! [`SimView::decision_epoch`], [`SimView::delta_inserted`], and
//! [`SimView::delta_removed`], enabling incremental priority structures
//! instead of per-call rebuild-and-sort.

pub mod events;
pub mod grant;
pub mod outcome;
pub mod session;
pub mod simulation;

pub use grant::{greedy_allocate, remaining_volume, Activation};
pub use outcome::{EngineError, EventRecord, RunOutcome, RunStats};
pub use session::{CompletionRecord, Session, SessionStats, SessionStatus};
pub use simulation::Simulation;

use crate::activity::DirectiveBuffer;
use crate::instance::Instance;
use crate::view::SimView;
use mmsec_obs::ObserverHandle;

/// How often a policy's `decide` must be invoked (see
/// [`OnlineScheduler::cadence`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionCadence {
    /// `decide` must run at every event. Always sound: the default for
    /// policies whose output depends on the current time or on job
    /// progress (SRPT and Greedy rank jobs by projected completion, which
    /// moves at every phase transition).
    EveryEvent,
    /// `decide` output is a pure function of the pending membership, the
    /// current availability, and the policy's own cached plan. The engine
    /// may then skip the call at events where none of those changed
    /// (decision-epoch gating) and reuse the previous directives
    /// unchanged. A policy declaring this promises that two consecutive
    /// calls with no intervening release, completion, availability change,
    /// or directive invalidation would fill the buffer identically.
    OnEpochChange,
}

/// An online scheduling policy (the object of study of paper §V).
pub trait OnlineScheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> String;

    /// Declares when `decide` must be invoked. The conservative default
    /// re-decides at every event; pending/availability-pure policies
    /// (SSF-EDF, Edge-Only, and the sticky baselines) opt into
    /// [`DecisionCadence::OnEpochChange`] so the engine can skip events
    /// that cannot change their output.
    fn cadence(&self) -> DecisionCadence {
        DecisionCadence::EveryEvent
    }

    /// Called once before the simulation starts.
    fn on_start(&mut self, _instance: &Instance) {}

    /// Called at every event. Fills `out` — cleared by the engine before
    /// the call — with the prioritized directive list: jobs omitted stay
    /// paused (keeping progress), jobs whose target changed are re-executed
    /// from scratch. The buffer is engine-owned and reused across events,
    /// so a steady-state decision allocates nothing for its output.
    ///
    /// **Growth contract (streaming sessions):** a [`Session`] may
    /// [`Session::submit`] jobs *after* `on_start`, so `view.jobs.len()`
    /// can exceed the job count the policy sized its state for. Policies
    /// keeping per-job vectors must grow them to `view.jobs.len()` at the
    /// top of `decide` (cheap: a length check per call). Batch runs never
    /// trigger this path.
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer);

    /// Offers the policy an observer for its internal events (e.g. SSF-EDF
    /// reports its stretch binary-search probes). The default keeps none;
    /// policies that emit must store the handle. Called by the run wiring
    /// (not the engine) before the simulation starts.
    fn attach_observer(&mut self, _observer: ObserverHandle) {}
}

/// Engine knobs. Defaults reproduce the paper's model exactly; the other
/// settings drive the ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineOptions {
    /// Disable the one-port model: communications do not contend for ports
    /// (the "macro-dataflow" model the paper argues against in §II).
    pub infinite_ports: bool,
    /// Allow pausing a started activity (paper: true).
    pub allow_preemption: bool,
    /// Allow restarting a job from scratch on another resource (paper: true).
    pub allow_reexecution: bool,
    /// Hard cap on decision events (guards against livelocking policies).
    /// `None` picks [`events::auto_event_limit`] automatically.
    pub max_events: Option<u64>,
    /// Record a per-event log (time, pending count, activations) in
    /// [`RunOutcome::event_log`] — for debugging and the CLI's `--trace`.
    pub record_events: bool,
    /// Decision-epoch gating (default true): skip the policy call at
    /// events where no decision-relevant state changed since the last
    /// invoked decide, reusing the previous directives. Only applies to
    /// policies declaring [`DecisionCadence::OnEpochChange`], and only
    /// under preemption (without it, a pin can expire at a phase
    /// completion — not an epoch bump — so a gated run would miss the
    /// re-target an ungated run applies there). Schedules are
    /// bit-identical with the gate on or off; disable to measure its
    /// effect or to force every-event decides while debugging a policy.
    pub decision_gating: bool,
    /// Use the reference binary-heap event queue instead of the calendar
    /// queue (default false). The two pop in a bit-identical order for any
    /// push sequence — this switch exists so differential tests (and the
    /// CI `equivalence` job) can run whole engines against each other, and
    /// as an escape hatch while profiling the queue itself.
    pub reference_queue: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            infinite_ports: false,
            allow_preemption: true,
            allow_reexecution: true,
            max_events: None,
            record_events: false,
            decision_gating: true,
            reference_queue: false,
        }
    }
}

#[cfg(test)]
mod tests;
