//! Event-driven simulation engine.
//!
//! The engine realizes the execution model of §III and the event-based
//! decision structure of §V: decisions are (re)taken only when an event
//! occurs — a job release, an uplink/downlink completion, or an execution
//! completion (plus, for the §VII extension, a cloud availability-window
//! boundary). At each event the scheduler fills a *prioritized directive
//! buffer* `(job → target)`; the engine walks it in order and activates
//! each job's current phase iff every resource it needs is free. Between
//! two events the assignment of activities to resources is constant.
//!
//! Semantics enforced here:
//! * **preemption** — a job that is not granted resources at an event
//!   simply pauses (progress kept) and may resume later;
//! * **no migration, re-execution allowed** — when a directive changes a
//!   job's committed target, all progress is wiped and the abandoned
//!   activity is recorded (it occupied resources but is lost);
//! * **one-port full-duplex** — communications claim the sender and
//!   receiver ports exclusively (unless the macro-dataflow ablation
//!   `infinite_ports` is enabled).
//!
//! # Module layout
//!
//! * [`mod@self`] — the [`OnlineScheduler`] contract, [`EngineOptions`],
//!   and the seven-step run loop ([`simulate`] / [`simulate_with`] /
//!   [`simulate_observed`]);
//! * [`grant`] — the greedy resource-grant walk ([`greedy_allocate`]) and
//!   non-preemptive pinning;
//! * [`events`] — the event queue priming, the automatic event cap
//!   ([`events::auto_event_limit`]), and observer-taxonomy mapping;
//! * [`outcome`] — [`RunOutcome`], [`RunStats`], [`EngineError`], and the
//!   optional [`EventRecord`] log.
//!
//! # Allocation discipline
//!
//! The decide hot path performs no per-event allocation: the engine owns
//! one [`DirectiveBuffer`] (cleared and refilled by the policy at each
//! event), one activation buffer, one resource-block map, and a stamp
//! array for directive sanitization — all sized once per run and reused
//! across events. The incrementally maintained [`PendingSet`] replaces the
//! per-event full-state rescan policies used to pay to enumerate pending
//! jobs.
//!
//! # Decision-epoch gating
//!
//! The engine maintains a *decision epoch*, bumped only by transitions
//! that can change a schedule: job releases, job completions,
//! unit/link availability changes, and directive refusals. For policies
//! declaring [`DecisionCadence::OnEpochChange`] (and under preemption),
//! the policy call is skipped entirely at events where the epoch is
//! unchanged and the previous directives are reused — bit-identical to
//! deciding again, and visible in [`RunStats::decides`] versus
//! [`RunStats::decide_skips`]. Policies read the epoch and the pending
//! membership delta since their last call via
//! [`SimView::decision_epoch`], [`SimView::delta_inserted`], and
//! [`SimView::delta_removed`], enabling incremental priority structures
//! instead of per-call rebuild-and-sort.

pub mod events;
pub mod grant;
pub mod outcome;

pub use grant::{greedy_allocate, remaining_volume, Activation};
pub use outcome::{EngineError, EventRecord, RunOutcome, RunStats};

use crate::activity::{DirectiveBuffer, Phase, Target};
use crate::instance::Instance;
use crate::job::JobId;
use crate::resource::{ResourceId, ResourceMap};
use crate::schedule::TraceBuilder;
use crate::state::JobState;
use crate::view::{Availability, PendingSet, SimView};
use events::{obs_phase, obs_unit, prime_faults, prime_queue, EngineEvent};
use mmsec_faults::FaultPlan;
use mmsec_obs::{Event as ObsEvent, Observer, ObserverHandle, Unit};
use mmsec_sim::{Interval, Time};
use std::time::Instant;

/// How often a policy's `decide` must be invoked (see
/// [`OnlineScheduler::cadence`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionCadence {
    /// `decide` must run at every event. Always sound: the default for
    /// policies whose output depends on the current time or on job
    /// progress (SRPT and Greedy rank jobs by projected completion, which
    /// moves at every phase transition).
    EveryEvent,
    /// `decide` output is a pure function of the pending membership, the
    /// current availability, and the policy's own cached plan. The engine
    /// may then skip the call at events where none of those changed
    /// (decision-epoch gating) and reuse the previous directives
    /// unchanged. A policy declaring this promises that two consecutive
    /// calls with no intervening release, completion, availability change,
    /// or directive invalidation would fill the buffer identically.
    OnEpochChange,
}

/// An online scheduling policy (the object of study of paper §V).
pub trait OnlineScheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> String;

    /// Declares when `decide` must be invoked. The conservative default
    /// re-decides at every event; pending/availability-pure policies
    /// (SSF-EDF, Edge-Only, and the sticky baselines) opt into
    /// [`DecisionCadence::OnEpochChange`] so the engine can skip events
    /// that cannot change their output.
    fn cadence(&self) -> DecisionCadence {
        DecisionCadence::EveryEvent
    }

    /// Called once before the simulation starts.
    fn on_start(&mut self, _instance: &Instance) {}

    /// Called at every event. Fills `out` — cleared by the engine before
    /// the call — with the prioritized directive list: jobs omitted stay
    /// paused (keeping progress), jobs whose target changed are re-executed
    /// from scratch. The buffer is engine-owned and reused across events,
    /// so a steady-state decision allocates nothing for its output.
    fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer);

    /// Offers the policy an observer for its internal events (e.g. SSF-EDF
    /// reports its stretch binary-search probes). The default keeps none;
    /// policies that emit must store the handle. Called by the run wiring
    /// (not the engine) before the simulation starts.
    fn attach_observer(&mut self, _observer: ObserverHandle) {}
}

/// Engine knobs. Defaults reproduce the paper's model exactly; the other
/// settings drive the ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineOptions {
    /// Disable the one-port model: communications do not contend for ports
    /// (the "macro-dataflow" model the paper argues against in §II).
    pub infinite_ports: bool,
    /// Allow pausing a started activity (paper: true).
    pub allow_preemption: bool,
    /// Allow restarting a job from scratch on another resource (paper: true).
    pub allow_reexecution: bool,
    /// Hard cap on decision events (guards against livelocking policies).
    /// `None` picks [`events::auto_event_limit`] automatically.
    pub max_events: Option<u64>,
    /// Record a per-event log (time, pending count, activations) in
    /// [`RunOutcome::event_log`] — for debugging and the CLI's `--trace`.
    pub record_events: bool,
    /// Decision-epoch gating (default true): skip the policy call at
    /// events where no decision-relevant state changed since the last
    /// invoked decide, reusing the previous directives. Only applies to
    /// policies declaring [`DecisionCadence::OnEpochChange`], and only
    /// under preemption (without it, a pin can expire at a phase
    /// completion — not an epoch bump — so a gated run would miss the
    /// re-target an ungated run applies there). Schedules are
    /// bit-identical with the gate on or off; disable to measure its
    /// effect or to force every-event decides while debugging a policy.
    pub decision_gating: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            infinite_ports: false,
            allow_preemption: true,
            allow_reexecution: true,
            max_events: None,
            record_events: false,
            decision_gating: true,
        }
    }
}

/// Simulates `instance` under `scheduler` with the paper's default model.
pub fn simulate(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<RunOutcome, EngineError> {
    simulate_with(instance, scheduler, EngineOptions::default())
}

/// Simulates `instance` under `scheduler` with explicit engine options.
pub fn simulate_with(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
) -> Result<RunOutcome, EngineError> {
    simulate_impl(instance, scheduler, opts, None, None)
}

/// Simulates `instance` while injecting the faults of a compiled
/// [`FaultPlan`]: units crash and recover at the plan's window boundaries,
/// work in flight on a crashed unit is lost (the job re-executes from
/// scratch and [`RunStats::restarts`] is incremented), and link windows
/// pause or slow the affected edge's communications without wiping
/// progress. Policies see the current availability through
/// [`SimView::edge_available`] and friends.
///
/// An empty plan takes the exact fault-free code path, so it is
/// bit-identical to [`simulate_with`]. Fault injection requires
/// `opts.allow_preemption`; link windows additionally require the one-port
/// model (`!opts.infinite_ports`), since with infinite ports there is no
/// port resource to block.
pub fn simulate_with_faults(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
    faults: &FaultPlan,
) -> Result<RunOutcome, EngineError> {
    simulate_impl(instance, scheduler, opts, Some(faults), None)
}

/// [`simulate_with_faults`] with an observer attached (fault injection
/// additionally emits `UnitDown`/`UnitUp`/`LinkDegraded`/`JobKilled`).
pub fn simulate_with_faults_observed(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
    faults: &FaultPlan,
    observer: &mut dyn Observer,
) -> Result<RunOutcome, EngineError> {
    simulate_impl(instance, scheduler, opts, Some(faults), Some(observer))
}

/// Simulates `instance` while streaming typed [`ObsEvent`]s to `observer`.
///
/// The observer sees the full engine-side taxonomy (releases, decide
/// start/end with wall-clock latency, placed intervals, restarts,
/// completions, run start/end). Policy-internal events (binary-search
/// probes) additionally require handing the policy a clone of the same
/// observer via [`OnlineScheduler::attach_observer`] *before* calling
/// this — typically through [`mmsec_obs::Shared`].
pub fn simulate_observed(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
    observer: &mut dyn Observer,
) -> Result<RunOutcome, EngineError> {
    simulate_impl(instance, scheduler, opts, None, Some(observer))
}

fn simulate_impl(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
    faults: Option<&FaultPlan>,
    mut observer: Option<&mut dyn Observer>,
) -> Result<RunOutcome, EngineError> {
    // Evaluates the event expression only when an observer is attached:
    // an unobserved run pays one branch per emission point and nothing
    // else (no allocation, no formatting).
    macro_rules! emit {
        ($ev:expr) => {
            if let Some(o) = observer.as_deref_mut() {
                o.on_event(&$ev);
            }
        };
    }
    let started = Instant::now();
    let spec = &instance.spec;
    assert!(
        !spec.has_unavailability() || opts.allow_preemption,
        "cloud availability windows require preemption"
    );
    // A plan that injects nothing takes the exact fault-free code path,
    // so a zero-failure fault model is bit-identical to no model at all.
    let faults = faults.filter(|p| !p.is_empty());
    if let Some(plan) = faults {
        assert_eq!(
            plan.num_edges(),
            spec.num_edge(),
            "fault plan covers a different number of edges than the platform"
        );
        assert_eq!(
            plan.num_clouds(),
            spec.num_cloud(),
            "fault plan covers a different number of clouds than the platform"
        );
        assert!(opts.allow_preemption, "fault injection requires preemption");
        assert!(
            !opts.infinite_ports || spec.edges().all(|j| plan.link_windows(j.0).is_empty()),
            "link faults require the one-port model (infinite_ports = false)"
        );
    }
    let n = instance.num_jobs();
    let limit = opts.max_events.unwrap_or_else(|| match faults {
        Some(plan) => events::auto_event_limit_with_faults(instance, plan),
        None => events::auto_event_limit(instance),
    });

    // Decision-epoch gating: with an epoch-pure policy (see
    // [`DecisionCadence::OnEpochChange`]) the engine tracks an epoch
    // counter bumped only by decision-relevant transitions — releases,
    // completions, availability changes, directive refusals — and skips
    // the decide call entirely at events where the epoch is unchanged,
    // reusing the previous (already sanitized) directive buffer.
    let gating = opts.decision_gating
        && opts.allow_preemption
        && scheduler.cadence() == DecisionCadence::OnEpochChange;
    let mut epoch: u64 = 1;
    let mut decided_epoch: u64 = 0;
    let mut unfinished = n;

    let mut jobs = vec![JobState::default(); n];
    let mut queue = prime_queue(instance);
    if let Some(plan) = faults {
        prime_faults(&mut queue, plan);
    }
    // Availability state, flipped by fault events as they fire.
    let mut avail = faults.map(|_| Availability::all_up(spec.num_edge(), spec.num_cloud()));

    let mut trace = TraceBuilder::new(n);
    let mut stats = RunStats::default();
    let mut event_log: Option<Vec<EventRecord>> = opts.record_events.then(Vec::new);
    let mut now = queue.peek_time().unwrap_or(Time::ZERO);

    // Run-long buffers, reused across events (see "Allocation discipline"
    // in the module docs).
    let mut pending = PendingSet::new();
    let mut buf = DirectiveBuffer::new();
    let mut activations: Vec<Activation> = Vec::new();
    // The previous event's grants: the only jobs whose `running` flag can
    // be set, so clearing just them replaces a full O(n) sweep per event.
    let mut prev_activations: Vec<Activation> = Vec::new();
    let mut blocked = ResourceMap::new(spec, false);
    let mut skip = vec![false; n];
    // Per-event "first directive wins" marks, stamped with the event
    // counter so no per-event clearing is needed.
    let mut seen = vec![0u64; n];

    scheduler.on_start(instance);
    emit!(ObsEvent::RunStart {
        policy: scheduler.name(),
        jobs: n,
        edges: spec.num_edge(),
        clouds: spec.num_cloud(),
    });

    loop {
        // 1. Fire all events at (approximately) the current instant.
        while let Some(t) = queue.peek_time() {
            if !t.approx_le(now) {
                break;
            }
            let (t_ev, rank, ev) = queue.pop_ranked().expect("peeked");
            // Classify by rank class; the LinkChange arm below demotes
            // itself when the re-read factor turns out unchanged.
            let mut bump = events::rank_is_decision_relevant(rank);
            match ev {
                EngineEvent::Release(id) => {
                    jobs[id.0].released = true;
                    pending.insert(instance.job(id).release, id);
                    emit!(ObsEvent::JobReleased { t: now, job: id.0 });
                }
                EngineEvent::Boundary => {}
                EngineEvent::EdgeDown(j) => {
                    let av = avail.as_mut().expect("fault events imply a plan");
                    av.edge_up[j.0] = false;
                    emit!(ObsEvent::UnitDown {
                        t: now,
                        unit: Unit::Edge(j.0),
                    });
                    // Work in flight on the crashed unit is lost: every
                    // job of this origin committed to its edge CPU is
                    // wiped and re-released (paper restart semantics).
                    // Cloud-committed jobs of this origin merely pause —
                    // their ports are blocked while the edge is down.
                    for (i, st) in jobs.iter_mut().enumerate() {
                        if st.finished
                            || instance.job(JobId(i)).origin != j
                            || st.committed != Some(Target::Edge)
                        {
                            continue;
                        }
                        let had_progress = st.up_done + st.work_done + st.dn_done > 0.0;
                        st.committed = None;
                        st.running = None;
                        if had_progress {
                            st.reset_progress();
                            stats.restarts += 1;
                            trace.abandon(JobId(i));
                            emit!(ObsEvent::JobKilled {
                                t: now,
                                job: i,
                                unit: Unit::Edge(j.0),
                            });
                        }
                    }
                }
                EngineEvent::EdgeUp(j) => {
                    let av = avail.as_mut().expect("fault events imply a plan");
                    av.edge_up[j.0] = true;
                    emit!(ObsEvent::UnitUp {
                        t: now,
                        unit: Unit::Edge(j.0),
                    });
                }
                EngineEvent::CloudDown(k) => {
                    let av = avail.as_mut().expect("fault events imply a plan");
                    av.cloud_up[k.0] = false;
                    emit!(ObsEvent::UnitDown {
                        t: now,
                        unit: Unit::Cloud(k.0),
                    });
                    for (i, st) in jobs.iter_mut().enumerate() {
                        if st.finished || st.committed != Some(Target::Cloud(k)) {
                            continue;
                        }
                        let had_progress = st.up_done + st.work_done + st.dn_done > 0.0;
                        st.committed = None;
                        st.running = None;
                        if had_progress {
                            st.reset_progress();
                            stats.restarts += 1;
                            trace.abandon(JobId(i));
                            emit!(ObsEvent::JobKilled {
                                t: now,
                                job: i,
                                unit: Unit::Cloud(k.0),
                            });
                        }
                    }
                }
                EngineEvent::CloudUp(k) => {
                    let av = avail.as_mut().expect("fault events imply a plan");
                    av.cloud_up[k.0] = true;
                    emit!(ObsEvent::UnitUp {
                        t: now,
                        unit: Unit::Cloud(k.0),
                    });
                }
                EngineEvent::LinkChange(j) => {
                    // Re-read the factor at the event's own (exact) time:
                    // windows are half-open, so the change at a window's
                    // end restores 1.0 and the one at its start applies
                    // the window's factor.
                    let plan = faults.expect("fault events imply a plan");
                    let av = avail.as_mut().expect("fault events imply a plan");
                    let f = plan.link_factor_at(j.0, t_ev);
                    if av.link_factor[j.0] != f {
                        av.link_factor[j.0] = f;
                        emit!(ObsEvent::LinkDegraded {
                            t: now,
                            edge: j.0,
                            factor: f,
                        });
                    } else {
                        bump = false;
                    }
                }
            }
            if bump {
                epoch += 1;
            }
        }

        if unfinished == 0 {
            break;
        }

        stats.events += 1;
        if stats.events > limit {
            return Err(EngineError::EventLimit { limit });
        }

        // 2. Ask the policy for directives — unless gating is on and no
        //    decision-relevant state changed since the last invoked
        //    decide, in which case the previous sanitized buffer is
        //    reused verbatim (finished/killed jobs always bump the
        //    epoch, so a stale directive cannot survive a skip).
        if gating && epoch == decided_epoch {
            stats.decide_skips += 1;
            emit!(ObsEvent::DecideSkipped {
                t: now,
                pending: pending.len(),
            });
        } else {
            {
                let mut view = SimView::new(instance, now, &jobs, &pending).with_epoch(epoch);
                if let Some(av) = avail.as_ref() {
                    view = view.with_availability(av);
                }
                emit!(ObsEvent::DecideStart {
                    t: now,
                    pending: view.num_pending(),
                });
                buf.clear();
                let t0 = Instant::now();
                scheduler.decide(&view, &mut buf);
                let wall = t0.elapsed();
                stats.decide_time += wall;
                // Sanitize: keep the first directive per job, drop
                // unreleased/finished jobs.
                let stamp = stats.events;
                buf.retain(|d| {
                    let ok = d.job.0 < n && jobs[d.job.0].active() && seen[d.job.0] != stamp;
                    if ok {
                        seen[d.job.0] = stamp;
                    }
                    ok
                });
                emit!(ObsEvent::DecideEnd {
                    t: now,
                    wall,
                    directives: buf.len(),
                });
            }
            stats.decides += 1;
            decided_epoch = epoch;
            // The delta always describes "membership change since the
            // last invoked decide", for gated and ungated runs alike.
            pending.clear_delta();
        }

        // 3. Apply commitments / re-executions.
        for d in buf.as_mut_slice() {
            let st = &mut jobs[d.job.0];
            match st.committed {
                None => st.committed = Some(d.target),
                Some(t) if t == d.target => {}
                Some(t) => {
                    let has_progress = st.up_done + st.work_done + st.dn_done > 0.0;
                    let pinned = !opts.allow_preemption && st.running.is_some();
                    if !has_progress && !pinned {
                        // Nothing executed yet: re-commitment is free.
                        st.committed = Some(d.target);
                    } else if opts.allow_reexecution && !pinned {
                        st.reset_progress();
                        stats.restarts += 1;
                        trace.abandon(d.job);
                        emit!(ObsEvent::Restarted {
                            t: now,
                            job: d.job.0,
                            from: obs_unit(instance.job(d.job).origin, t, Phase::Compute),
                            to: obs_unit(instance.job(d.job).origin, d.target, Phase::Compute),
                        });
                        st.committed = Some(d.target);
                    } else {
                        // Retarget refused: keep the old commitment. The
                        // engine's buffer now differs from what the policy
                        // emitted, so conservatively treat the rewrite as
                        // a decision-relevant transition.
                        d.target = t;
                        epoch += 1;
                    }
                }
            }
        }

        // 4. Block resources: unavailability windows, then pinned
        //    (non-preemptable) running activities, then the greedy grant.
        blocked.fill(false);
        for k in spec.clouds() {
            if spec.cloud_unavailability(k).iter().any(|w| w.contains(now)) {
                blocked[ResourceId::CloudCpu(k)] = true;
            }
        }
        if let Some(av) = avail.as_ref() {
            // A down edge takes its CPU and both ports with it; a link
            // outage (factor 0) blocks only the ports, so edge-local
            // compute continues and cloud-bound jobs pause in place.
            for j in spec.edges() {
                if !av.edge_up[j.0] {
                    blocked[ResourceId::EdgeCpu(j)] = true;
                    blocked[ResourceId::EdgeOut(j)] = true;
                    blocked[ResourceId::EdgeIn(j)] = true;
                } else if av.link_factor[j.0] == 0.0 {
                    blocked[ResourceId::EdgeOut(j)] = true;
                    blocked[ResourceId::EdgeIn(j)] = true;
                }
            }
            for k in spec.clouds() {
                if !av.cloud_up[k.0] {
                    blocked[ResourceId::CloudCpu(k)] = true;
                    blocked[ResourceId::CloudIn(k)] = true;
                    blocked[ResourceId::CloudOut(k)] = true;
                }
            }
        }
        activations.clear();
        {
            let mut view = SimView::new(instance, now, &jobs, &pending).with_epoch(epoch);
            if let Some(av) = avail.as_ref() {
                view = view.with_availability(av);
            }
            if !opts.allow_preemption {
                skip.fill(false);
                grant::pin_running(&view, &mut blocked, &mut skip, &mut activations);
            }
            greedy_allocate(
                &view,
                buf.as_slice(),
                &mut blocked,
                &skip,
                opts.infinite_ports,
                &mut activations,
            );
        }
        if let Some(av) = avail.as_ref() {
            // Link degradation: scale granted communication rates by the
            // origin edge's current factor. Factors of exactly 1.0 leave
            // the rate bit-identical; factor 0 never reaches here (the
            // ports were blocked above, so no activation was granted).
            for act in activations.iter_mut() {
                if act.phase != Phase::Compute {
                    let f = av.link_factor[instance.job(act.job).origin.0];
                    if f != 1.0 {
                        act.rate *= f;
                    }
                }
            }
        }

        // Only the previous grant can have left `running` flags set
        // (fault kills and completions clear theirs inline), so sweep
        // just those instead of every job.
        for act in &prev_activations {
            jobs[act.job.0].running = None;
        }
        for act in &activations {
            jobs[act.job.0].running = Some(act.phase);
        }

        if let Some(log) = event_log.as_mut() {
            log.push(EventRecord {
                time: now,
                pending: pending.len(),
                activations: activations
                    .iter()
                    .map(|a| (a.job, a.phase, a.target))
                    .collect(),
            });
        }

        // 5. Find the next event horizon.
        let mut t_next = queue.peek_time();
        for act in &activations {
            let st = &jobs[act.job.0];
            let job = instance.job(act.job);
            let rem = remaining_volume(st, job, act.phase) / act.rate;
            let fin = now + Time::new(rem);
            t_next = Some(t_next.map_or(fin, |t| t.min(fin)));
        }
        let Some(t_next) = t_next else {
            let pending = jobs
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.finished)
                .map(|(i, _)| JobId(i))
                .collect();
            return Err(EngineError::Stalled { time: now, pending });
        };

        // 6. Advance time, accrue progress, record the trace.
        let t_next = t_next.max(now);
        let dt = (t_next - now).seconds();
        if dt > 0.0 {
            for act in &activations {
                let st = &mut jobs[act.job.0];
                let amount = act.rate * dt;
                match act.phase {
                    Phase::Uplink => st.up_done += amount,
                    Phase::Compute => st.work_done += amount,
                    Phase::Downlink => st.dn_done += amount,
                }
                trace.record(act.job, act.phase, act.target, Interval::new(now, t_next));
                emit!(ObsEvent::Placed {
                    job: act.job.0,
                    origin: instance.job(act.job).origin.0,
                    target: obs_unit(instance.job(act.job).origin, act.target, act.phase),
                    phase: obs_phase(act.phase),
                    interval: Interval::new(now, t_next),
                    volume: if act.phase == Phase::Compute {
                        0.0
                    } else {
                        amount
                    },
                });
            }
        }
        now = t_next;

        // 7. Job completions (phase transitions become visible to the next
        //    decision automatically).
        for act in &activations {
            let st = &mut jobs[act.job.0];
            if st.finished {
                continue;
            }
            let job = instance.job(act.job);
            if st.current_phase(job, act.target).is_none() {
                st.finished = true;
                st.completion = Some(now);
                st.running = None;
                pending.remove(job.release, act.job);
                unfinished -= 1;
                // A completion shrinks the pending membership: always a
                // decision-relevant transition.
                epoch += 1;
                trace.complete(act.job, now);
                emit!(ObsEvent::Completed {
                    t: now,
                    job: act.job.0,
                    response: (now - job.release).seconds(),
                });
            }
        }
        std::mem::swap(&mut prev_activations, &mut activations);
    }

    emit!(ObsEvent::RunEnd { makespan: now });
    stats.total_time = started.elapsed();
    Ok(RunOutcome {
        schedule: trace.finish(),
        stats,
        event_log,
    })
}

#[cfg(test)]
mod tests;
