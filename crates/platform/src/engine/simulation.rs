//! The one batch entry point: a builder collapsing the historical
//! `simulate` / `simulate_with` / `simulate_observed` /
//! `simulate_with_faults` / `simulate_with_faults_observed` quintet.
//!
//! ```
//! use mmsec_platform::{figure1_instance, Simulation};
//! # struct Noop;
//! # impl mmsec_platform::OnlineScheduler for Noop {
//! #     fn name(&self) -> String { "noop".into() }
//! #     fn decide(&mut self, view: &mmsec_platform::SimView<'_>,
//! #               out: &mut mmsec_platform::DirectiveBuffer) {
//! #         for id in view.pending_jobs() {
//! #             out.push(id, mmsec_platform::Target::Edge);
//! #         }
//! #     }
//! # }
//! let instance = figure1_instance();
//! let mut policy = Noop;
//! let outcome = Simulation::of(&instance).policy(&mut policy).run().unwrap();
//! assert!(outcome.schedule.all_finished());
//! ```
//!
//! Every optional ingredient — engine options, a fault plan, an observer
//! — is attached with a builder method; [`Simulation::run`] executes to
//! completion, while [`Simulation::session`] hands back the underlying
//! resumable [`Session`] for streaming use ([`Session::submit`] /
//! [`Session::run_until`]).
//!
//! # Borrowed vs owned ingredients
//!
//! The borrowing builders ([`Simulation::of`], [`Simulation::policy`],
//! [`Simulation::observer`]) suit batch runs where the caller keeps the
//! pieces to inspect afterwards. Embedders that need a *self-contained*
//! session — one that can be stored in a map or handed to a worker
//! thread's state without a surrounding owner — use the owning variants
//! ([`Simulation::owning`], [`Simulation::policy_boxed`],
//! [`Simulation::observer_boxed`]), which move the instance, policy, and
//! observer into the session itself. The server's per-tenant lanes are
//! built this way.

use super::outcome::{EngineError, RunOutcome};
use super::session::{ObsSlot, SchedSlot, Session};
use super::{EngineOptions, OnlineScheduler};
use crate::instance::Instance;
use mmsec_faults::FaultPlan;
use mmsec_obs::{Observer, PhaseProfiler};
use std::borrow::Cow;

/// Builder for a simulation run (see the module docs).
pub struct Simulation<'a> {
    instance: Cow<'a, Instance>,
    policy: Option<SchedSlot<'a>>,
    opts: EngineOptions,
    faults: Option<&'a FaultPlan>,
    observer: ObsSlot<'a>,
    profiler: Option<&'a mut PhaseProfiler>,
}

impl<'a> Simulation<'a> {
    /// Starts a builder over a borrowed `instance` with default
    /// [`EngineOptions`].
    pub fn of(instance: &'a Instance) -> Self {
        Self::from_cow(Cow::Borrowed(instance))
    }

    /// Starts a builder that moves `instance` into the session. Combined
    /// with [`Simulation::policy_boxed`] (and, optionally,
    /// [`Simulation::observer_boxed`]) the resulting session borrows
    /// nothing from its creator.
    pub fn owning(instance: Instance) -> Self {
        Self::from_cow(Cow::Owned(instance))
    }

    fn from_cow(instance: Cow<'a, Instance>) -> Self {
        Simulation {
            instance,
            policy: None,
            opts: EngineOptions::default(),
            faults: None,
            observer: ObsSlot::None,
            profiler: None,
        }
    }

    /// Sets the scheduling policy (required before [`Simulation::run`] or
    /// [`Simulation::session`]).
    pub fn policy(mut self, policy: &'a mut dyn OnlineScheduler) -> Self {
        self.policy = Some(SchedSlot::Borrowed(policy));
        self
    }

    /// Sets the scheduling policy by value: the session owns it. The
    /// by-reference [`Simulation::policy`] remains the right call when
    /// the caller wants the policy back after the run.
    pub fn policy_boxed(mut self, policy: Box<dyn OnlineScheduler + 'a>) -> Self {
        self.policy = Some(SchedSlot::Owned(policy));
        self
    }

    /// Overrides the engine options (default: the paper's model).
    pub fn options(mut self, opts: EngineOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Injects the faults of a compiled [`FaultPlan`]: units crash and
    /// recover at the plan's window boundaries, work in flight on a
    /// crashed unit is lost (the job re-executes from scratch and
    /// [`super::RunStats::restarts`] is incremented), and link windows
    /// pause or slow the affected edge's communications without wiping
    /// progress. An empty plan takes the exact fault-free code path.
    /// Fault injection requires preemption; link windows additionally
    /// require the one-port model.
    pub fn faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Streams typed [`mmsec_obs::Event`]s to `observer` during the run.
    /// Policy-internal events additionally require handing the policy a
    /// clone of the same observer via
    /// [`OnlineScheduler::attach_observer`] before running — typically
    /// through [`mmsec_obs::Shared`].
    pub fn observer(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observer = ObsSlot::Borrowed(observer);
        self
    }

    /// Attaches an observer by value: the session owns it (see
    /// [`Simulation::observer`] for the semantics).
    pub fn observer_boxed(mut self, observer: Box<dyn Observer + 'a>) -> Self {
        self.observer = ObsSlot::Owned(observer);
        self
    }

    /// Aggregates engine phase-span timings into `profiler` during the
    /// run (see [`mmsec_obs::PhaseProfiler`]). Pure telemetry: the
    /// simulation result is bit-identical with or without it.
    pub fn profiler(mut self, profiler: &'a mut PhaseProfiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Builds the resumable [`Session`] (streaming use). The instance's
    /// jobs are pre-submitted; more can be [`Session::submit`]ted while
    /// it runs.
    ///
    /// # Panics
    ///
    /// Panics if no policy was set, if availability windows are combined
    /// with `allow_preemption = false`, or if the fault plan does not
    /// match the platform shape.
    pub fn session(self) -> Session<'a> {
        let policy = self
            .policy
            .expect("Simulation::policy must be set before running");
        Session::new(
            self.instance,
            policy,
            self.opts,
            self.faults,
            self.observer,
            self.profiler,
        )
    }

    /// Runs the simulation to completion: submit everything, drain,
    /// finalize. Bit-identical to the historical `simulate*` entry
    /// points.
    ///
    /// # Panics
    ///
    /// See [`Simulation::session`].
    pub fn run(self) -> Result<RunOutcome, EngineError> {
        let mut session = self.session();
        session.drain()?;
        Ok(session.into_outcome())
    }
}
