//! Resumable simulation sessions: the engine loop as a driver object.
//!
//! A [`Session`] owns every piece of engine state that the batch
//! `simulate*` entry points used to keep as locals — the event queue, the
//! per-job dynamic states, the pending set, the decision epoch, the
//! reusable buffers — so the simulation can be *paused and resumed*
//! between events, and jobs can be [`Session::submit`]ted while it runs.
//! The paper's online model (§III, §V) is a stream: jobs are revealed at
//! their release dates and the scheduler reacts. The session layer makes
//! that literal — the batch API ([`super::simulation::Simulation::run`])
//! is now a thin wrapper that submits everything up front and
//! [`Session::drain`]s.
//!
//! # Equivalence with batch runs
//!
//! A session fed each job at (or before) its release date takes the exact
//! decision points a batch run takes: the initial queue of a batch run
//! contains every release up front, so both runs split progress accrual
//! at the same instants and the schedules are **bit-identical** (the
//! `session_equivalence` proptest pins this across the policy registry
//! and fault plans). Pausing at other instants via [`Session::run_until`]
//! inserts extra decision points; schedules remain valid but are not
//! guaranteed bit-identical to a batch run.
//!
//! # Late submissions
//!
//! A job submitted with a release date in the past (relative to the
//! session's virtual clock) is admitted immediately: its release event
//! fires at the current virtual time, while its stretch keeps being
//! measured from the *declared* release date, exactly as a batch run
//! would have measured it.

use crate::activity::{DirectiveBuffer, Phase, Target};
use crate::instance::{Instance, InstanceError};
use crate::job::{Job, JobId};
use crate::resource::{ResourceId, ResourceMap};
use crate::schedule::TraceBuilder;
use crate::spec::{CloudId, EdgeId};
use crate::state::{JobArena, JobState, PlatformError, PlatformMutation, PlatformState};
use crate::view::{PendingSet, SimView};
use std::borrow::Cow;
use std::time::{Duration, Instant};

use super::events::{
    self, obs_phase, obs_unit, prime_faults, prime_queue, EngineEvent, EngineQueue, RANK_RELEASE,
};
use super::grant::{self, greedy_allocate, Activation};
use super::outcome::{EngineError, EventRecord, RunOutcome, RunStats};
use super::{DecisionCadence, EngineOptions, OnlineScheduler};
use mmsec_faults::FaultPlan;
use mmsec_obs::{EnginePhase, Event as ObsEvent, Observer, PhaseProfiler, Unit};
use mmsec_sim::{Interval, Time};

/// Evaluates the event expression only when an observer is attached: an
/// unobserved session pays one branch per emission point and nothing else.
macro_rules! emit {
    ($s:expr, $ev:expr) => {
        if let Some(o) = $s.observer.as_deref_mut() {
            o.on_event(&$ev);
        }
    };
}

/// Policy storage: borrowed for embedders that drive a policy they keep
/// (the batch benches, the CLI), owned for self-contained sessions whose
/// policy must live and die with them (server shard lanes).
pub(crate) enum SchedSlot<'a> {
    /// The caller keeps the policy and lends it for the session's life.
    Borrowed(&'a mut dyn OnlineScheduler),
    /// The session owns the policy outright.
    Owned(Box<dyn OnlineScheduler + 'a>),
}

impl SchedSlot<'_> {
    #[inline]
    fn get(&mut self) -> &mut dyn OnlineScheduler {
        match self {
            SchedSlot::Borrowed(s) => &mut **s,
            SchedSlot::Owned(b) => b.as_mut(),
        }
    }

    #[inline]
    fn get_ref(&self) -> &dyn OnlineScheduler {
        match self {
            SchedSlot::Borrowed(s) => &**s,
            SchedSlot::Owned(b) => b.as_ref(),
        }
    }
}

/// Observer storage, mirroring [`SchedSlot`]: `as_deref_mut` keeps the
/// same shape `Option<&'a mut dyn Observer>` exposed, so every emission
/// site (and the `emit!` macro) is agnostic to ownership.
pub(crate) enum ObsSlot<'a> {
    /// No observer attached: emission points reduce to untaken branches.
    None,
    /// The caller keeps the observer and lends it for the session's life.
    Borrowed(&'a mut dyn Observer),
    /// The session owns the observer outright.
    Owned(Box<dyn Observer + 'a>),
}

impl ObsSlot<'_> {
    #[inline]
    fn as_deref_mut(&mut self) -> Option<&mut dyn Observer> {
        match self {
            ObsSlot::None => None,
            ObsSlot::Borrowed(o) => Some(&mut **o),
            ObsSlot::Owned(b) => Some(b.as_mut()),
        }
    }
}

/// What a bounded stepping call achieved (see [`Session::step`] and
/// [`Session::run_until`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// One engine step ran: events fired, a decision was taken (or
    /// skipped under gating), and virtual time advanced to the next
    /// event horizon.
    Advanced,
    /// The requested time bound capped the advance: virtual time sits at
    /// the bound, in-flight progress was accrued up to it, and the next
    /// engine event still lies in the future.
    Reached,
    /// Every submitted job has finished. The session is idle; submitting
    /// more work wakes it up.
    Done,
    /// Unfinished jobs exist but no activity was granted and no future
    /// event is queued — a batch run would fail with
    /// [`EngineError::Stalled`] here. A session reports it as a status
    /// because a later [`Session::submit`] can unblock the run.
    Blocked,
}

/// A completed job, as accumulated by the session between
/// [`Session::take_completions`] calls.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompletionRecord {
    /// The job.
    pub job: JobId,
    /// Origin edge unit.
    pub origin: EdgeId,
    /// Target the final (successful) attempt ran on.
    pub target: Target,
    /// Declared release date.
    pub release: Time,
    /// Completion time.
    pub completion: Time,
    /// Stretch `(C_i − r_i) / min(t^e_i, t^c_i)` — the paper's objective.
    pub stretch: f64,
}

impl CompletionRecord {
    /// Response time `C_i − r_i`, in seconds.
    pub fn response(&self) -> f64 {
        (self.completion - self.release).seconds()
    }
}

/// A point-in-time summary of a running session (see
/// [`Session::snapshot`]). Cheap to produce: no allocation.
#[derive(Clone, Copy, Debug)]
pub struct SessionStats {
    /// Current virtual time.
    pub now: Time,
    /// Jobs submitted so far (batch construction counts as submission).
    pub submitted: usize,
    /// Jobs that have completed.
    pub completed: usize,
    /// Jobs submitted but not yet finished (released or not).
    pub unfinished: usize,
    /// Jobs currently released and unfinished.
    pub pending: usize,
    /// Jobs holding a resource grant from the most recent engine step.
    pub running: usize,
    /// Maximum stretch over completed jobs (`0.0` before any completion).
    pub max_stretch: f64,
    /// Mean stretch over completed jobs (`0.0` before any completion).
    pub mean_stretch: f64,
    /// Engine counters (events, decides, skips, restarts, wall time so
    /// far).
    pub run: RunStats,
}

/// A resumable simulation: the engine loop, paused between events.
///
/// Build one through [`super::simulation::Simulation::session`]; drive it
/// with [`Session::submit`], [`Session::step`], [`Session::run_until`],
/// and [`Session::drain`]; read progress with [`Session::snapshot`] and
/// [`Session::take_completions`]; convert the finished run into a
/// [`RunOutcome`] with [`Session::into_outcome`].
pub struct Session<'a> {
    scheduler: SchedSlot<'a>,
    observer: ObsSlot<'a>,
    /// Phase-span telemetry sink. Like the observer, `None` means the
    /// instrumentation reduces to untaken branches: no clock is read.
    profiler: Option<&'a mut PhaseProfiler>,
    /// Wall time spent replaying fault events inside the current
    /// `fire_due_events` call; carved out of the event-pop span so the
    /// two phases never double-count.
    fault_span: Duration,
    /// Borrowed for batch runs; promoted to an owned clone on the first
    /// post-construction [`Session::submit`].
    instance: Cow<'a, Instance>,
    faults: Option<&'a FaultPlan>,
    opts: EngineOptions,
    gating: bool,
    started_wall: Instant,

    epoch: u64,
    decided_epoch: u64,
    unfinished: usize,
    /// Per-job dynamic state, struct-of-arrays (see [`JobArena`]): the
    /// hot loops below index individual columns so each sweep touches
    /// contiguous memory.
    jobs: JobArena,
    queue: EngineQueue,
    /// The owned, versioned platform runtime. All platform changes —
    /// permanent mutations ([`Session::add_edge`] and friends) and fault
    /// replay — flow through it; while it stays static the engine takes
    /// the exact frozen-instance fast path.
    platform: PlatformState,
    trace: TraceBuilder,
    stats: RunStats,
    event_log: Option<Vec<EventRecord>>,
    now: Time,
    /// False until the first step: the virtual clock snaps to the
    /// earliest queued event then, so pre-start submissions can still
    /// move the start of time backwards.
    started: bool,
    /// Event cap; recomputed from [`events::auto_event_limit`] on submit
    /// (unless pinned by [`EngineOptions::max_events`]) and extended by
    /// one per externally-imposed pause.
    limit: u64,

    // Run-long buffers, reused across events (see "Allocation
    // discipline" in the engine module docs).
    pending: PendingSet,
    buf: DirectiveBuffer,
    activations: Vec<Activation>,
    prev_activations: Vec<Activation>,
    blocked: ResourceMap<bool>,
    skip: Vec<bool>,
    seen: Vec<u64>,
    /// Cached `spec.has_unavailability()`, refreshed on platform
    /// mutations, so the per-event blocking pass skips the window scan
    /// on the (overwhelmingly common) window-free platforms.
    has_unavailability: bool,

    completions: Vec<CompletionRecord>,
    completed: usize,
    stretch_sum: f64,
    stretch_max: f64,
    /// Epoch at which the last [`SessionStatus::Blocked`] was observed:
    /// lets [`Session::run_until`] report Blocked again without burning
    /// an event on a decide that cannot have changed.
    blocked_epoch: Option<u64>,
    /// True right after a bound capped an advance at the current time:
    /// lets a repeated [`Session::run_until`] with the same bound return
    /// immediately instead of re-deciding.
    paused_at_bound: bool,
}

impl<'a> Session<'a> {
    pub(super) fn new(
        instance: Cow<'a, Instance>,
        mut scheduler: SchedSlot<'a>,
        opts: EngineOptions,
        faults: Option<&'a FaultPlan>,
        observer: ObsSlot<'a>,
        profiler: Option<&'a mut PhaseProfiler>,
    ) -> Self {
        let started_wall = Instant::now();
        let spec = &instance.spec;
        assert!(
            !spec.has_unavailability() || opts.allow_preemption,
            "cloud availability windows require preemption"
        );
        // A plan that injects nothing takes the exact fault-free code
        // path, so a zero-failure fault model is bit-identical to no
        // model at all.
        let faults = faults.filter(|p| !p.is_empty());
        if let Some(plan) = faults {
            // `>=`, not `==`: a plan may be compiled for a platform shape
            // the session only grows into through mutations. Fault events
            // for units that have not joined yet are dropped on replay.
            assert!(
                plan.num_edges() >= spec.num_edge(),
                "fault plan covers fewer edges than the platform"
            );
            assert!(
                plan.num_clouds() >= spec.num_cloud(),
                "fault plan covers fewer clouds than the platform"
            );
            assert!(opts.allow_preemption, "fault injection requires preemption");
            assert!(
                !opts.infinite_ports || spec.edges().all(|j| plan.link_windows(j.0).is_empty()),
                "link faults require the one-port model (infinite_ports = false)"
            );
        }
        let n = instance.num_jobs();
        let limit = opts.max_events.unwrap_or_else(|| match faults {
            Some(plan) => events::auto_event_limit_with_faults(&instance, plan),
            None => events::auto_event_limit(&instance),
        });
        let gating = opts.decision_gating
            && opts.allow_preemption
            && scheduler.get_ref().cadence() == DecisionCadence::OnEpochChange;
        let mut queue = prime_queue(&instance, opts.reference_queue);
        if let Some(plan) = faults {
            prime_faults(&mut queue, plan);
        }
        let mut platform = PlatformState::new(spec.clone());
        if faults.is_some() {
            // Fault replay needs the availability overlay from the start;
            // the platform stays at version 1 (faults are temporary).
            platform.mark_dynamic();
        }
        let now = queue.peek_time().unwrap_or(Time::ZERO);
        let blocked = ResourceMap::new(spec, false);
        let has_unavailability = spec.has_unavailability();
        let event_log = opts.record_events.then(Vec::new);
        let jobs = JobArena::fresh(&instance, spec);

        scheduler.get().on_start(&instance);
        let mut session = Session {
            scheduler,
            observer,
            profiler,
            fault_span: Duration::ZERO,
            instance,
            faults,
            opts,
            gating,
            started_wall,
            epoch: 1,
            decided_epoch: 0,
            unfinished: n,
            jobs,
            queue,
            platform,
            trace: TraceBuilder::new(n),
            stats: RunStats::default(),
            event_log,
            now,
            started: false,
            limit,
            pending: PendingSet::new(),
            buf: DirectiveBuffer::new(),
            activations: Vec::new(),
            prev_activations: Vec::new(),
            blocked,
            skip: vec![false; n],
            seen: vec![0u64; n],
            has_unavailability,
            completions: Vec::new(),
            completed: 0,
            stretch_sum: 0.0,
            stretch_max: 0.0,
            blocked_epoch: None,
            paused_at_bound: false,
        };
        if let Some(p) = session.profiler.as_deref_mut() {
            p.set_policy(&session.scheduler.get_ref().name());
        }
        emit!(
            session,
            ObsEvent::RunStart {
                policy: session.scheduler.get_ref().name(),
                jobs: n,
                edges: session.instance.spec.num_edge(),
                clouds: session.instance.spec.num_cloud(),
            }
        );
        session
    }

    /// The instance as the session currently sees it (grows on submit).
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// True when every submitted job has finished.
    pub fn is_idle(&self) -> bool {
        self.unfinished == 0
    }

    /// True once the virtual clock has started ticking (the first step
    /// ran). Before that, [`Session::now`] still reports the earliest
    /// queued event — pre-start submissions can move it backwards — so
    /// callers that stamp records with session time should not trust it
    /// until the session has started.
    pub fn started(&self) -> bool {
        self.started
    }

    /// The time of the earliest queued engine event, if any: the instant
    /// the virtual clock would snap to on the next step of an unstarted
    /// session, and a lower bound on the next state change of a started
    /// one that holds no activity in flight.
    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Submits a job to the running session and returns its id.
    ///
    /// The job's release event is queued at its declared release date, or
    /// at the current virtual time when that date is already in the past
    /// (late submission — see the module docs). Fails if the origin edge
    /// does not exist on the platform.
    pub fn submit(&mut self, job: Job) -> Result<JobId, InstanceError> {
        // A tombstoned (removed) edge no longer exists as an origin: jobs
        // submitted for it are rejected exactly like an out-of-range one.
        if job.origin.0 >= self.platform.spec().num_edge() || !self.platform.edge_live(job.origin) {
            return Err(InstanceError::OriginOutOfRange {
                job: self.instance.num_jobs(),
                origin: job.origin.0,
            });
        }
        let id = JobId(self.instance.num_jobs());
        self.instance.to_mut().jobs.push(job);
        self.jobs
            .push(JobState::default(), job.min_time(self.platform.spec()));
        self.skip.push(false);
        self.seen.push(0);
        self.trace.grow(1);
        self.unfinished += 1;
        let at = if self.started && job.release < self.now {
            self.now
        } else {
            job.release
        };
        self.queue.push(at, RANK_RELEASE, EngineEvent::Release(id));
        // The livelock budget scales with the submitted workload.
        if self.opts.max_events.is_none() {
            self.limit = match self.faults {
                Some(plan) => events::auto_event_limit_with_faults(&self.instance, plan),
                None => events::auto_event_limit(&self.instance),
            };
        }
        self.paused_at_bound = false;
        emit!(
            self,
            ObsEvent::JobSubmitted {
                t: self.now,
                job: id.0,
            }
        );
        Ok(id)
    }

    /// The versioned platform runtime the session executes on: its
    /// current spec, composed availability, membership, and
    /// [version](PlatformState::version).
    pub fn platform(&self) -> &PlatformState {
        &self.platform
    }

    /// Applies one permanent platform mutation by value — the typed
    /// method forms ([`Session::add_edge`] and friends) are equivalent.
    /// Returns the new platform version.
    pub fn apply_platform(&mut self, m: PlatformMutation) -> Result<u64, PlatformError> {
        match m {
            PlatformMutation::AddEdge { speed } => {
                self.add_edge(speed).map(|_| self.platform.version())
            }
            PlatformMutation::RemoveEdge { edge } => self.remove_edge(edge),
            PlatformMutation::AddCloud { speed } => {
                self.add_cloud(speed).map(|_| self.platform.version())
            }
            PlatformMutation::RemoveCloud { cloud } => self.remove_cloud(cloud),
            PlatformMutation::SetLink { edge, factor } => self.set_link(edge, factor),
            PlatformMutation::SetEdgeSpeed { edge, speed } => self.set_edge_speed(edge, speed),
            PlatformMutation::SetCloudSpeed { cloud, speed } => self.set_cloud_speed(cloud, speed),
            PlatformMutation::SetHop { hop, up, dn } => self.set_hop(hop, up, dn),
        }
    }

    /// A new edge unit joins the platform (nominal link). Takes effect at
    /// the next step: the decision epoch is bumped, so gated policies
    /// re-decide against the grown platform. Returns the new unit's id.
    pub fn add_edge(&mut self, speed: f64) -> Result<EdgeId, PlatformError> {
        let id = self.platform.add_edge(speed)?;
        self.platform_changed("add-edge", Unit::Edge(id.0));
        Ok(id)
    }

    /// Edge `j` leaves the platform permanently (tombstoned: its id stays
    /// valid and it reports unavailable forever). Rejected while
    /// unfinished jobs originate there — those jobs could never complete
    /// (their uplink/downlink endpoints die with the unit). Returns the
    /// new platform version.
    pub fn remove_edge(&mut self, j: EdgeId) -> Result<u64, PlatformError> {
        let unfinished = self
            .instance
            .jobs
            .iter()
            .zip(&self.jobs.finished)
            .filter(|(job, &finished)| job.origin == j && !finished)
            .count();
        if unfinished > 0 {
            return Err(PlatformError::OriginInUse {
                edge: j.0,
                unfinished,
            });
        }
        let v = self.platform.remove_edge(j)?;
        self.platform_changed("remove-edge", Unit::Edge(j.0));
        Ok(v)
    }

    /// A new cloud processor joins the platform. Returns its id.
    pub fn add_cloud(&mut self, speed: f64) -> Result<CloudId, PlatformError> {
        let id = self.platform.add_cloud(speed)?;
        self.platform_changed("add-cloud", Unit::Cloud(id.0));
        Ok(id)
    }

    /// Cloud `k` leaves the platform permanently (tombstoned). Work in
    /// flight on the removed processor is lost, exactly as under a
    /// crash-down fault: affected jobs drop their commitment, wiped
    /// progress counts as a restart, and a `JobKilled` event is emitted.
    /// Returns the new platform version.
    pub fn remove_cloud(&mut self, k: CloudId) -> Result<u64, PlatformError> {
        let v = self.platform.remove_cloud(k)?;
        for i in 0..self.jobs.len() {
            if self.jobs.finished[i] || self.jobs.committed[i] != Some(Target::Cloud(k)) {
                continue;
            }
            let had_progress =
                self.jobs.up_done[i] + self.jobs.work_done[i] + self.jobs.dn_done[i] > 0.0;
            self.jobs.committed[i] = None;
            self.jobs.running[i] = None;
            if had_progress {
                self.jobs.reset_progress(i);
                self.stats.restarts += 1;
                self.trace.abandon(JobId(i));
                if let Some(o) = self.observer.as_deref_mut() {
                    o.on_event(&ObsEvent::JobKilled {
                        t: self.now,
                        job: i,
                        unit: Unit::Cloud(k.0),
                    });
                }
            }
        }
        self.platform_changed("remove-cloud", Unit::Cloud(k.0));
        Ok(v)
    }

    /// Re-provisions edge `j`'s link to base capacity `factor` (composed
    /// multiplicatively with any fault window's factor). Returns the new
    /// platform version.
    pub fn set_link(&mut self, j: EdgeId, factor: f64) -> Result<u64, PlatformError> {
        let v = self.platform.set_link(j, factor)?;
        self.platform_changed("set-link", Unit::Edge(j.0));
        Ok(v)
    }

    /// Re-provisions edge `j` to a new speed. In-flight progress is kept:
    /// work is tracked in work units, so remaining compute simply
    /// proceeds at the new rate. Returns the new platform version.
    pub fn set_edge_speed(&mut self, j: EdgeId, speed: f64) -> Result<u64, PlatformError> {
        let v = self.platform.set_edge_speed(j, speed)?;
        self.platform_changed("set-edge-speed", Unit::Edge(j.0));
        Ok(v)
    }

    /// Re-provisions cloud `k` to a new speed (progress kept, as for
    /// [`Session::set_edge_speed`]). Returns the new platform version.
    pub fn set_cloud_speed(&mut self, k: CloudId, speed: f64) -> Result<u64, PlatformError> {
        let v = self.platform.set_cloud_speed(k, speed)?;
        self.platform_changed("set-cloud-speed", Unit::Cloud(k.0));
        Ok(v)
    }

    /// Re-provisions tier hop `hop` (the link between tiers `hop` and
    /// `hop + 1`) to new per-volume path factors. In-flight transfers
    /// keep their transferred volume and proceed at the new rate, exactly
    /// as a speed change does for compute. Rejected on flat (untiered)
    /// platforms. Returns the new platform version.
    pub fn set_hop(&mut self, hop: usize, up: f64, dn: f64) -> Result<u64, PlatformError> {
        let v = self.platform.set_hop(hop, up, dn)?;
        self.platform_changed("set-hop", Unit::Hop(hop));
        Ok(v)
    }

    /// Bookkeeping shared by every committed platform mutation: the
    /// version bump is a decision-epoch bump (gated policies must
    /// re-decide), resource maps are re-sized to the new spec, a paused
    /// or blocked session is woken (a mutation can unblock it), and the
    /// mutation is announced to the observer.
    fn platform_changed(&mut self, op: &'static str, unit: Unit) {
        self.epoch += 1;
        self.blocked.reset_for(self.platform.spec(), false);
        self.has_unavailability = self.platform.spec().has_unavailability();
        // Speed/membership changes move the stretch denominators; refresh
        // the arena cache so stretch reads stay coherent with the spec.
        self.jobs
            .recompute_min_times(&self.instance, self.platform.spec());
        self.blocked_epoch = None;
        self.paused_at_bound = false;
        // The forced re-decide consumes one event of livelock budget.
        self.limit += 1;
        emit!(
            self,
            ObsEvent::PlatformChanged {
                t: self.now,
                version: self.platform.version(),
                op,
                unit,
            }
        );
    }

    /// Runs one engine step to the next event horizon (unbounded in
    /// time). Equivalent to one iteration of the batch loop.
    pub fn step(&mut self) -> Result<SessionStatus, EngineError> {
        self.step_inner(None)
    }

    /// Advances the session up to virtual time `t` (inclusive): steps
    /// while the next event horizon is at or before `t`, then accrues
    /// in-flight progress up to `t` and pauses there.
    ///
    /// Returns [`SessionStatus::Reached`] when `t` capped the advance,
    /// [`SessionStatus::Done`] when all submitted jobs finished first,
    /// and [`SessionStatus::Blocked`] when unfinished jobs can make no
    /// progress until more work is submitted.
    pub fn run_until(&mut self, t: Time) -> Result<SessionStatus, EngineError> {
        loop {
            if self.unfinished == 0 {
                return Ok(SessionStatus::Done);
            }
            if self.started {
                let due = self
                    .queue
                    .peek_time()
                    .is_some_and(|p| p.approx_le(self.now));
                if !due {
                    // Already paused at (or beyond) the bound: nothing
                    // new can happen before `t`, so don't burn an event
                    // on a decide that cannot change anything.
                    if self.now > t || (self.now >= t && self.paused_at_bound) {
                        return Ok(SessionStatus::Reached);
                    }
                    // Known-blocked at this epoch with an empty queue:
                    // only a submission can unblock the run.
                    if self.blocked_epoch == Some(self.epoch) && self.queue.is_empty() {
                        return Ok(SessionStatus::Blocked);
                    }
                }
            }
            match self.step_inner(Some(t))? {
                SessionStatus::Advanced => continue,
                status => return Ok(status),
            }
        }
    }

    /// Runs the session to completion of every submitted job. A blocked
    /// session is an error here — this is the batch semantics, where
    /// unfinished jobs with no future event mean the scheduler stopped
    /// scheduling them.
    pub fn drain(&mut self) -> Result<(), EngineError> {
        loop {
            match self.step_inner(None)? {
                SessionStatus::Advanced => {}
                SessionStatus::Done => return Ok(()),
                SessionStatus::Blocked => {
                    let pending = (0..self.jobs.len())
                        .filter(|&i| !self.jobs.finished[i])
                        .map(JobId)
                        .collect();
                    return Err(EngineError::Stalled {
                        time: self.now,
                        pending,
                    });
                }
                SessionStatus::Reached => unreachable!("unbounded step cannot hit a bound"),
            }
        }
    }

    /// A point-in-time summary of the session. Allocation-free.
    pub fn snapshot(&self) -> SessionStats {
        let mut run = self.stats;
        run.total_time = self.started_wall.elapsed();
        SessionStats {
            now: self.now,
            submitted: self.instance.num_jobs(),
            completed: self.completed,
            unfinished: self.unfinished,
            pending: self.pending.len(),
            // The last grant survives in `prev_activations` between
            // steps; jobs that completed during the step drop out.
            running: self
                .prev_activations
                .iter()
                .filter(|a| !self.jobs.finished[a.job.0])
                .count(),
            max_stretch: self.stretch_max,
            mean_stretch: if self.completed > 0 {
                self.stretch_sum / self.completed as f64
            } else {
                0.0
            },
            run,
        }
    }

    /// Takes the completion records accumulated since the last call (in
    /// completion order).
    pub fn take_completions(&mut self) -> Vec<CompletionRecord> {
        std::mem::take(&mut self.completions)
    }

    /// Drains the completion records accumulated since the last call,
    /// keeping the buffer's capacity — unlike
    /// [`Session::take_completions`], a steady-state consumer loop
    /// (e.g. `mmsec serve`) never re-allocates the backlog storage.
    pub fn drain_completions(&mut self) -> impl Iterator<Item = CompletionRecord> + '_ {
        self.completions.drain(..)
    }

    /// Finalizes the session into a batch-style [`RunOutcome`].
    pub fn into_outcome(mut self) -> RunOutcome {
        emit!(self, ObsEvent::RunEnd { makespan: self.now });
        let mut stats = self.stats;
        stats.total_time = self.started_wall.elapsed();
        RunOutcome {
            schedule: self.trace.finish(),
            stats,
            event_log: self.event_log,
        }
    }

    /// Closes the span opened at `mark` into `phase` and returns the new
    /// fencepost: one clock read both ends this span and starts the next,
    /// so the phases partition the step with no unmeasured gaps. `None`
    /// (profiler off) stays `None` and reads no clock.
    #[inline]
    fn prof_lap(&mut self, mark: Option<Instant>, phase: EnginePhase) -> Option<Instant> {
        mark.map(|t0| {
            let t1 = Instant::now();
            if let Some(p) = self.profiler.as_deref_mut() {
                p.record(phase, t1 - t0);
            }
            t1
        })
    }

    /// Accounts one full pass through `step_inner` (entered at `t_enter`)
    /// to the profiler's loop wall time. Called at every exit path.
    #[inline]
    fn prof_step_done(&mut self, t_enter: Option<Instant>) {
        if let Some(t0) = t_enter {
            let wall = t0.elapsed();
            if let Some(p) = self.profiler.as_deref_mut() {
                p.add_step(wall);
            }
        }
    }

    /// One iteration of the batch engine loop, optionally capped at a
    /// time bound: fire due events, decide (or skip under gating), apply
    /// commitments, grant resources, advance to the next horizon (or the
    /// bound), accrue progress, process completions.
    fn step_inner(&mut self, bound: Option<Time>) -> Result<SessionStatus, EngineError> {
        if !self.started {
            let Some(t0) = self.queue.peek_time() else {
                // Nothing was ever submitted (submissions always queue a
                // release): the session is trivially done.
                debug_assert_eq!(self.unfinished, 0);
                return Ok(SessionStatus::Done);
            };
            if bound.is_some_and(|b| t0 > b) {
                // Time has not started yet and nothing happens before the
                // bound; stay unstarted so earlier submissions can still
                // move the start of time backwards.
                return Ok(SessionStatus::Reached);
            }
            self.now = t0;
            self.started = true;
        }
        debug_assert!(
            bound.map_or(true, |b| b >= self.now),
            "bound lies in the past"
        );
        self.paused_at_bound = false;

        // Telemetry: with a profiler attached, fencepost clock reads
        // partition the step into phase spans. `t_enter` doubles as the
        // first fencepost and the loop-wall anchor; each `prof_lap`
        // closes one span and opens the next with a single read.
        let t_enter = self.profiler.is_some().then(Instant::now);
        self.fault_span = Duration::ZERO;

        // 1. Fire all events at (approximately) the current instant.
        self.fire_due_events();
        let mut mark = t_enter.map(|t0| {
            let t1 = Instant::now();
            // Fault replay was timed separately inside `fire_due_events`;
            // subtract it so event-pop and fault-replay stay disjoint.
            let span = (t1 - t0).saturating_sub(self.fault_span);
            if let Some(p) = self.profiler.as_deref_mut() {
                p.record(EnginePhase::EventPop, span);
            }
            t1
        });

        if self.unfinished == 0 {
            self.prof_step_done(t_enter);
            return Ok(SessionStatus::Done);
        }

        self.stats.events += 1;
        if self.stats.events > self.limit {
            self.prof_step_done(t_enter);
            return Err(EngineError::EventLimit { limit: self.limit });
        }

        // 2. Ask the policy for directives — unless gating is on and no
        //    decision-relevant state changed since the last invoked
        //    decide, in which case the previous sanitized buffer is
        //    reused verbatim (finished/killed jobs always bump the
        //    epoch, so a stale directive cannot survive a skip).
        let mut invoked_wall: Option<Duration> = None;
        if self.gating && self.epoch == self.decided_epoch {
            self.stats.decide_skips += 1;
            emit!(
                self,
                ObsEvent::DecideSkipped {
                    t: self.now,
                    pending: self.pending.len(),
                }
            );
        } else {
            {
                let view = SimView::new(&self.instance, self.now, &self.jobs, &self.pending)
                    .with_epoch(self.epoch)
                    .with_platform(&self.platform);
                emit!(
                    self,
                    ObsEvent::DecideStart {
                        t: self.now,
                        pending: view.num_pending(),
                    }
                );
                self.buf.clear();
                let t0 = Instant::now();
                self.scheduler.get().decide(&view, &mut self.buf);
                let wall = t0.elapsed();
                self.stats.decide_time += wall;
                invoked_wall = Some(wall);
                // Sanitize: keep the first directive per job, drop
                // unreleased/finished jobs.
                let stamp = self.stats.events;
                let jobs = &self.jobs;
                let seen = &mut self.seen;
                let n = jobs.len();
                self.buf.retain(|d| {
                    let ok = d.job.0 < n && jobs.active(d.job.0) && seen[d.job.0] != stamp;
                    if ok {
                        seen[d.job.0] = stamp;
                    }
                    ok
                });
                emit!(
                    self,
                    ObsEvent::DecideEnd {
                        t: self.now,
                        wall,
                        directives: self.buf.len(),
                    }
                );
            }
            self.stats.decides += 1;
            self.decided_epoch = self.epoch;
            // The delta always describes "membership change since the
            // last invoked decide", for gated and ungated runs alike.
            self.pending.clear_delta();
        }
        if let Some(t0) = mark {
            // The segment since the last fencepost holds the decide call
            // plus its sanitize/replay bookkeeping: the decide span is
            // the policy wall time already measured for `stats`, the
            // remainder is sanitize (the whole segment on a gated skip).
            let t1 = Instant::now();
            let seg = t1 - t0;
            if let Some(p) = self.profiler.as_deref_mut() {
                match invoked_wall {
                    Some(w) => {
                        let w = w.min(seg);
                        p.note_decide();
                        p.record(EnginePhase::Decide, w);
                        p.record(EnginePhase::Sanitize, seg - w);
                    }
                    None => {
                        p.note_skip();
                        p.record(EnginePhase::Sanitize, seg);
                    }
                }
            }
            mark = Some(t1);
        }

        // 3. Apply commitments / re-executions.
        for d in self.buf.as_mut_slice() {
            let i = d.job.0;
            match self.jobs.committed[i] {
                None => self.jobs.committed[i] = Some(d.target),
                Some(t) if t == d.target => {}
                Some(t) => {
                    let has_progress =
                        self.jobs.up_done[i] + self.jobs.work_done[i] + self.jobs.dn_done[i] > 0.0;
                    let pinned = !self.opts.allow_preemption && self.jobs.running[i].is_some();
                    if !has_progress && !pinned {
                        // Nothing executed yet: re-commitment is free.
                        self.jobs.committed[i] = Some(d.target);
                    } else if self.opts.allow_reexecution && !pinned {
                        self.jobs.reset_progress(i);
                        self.stats.restarts += 1;
                        self.trace.abandon(d.job);
                        emit!(
                            self,
                            ObsEvent::Restarted {
                                t: self.now,
                                job: d.job.0,
                                from: obs_unit(self.instance.job(d.job).origin, t, Phase::Compute),
                                to: obs_unit(
                                    self.instance.job(d.job).origin,
                                    d.target,
                                    Phase::Compute
                                ),
                            }
                        );
                        self.jobs.committed[i] = Some(d.target);
                    } else {
                        // Retarget refused: keep the old commitment. The
                        // engine's buffer now differs from what the
                        // policy emitted, so conservatively treat the
                        // rewrite as a decision-relevant transition.
                        d.target = t;
                        self.epoch += 1;
                    }
                }
            }
        }

        // 4. Block resources: unavailability windows, then pinned
        //    (non-preemptable) running activities, then the greedy grant.
        self.blocked.fill(false);
        {
            let spec = self.platform.spec();
            if self.has_unavailability {
                for k in spec.clouds() {
                    if spec
                        .cloud_unavailability(k)
                        .iter()
                        .any(|w| w.contains(self.now))
                    {
                        self.blocked[ResourceId::CloudCpu(k)] = true;
                    }
                }
            }
            if let Some(av) = self.platform.overlay() {
                // A down edge takes its CPU and both ports with it; a
                // link outage (factor 0) blocks only the ports, so
                // edge-local compute continues and cloud-bound jobs pause
                // in place.
                for j in spec.edges() {
                    if !av.edge_up[j.0] {
                        self.blocked[ResourceId::EdgeCpu(j)] = true;
                        self.blocked[ResourceId::EdgeOut(j)] = true;
                        self.blocked[ResourceId::EdgeIn(j)] = true;
                    } else if av.link_factor[j.0] == 0.0 {
                        self.blocked[ResourceId::EdgeOut(j)] = true;
                        self.blocked[ResourceId::EdgeIn(j)] = true;
                    }
                }
                for k in spec.clouds() {
                    if !av.cloud_up[k.0] {
                        self.blocked[ResourceId::CloudCpu(k)] = true;
                        self.blocked[ResourceId::CloudIn(k)] = true;
                        self.blocked[ResourceId::CloudOut(k)] = true;
                    }
                }
            }
        }
        self.activations.clear();
        {
            let view = SimView::new(&self.instance, self.now, &self.jobs, &self.pending)
                .with_epoch(self.epoch)
                .with_platform(&self.platform);
            if !self.opts.allow_preemption {
                self.skip.fill(false);
                grant::pin_running(
                    &view,
                    &mut self.blocked,
                    &mut self.skip,
                    &mut self.activations,
                );
            }
            greedy_allocate(
                &view,
                self.buf.as_slice(),
                &mut self.blocked,
                &self.skip,
                self.opts.infinite_ports,
                &mut self.activations,
            );
        }
        if let Some(av) = self.platform.overlay() {
            // Link degradation: scale granted communication rates by the
            // origin edge's current factor. Factors of exactly 1.0 leave
            // the rate bit-identical; factor 0 never reaches here (the
            // ports were blocked above, so no activation was granted).
            for act in self.activations.iter_mut() {
                if act.phase != Phase::Compute {
                    let f = av.link_factor[self.instance.job(act.job).origin.0];
                    if f != 1.0 {
                        act.rate *= f;
                    }
                }
            }
        }

        // Only the previous grant can have left `running` flags set
        // (fault kills and completions clear theirs inline), so sweep
        // just those instead of every job.
        for act in &self.prev_activations {
            self.jobs.running[act.job.0] = None;
        }
        for act in &self.activations {
            self.jobs.running[act.job.0] = Some(act.phase);
        }

        if let Some(log) = self.event_log.as_mut() {
            log.push(EventRecord {
                time: self.now,
                pending: self.pending.len(),
                activations: self
                    .activations
                    .iter()
                    .map(|a| (a.job, a.phase, a.target))
                    .collect(),
            });
        }
        mark = self.prof_lap(mark, EnginePhase::Grant);

        // 5. Find the next event horizon. `act.remaining` was read from
        //    the arena at grant time and nothing has accrued since.
        let mut t_next = self.queue.peek_time();
        for act in &self.activations {
            let rem = act.remaining / act.rate;
            let fin = self.now + Time::new(rem);
            t_next = Some(t_next.map_or(fin, |t| t.min(fin)));
        }
        let Some(t_next) = t_next else {
            self.prof_lap(mark, EnginePhase::Commit);
            self.prof_step_done(t_enter);
            self.blocked_epoch = Some(self.epoch);
            return Ok(SessionStatus::Blocked);
        };

        // 6. Advance time (capped at the bound, if any), accrue progress,
        //    record the trace.
        let t_next = t_next.max(self.now);
        let capped = bound.is_some_and(|b| b < t_next);
        let t_adv = if capped {
            // An externally-imposed pause splits one engine step in two;
            // extend the livelock budget by the extra event.
            self.limit += 1;
            bound.expect("capped implies a bound").max(self.now)
        } else {
            t_next
        };
        let dt = (t_adv - self.now).seconds();
        if dt > 0.0 {
            for act in &self.activations {
                let amount = act.rate * dt;
                match act.phase {
                    Phase::Uplink => self.jobs.up_done[act.job.0] += amount,
                    Phase::Compute => self.jobs.work_done[act.job.0] += amount,
                    Phase::Downlink => self.jobs.dn_done[act.job.0] += amount,
                }
                self.trace.record(
                    act.job,
                    act.phase,
                    act.target,
                    Interval::new(self.now, t_adv),
                );
                emit!(
                    self,
                    ObsEvent::Placed {
                        job: act.job.0,
                        origin: self.instance.job(act.job).origin.0,
                        target: obs_unit(self.instance.job(act.job).origin, act.target, act.phase),
                        phase: obs_phase(act.phase),
                        interval: Interval::new(self.now, t_adv),
                        volume: if act.phase == Phase::Compute {
                            0.0
                        } else {
                            amount
                        },
                    }
                );
            }
        }
        self.now = t_adv;

        // 7. Job completions (phase transitions become visible to the
        //    next decision automatically). A capped advance stops
        //    strictly before the next completion, so the scan is a no-op
        //    there (kept unconditional to absorb float-boundary cases).
        for act in &self.activations {
            let i = act.job.0;
            if self.jobs.finished[i] {
                continue;
            }
            let job = self.instance.job(act.job);
            if self.jobs.current_phase(i, job, act.target).is_none() {
                self.jobs.finished[i] = true;
                self.jobs.completion[i] = Some(self.now);
                self.jobs.running[i] = None;
                self.pending.remove(job.release, act.job);
                self.unfinished -= 1;
                // A completion shrinks the pending membership: always a
                // decision-relevant transition.
                self.epoch += 1;
                self.trace.complete(act.job, self.now);
                // The cached denominator is the same fold the frozen spec
                // would produce (recomputed on every mutation), so the
                // stretch is bit-identical to an uncached read.
                let stretch = (self.now - job.release).seconds() / self.jobs.min_time[i];
                self.completed += 1;
                self.stretch_sum += stretch;
                self.stretch_max = self.stretch_max.max(stretch);
                self.completions.push(CompletionRecord {
                    job: act.job,
                    origin: job.origin,
                    target: act.target,
                    release: job.release,
                    completion: self.now,
                    stretch,
                });
                emit!(
                    self,
                    ObsEvent::Completed {
                        t: self.now,
                        job: act.job.0,
                        response: (self.now - job.release).seconds(),
                        stretch,
                    }
                );
            }
        }
        std::mem::swap(&mut self.prev_activations, &mut self.activations);
        self.prof_lap(mark, EnginePhase::Commit);
        self.prof_step_done(t_enter);
        if capped {
            self.paused_at_bound = true;
            Ok(SessionStatus::Reached)
        } else {
            Ok(SessionStatus::Advanced)
        }
    }

    /// Step 1 of the engine loop: pop and apply every queued event at
    /// (approximately) the current instant, bumping the decision epoch
    /// for decision-relevant ranks.
    fn fire_due_events(&mut self) {
        while let Some(t) = self.queue.peek_time() {
            if !t.approx_le(self.now) {
                break;
            }
            let (t_ev, rank, ev) = self.queue.pop_ranked().expect("peeked");
            // Fault arms are timed individually (and accumulated into
            // `fault_span`, which the caller subtracts from its event-pop
            // span) so fault replay shows up as its own profile phase.
            let fault_t0 =
                (self.profiler.is_some() && events::is_fault_event(&ev)).then(Instant::now);
            // Classify by rank class; the LinkChange arm below demotes
            // itself when the re-read factor turns out unchanged.
            let mut bump = events::rank_is_decision_relevant(rank);
            match ev {
                EngineEvent::Release(id) => {
                    self.jobs.released[id.0] = true;
                    self.pending.insert(self.instance.job(id).release, id);
                    emit!(
                        self,
                        ObsEvent::JobReleased {
                            t: self.now,
                            job: id.0,
                        }
                    );
                }
                EngineEvent::Boundary => {}
                EngineEvent::EdgeDown(j) => {
                    self.platform.fault_edge_down(j);
                    emit!(
                        self,
                        ObsEvent::UnitDown {
                            t: self.now,
                            unit: Unit::Edge(j.0),
                        }
                    );
                    // Work in flight on the crashed unit is lost: every
                    // job of this origin committed to its edge CPU is
                    // wiped and re-released (paper restart semantics).
                    // Cloud-committed jobs of this origin merely pause —
                    // their ports are blocked while the edge is down.
                    for i in 0..self.jobs.len() {
                        if self.jobs.finished[i]
                            || self.instance.job(JobId(i)).origin != j
                            || self.jobs.committed[i] != Some(Target::Edge)
                        {
                            continue;
                        }
                        let had_progress =
                            self.jobs.up_done[i] + self.jobs.work_done[i] + self.jobs.dn_done[i]
                                > 0.0;
                        self.jobs.committed[i] = None;
                        self.jobs.running[i] = None;
                        if had_progress {
                            self.jobs.reset_progress(i);
                            self.stats.restarts += 1;
                            self.trace.abandon(JobId(i));
                            if let Some(o) = self.observer.as_deref_mut() {
                                o.on_event(&ObsEvent::JobKilled {
                                    t: self.now,
                                    job: i,
                                    unit: Unit::Edge(j.0),
                                });
                            }
                        }
                    }
                }
                EngineEvent::EdgeUp(j) => {
                    self.platform.fault_edge_up(j);
                    emit!(
                        self,
                        ObsEvent::UnitUp {
                            t: self.now,
                            unit: Unit::Edge(j.0),
                        }
                    );
                }
                EngineEvent::CloudDown(k) => {
                    self.platform.fault_cloud_down(k);
                    emit!(
                        self,
                        ObsEvent::UnitDown {
                            t: self.now,
                            unit: Unit::Cloud(k.0),
                        }
                    );
                    for i in 0..self.jobs.len() {
                        if self.jobs.finished[i] || self.jobs.committed[i] != Some(Target::Cloud(k))
                        {
                            continue;
                        }
                        let had_progress =
                            self.jobs.up_done[i] + self.jobs.work_done[i] + self.jobs.dn_done[i]
                                > 0.0;
                        self.jobs.committed[i] = None;
                        self.jobs.running[i] = None;
                        if had_progress {
                            self.jobs.reset_progress(i);
                            self.stats.restarts += 1;
                            self.trace.abandon(JobId(i));
                            if let Some(o) = self.observer.as_deref_mut() {
                                o.on_event(&ObsEvent::JobKilled {
                                    t: self.now,
                                    job: i,
                                    unit: Unit::Cloud(k.0),
                                });
                            }
                        }
                    }
                }
                EngineEvent::CloudUp(k) => {
                    self.platform.fault_cloud_up(k);
                    emit!(
                        self,
                        ObsEvent::UnitUp {
                            t: self.now,
                            unit: Unit::Cloud(k.0),
                        }
                    );
                }
                EngineEvent::LinkChange(j) => {
                    // Re-read the factor at the event's own (exact) time:
                    // windows are half-open, so the change at a window's
                    // end restores 1.0 and the one at its start applies
                    // the window's factor.
                    let plan = self.faults.expect("fault events imply a plan");
                    let f = plan.link_factor_at(j.0, t_ev);
                    if self.platform.fault_set_link(j, f) {
                        let factor = self.platform.availability().link_factor[j.0];
                        emit!(
                            self,
                            ObsEvent::LinkDegraded {
                                t: self.now,
                                edge: j.0,
                                factor,
                            }
                        );
                    } else {
                        bump = false;
                    }
                }
            }
            if let Some(t0) = fault_t0 {
                let d = t0.elapsed();
                self.fault_span += d;
                if let Some(p) = self.profiler.as_deref_mut() {
                    p.record(EnginePhase::FaultReplay, d);
                }
            }
            if bump {
                self.epoch += 1;
            }
        }
    }
}
