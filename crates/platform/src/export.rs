//! Schedule export: a flat CSV of every activity interval, for external
//! plotting/visualization tools (one row per contiguous activity on a
//! resource, abandoned attempts flagged).

use crate::activity::{Phase, Target};
use crate::instance::Instance;
use crate::schedule::Schedule;
use std::fmt::Write as _;

/// CSV header of [`schedule_to_csv`].
pub const CSV_HEADER: &str = "job,phase,target,start,end,resources,abandoned";

/// Serializes every activity interval of `schedule` as CSV rows sorted by
/// (start, job).
pub fn schedule_to_csv(instance: &Instance, schedule: &Schedule) -> String {
    let mut rows: Vec<(f64, usize, String)> = Vec::new();
    let mut push =
        |job: usize, phase: Phase, target: Target, start: f64, end: f64, abandoned: bool| {
            let resources: Vec<String> = phase
                .resources(instance.job(crate::JobId(job)), target)
                .iter()
                .map(|r| r.to_string())
                .collect();
            let mut line = String::new();
            let _ = write!(
                line,
                "{},{},{},{},{},{},{}",
                job + 1,
                phase,
                target,
                start,
                end,
                resources.join("+"),
                abandoned
            );
            rows.push((start, job, line));
        };

    for (id, _) in instance.iter_jobs() {
        if let Some(target) = schedule.alloc[id.0] {
            for iv in schedule.exec[id.0].iter() {
                push(
                    id.0,
                    Phase::Compute,
                    target,
                    iv.start().seconds(),
                    iv.end().seconds(),
                    false,
                );
            }
            for iv in schedule.up[id.0].iter() {
                push(
                    id.0,
                    Phase::Uplink,
                    target,
                    iv.start().seconds(),
                    iv.end().seconds(),
                    false,
                );
            }
            for iv in schedule.dn[id.0].iter() {
                push(
                    id.0,
                    Phase::Downlink,
                    target,
                    iv.start().seconds(),
                    iv.end().seconds(),
                    false,
                );
            }
        }
    }
    for seg in &schedule.abandoned {
        push(
            seg.job.0,
            seg.phase,
            seg.target,
            seg.interval.start().seconds(),
            seg.interval.end().seconds(),
            true,
        );
    }

    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for (_, _, line) in rows {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Errors raised by [`schedule_from_csv`].
#[derive(Clone, Debug, PartialEq)]
pub enum ImportError {
    /// A malformed line with its 1-based number and a message.
    Parse {
        /// Line number.
        line: usize,
        /// Problem description.
        message: String,
    },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Parse { line, message } => {
                write!(f, "import error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ImportError {}

/// Rebuilds a [`Schedule`] from the CSV produced by [`schedule_to_csv`].
/// Completion times are reconstructed as the end of each job's last
/// non-abandoned activity. Round-trips exactly with the exporter; useful
/// for re-validating archived schedules.
pub fn schedule_from_csv(instance: &Instance, csv: &str) -> Result<Schedule, ImportError> {
    use crate::schedule::TraceBuilder;
    use crate::{CloudId, JobId};
    use mmsec_sim::{Interval, Time};

    struct Row {
        job: usize,
        phase: Phase,
        target: Target,
        start: f64,
        end: f64,
        abandoned: bool,
    }

    let mut rows: Vec<Row> = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 {
            if line != CSV_HEADER {
                return Err(ImportError::Parse {
                    line: 1,
                    message: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let err = |message: String| ImportError::Parse {
            line: lineno + 1,
            message,
        };
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 {
            return Err(err(format!("expected 7 fields, got {}", fields.len())));
        }
        let job: usize = fields[0]
            .parse::<usize>()
            .map_err(|e| err(format!("bad job id: {e}")))?
            .checked_sub(1)
            .ok_or_else(|| err("job ids are 1-based".into()))?;
        if job >= instance.num_jobs() {
            return Err(err(format!("job {} out of range", job + 1)));
        }
        let phase = match fields[1] {
            "up" => Phase::Uplink,
            "exec" => Phase::Compute,
            "down" => Phase::Downlink,
            other => return Err(err(format!("unknown phase {other:?}"))),
        };
        let target = if fields[2] == "edge" {
            Target::Edge
        } else if let Some(k) = fields[2].strip_prefix("cloud:") {
            Target::Cloud(CloudId(
                k.parse()
                    .map_err(|e| err(format!("bad cloud index: {e}")))?,
            ))
        } else {
            return Err(err(format!("unknown target {:?}", fields[2])));
        };
        let start: f64 = fields[3]
            .parse()
            .map_err(|e| err(format!("bad start: {e}")))?;
        let end: f64 = fields[4]
            .parse()
            .map_err(|e| err(format!("bad end: {e}")))?;
        let abandoned: bool = fields[6]
            .parse()
            .map_err(|e| err(format!("bad abandoned flag: {e}")))?;
        rows.push(Row {
            job,
            phase,
            target,
            start,
            end,
            abandoned,
        });
    }

    // Feed the trace builder: abandoned attempts first (in time order),
    // each followed by an abandon mark, then the final attempts.
    let mut tb = TraceBuilder::new(instance.num_jobs());
    rows.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite"));
    for row in rows.iter().filter(|r| r.abandoned) {
        tb.record(
            JobId(row.job),
            row.phase,
            row.target,
            Interval::from_secs(row.start, row.end),
        );
    }
    for job in 0..instance.num_jobs() {
        if rows.iter().any(|r| r.abandoned && r.job == job) {
            tb.abandon(JobId(job));
        }
    }
    let mut last_end = vec![f64::NEG_INFINITY; instance.num_jobs()];
    for row in rows.iter().filter(|r| !r.abandoned) {
        tb.record(
            JobId(row.job),
            row.phase,
            row.target,
            Interval::from_secs(row.start, row.end),
        );
        last_end[row.job] = last_end[row.job].max(row.end);
    }
    for (job, &end) in last_end.iter().enumerate() {
        if end.is_finite() {
            tb.complete(JobId(job), Time::new(end));
        }
    }
    Ok(tb.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{OnlineScheduler, Simulation};
    use crate::instance::figure1_instance;
    use crate::view::SimView;
    use crate::{CloudId, DirectiveBuffer};

    struct AllCloud;
    impl OnlineScheduler for AllCloud {
        fn name(&self) -> String {
            "c".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            for j in view.pending_jobs() {
                out.push(j, Target::Cloud(CloudId(0)));
            }
        }
    }

    #[test]
    fn export_contains_all_phases_sorted() {
        let inst = figure1_instance();
        let out = Simulation::of(&inst).policy(&mut AllCloud).run().unwrap();
        let csv = schedule_to_csv(&inst, &out.schedule);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines.len() > 3 * 6, "6 jobs × ≥3 phases plus header");
        // Sorted by start time.
        let starts: Vec<f64> = lines[1..]
            .iter()
            .map(|l| l.split(',').nth(3).unwrap().parse().unwrap())
            .collect();
        for w in starts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Every row names its resources.
        assert!(csv.contains("out(e0)+in(c0)"));
        assert!(csv.contains("cpu(c0)"));
    }

    #[test]
    fn csv_roundtrip_reconstructs_schedule() {
        let inst = figure1_instance();
        let out = Simulation::of(&inst).policy(&mut AllCloud).run().unwrap();
        let csv = schedule_to_csv(&inst, &out.schedule);
        let back = schedule_from_csv(&inst, &csv).expect("import");
        assert_eq!(back.alloc, out.schedule.alloc);
        assert_eq!(back.exec, out.schedule.exec);
        assert_eq!(back.up, out.schedule.up);
        assert_eq!(back.dn, out.schedule.dn);
        assert_eq!(back.completion, out.schedule.completion);
        // The reconstructed schedule passes full validation too.
        assert!(crate::validate::validate(&inst, &back).is_ok());
    }

    #[test]
    fn import_rejects_malformed_input() {
        let inst = figure1_instance();
        let bad_header = "job,oops\n";
        assert!(matches!(
            schedule_from_csv(&inst, bad_header),
            Err(ImportError::Parse { line: 1, .. })
        ));
        let bad_row = format!("{CSV_HEADER}\n1,exec,edge,0\n");
        assert!(matches!(
            schedule_from_csv(&inst, &bad_row),
            Err(ImportError::Parse { line: 2, .. })
        ));
        let bad_job = format!("{CSV_HEADER}\n99,exec,edge,0,1,cpu(e0),false\n");
        assert!(schedule_from_csv(&inst, &bad_job).is_err());
        let bad_phase = format!("{CSV_HEADER}\n1,warp,edge,0,1,cpu(e0),false\n");
        assert!(schedule_from_csv(&inst, &bad_phase).is_err());
    }

    #[test]
    fn abandoned_segments_flagged() {
        use crate::schedule::TraceBuilder;
        use mmsec_sim::{Interval, Time};
        let inst = figure1_instance();
        let mut tb = TraceBuilder::new(inst.num_jobs());
        tb.record(
            crate::JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(0.0, 1.0),
        );
        tb.abandon(crate::JobId(0));
        tb.record(
            crate::JobId(0),
            Phase::Compute,
            Target::Edge,
            Interval::from_secs(1.0, 4.0),
        );
        tb.complete(crate::JobId(0), Time::new(4.0));
        let csv = schedule_to_csv(&inst, &tb.finish());
        let abandoned_rows: Vec<&str> = csv.lines().filter(|l| l.ends_with(",true")).collect();
        assert_eq!(abandoned_rows.len(), 1);
        assert!(abandoned_rows[0].starts_with("1,exec,edge,0,1"));
    }
}
