//! Platform description (paper §III-A).
//!
//! A two-level platform: `P^c` cloud processors (speed 1 in the paper; we
//! also support the heterogeneous-cloud extension mentioned in §II) and
//! `P^e` edge computing units with speeds `s_j ≤ 1`. The §VII future-work
//! extension — cloud processors dynamically unavailable during given time
//! windows — is supported through per-processor unavailability intervals.

use mmsec_sim::{Interval, IntervalSet};
use std::fmt;

/// Index of an edge computing unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

/// Index of a cloud processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CloudId(pub usize);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for CloudId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Errors raised by [`PlatformSpec::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The platform has no edge unit (jobs need an origin).
    NoEdgeUnit,
    /// A speed is non-positive or non-finite.
    BadSpeed {
        /// Human-readable resource name (`"edge 3"`, `"cloud 0"`).
        which: String,
        /// Offending value.
        speed: f64,
    },
    /// Unavailability windows refer to a cloud processor that does not exist.
    WindowOutOfRange {
        /// Offending cloud index.
        cloud: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoEdgeUnit => write!(f, "platform has no edge computing unit"),
            SpecError::BadSpeed { which, speed } => {
                write!(f, "non-positive speed {speed} for {which}")
            }
            SpecError::WindowOutOfRange { cloud } => {
                write!(
                    f,
                    "unavailability window for nonexistent cloud processor {cloud}"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The edge-cloud platform.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformSpec {
    edge_speeds: Vec<f64>,
    cloud_speeds: Vec<f64>,
    /// Per cloud processor: disjoint intervals during which its CPU cannot
    /// compute (§VII extension). Empty sets by default.
    cloud_unavailability: Vec<IntervalSet>,
    max_cloud_speed: f64,
}

impl PlatformSpec {
    /// Paper platform: edge units with the given speeds and `num_cloud`
    /// homogeneous cloud processors at speed 1.
    pub fn homogeneous_cloud(edge_speeds: Vec<f64>, num_cloud: usize) -> Self {
        Self::heterogeneous(edge_speeds, vec![1.0; num_cloud])
    }

    /// Extension platform with explicit per-cloud speeds (§II notes all
    /// algorithms extend straightforwardly to a fully heterogeneous
    /// platform).
    pub fn heterogeneous(edge_speeds: Vec<f64>, cloud_speeds: Vec<f64>) -> Self {
        let n_cloud = cloud_speeds.len();
        let max_cloud_speed = cloud_speeds.iter().copied().fold(0.0_f64, f64::max);
        let spec = PlatformSpec {
            edge_speeds,
            cloud_speeds,
            cloud_unavailability: vec![IntervalSet::new(); n_cloud],
            max_cloud_speed,
        };
        spec.validate().expect("invalid platform spec");
        spec
    }

    /// Adds unavailability windows for cloud processor `k` (§VII
    /// extension). Overlapping windows are merged-rejected by
    /// [`IntervalSet`]; panics on overlap.
    pub fn with_cloud_unavailability(mut self, k: CloudId, windows: &[Interval]) -> Self {
        assert!(k.0 < self.cloud_speeds.len(), "cloud index out of range");
        for w in windows {
            self.cloud_unavailability[k.0]
                .insert(*w)
                .expect("overlapping unavailability windows");
        }
        self
    }

    /// Checks the platform invariants.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.edge_speeds.is_empty() {
            return Err(SpecError::NoEdgeUnit);
        }
        for (j, &s) in self.edge_speeds.iter().enumerate() {
            if !(s > 0.0 && s.is_finite()) {
                return Err(SpecError::BadSpeed {
                    which: format!("edge {j}"),
                    speed: s,
                });
            }
        }
        for (k, &s) in self.cloud_speeds.iter().enumerate() {
            if !(s > 0.0 && s.is_finite()) {
                return Err(SpecError::BadSpeed {
                    which: format!("cloud {k}"),
                    speed: s,
                });
            }
        }
        if self.cloud_unavailability.len() != self.cloud_speeds.len() {
            return Err(SpecError::WindowOutOfRange {
                cloud: self.cloud_unavailability.len(),
            });
        }
        Ok(())
    }

    /// Number of edge computing units (`P^e`).
    pub fn num_edge(&self) -> usize {
        self.edge_speeds.len()
    }

    /// Number of cloud processors (`P^c`).
    pub fn num_cloud(&self) -> usize {
        self.cloud_speeds.len()
    }

    /// Speed of edge unit `j` (`s_j`).
    pub fn edge_speed(&self, j: EdgeId) -> f64 {
        self.edge_speeds[j.0]
    }

    /// Speed of cloud processor `k` (1 in the paper's model).
    pub fn cloud_speed(&self, k: CloudId) -> f64 {
        self.cloud_speeds[k.0]
    }

    /// Fastest cloud speed (0 when there is no cloud).
    pub fn max_cloud_speed(&self) -> f64 {
        self.max_cloud_speed
    }

    /// Aggregated speed `Σ_j s_j + Σ_k speed_k` (used by the load model,
    /// §VI-A).
    pub fn total_speed(&self) -> f64 {
        self.edge_speeds.iter().sum::<f64>() + self.cloud_speeds.iter().sum::<f64>()
    }

    /// True when every cloud processor runs at speed 1 (paper model).
    pub fn is_cloud_homogeneous(&self) -> bool {
        self.cloud_speeds.iter().all(|&s| s == 1.0)
    }

    /// Iterator over edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edge()).map(EdgeId)
    }

    /// Iterator over cloud ids.
    pub fn clouds(&self) -> impl Iterator<Item = CloudId> {
        (0..self.num_cloud()).map(CloudId)
    }

    /// Unavailability windows of cloud processor `k`.
    pub fn cloud_unavailability(&self, k: CloudId) -> &IntervalSet {
        &self.cloud_unavailability[k.0]
    }

    /// True when any cloud processor has unavailability windows.
    pub fn has_unavailability(&self) -> bool {
        self.cloud_unavailability.iter().any(|w| !w.is_empty())
    }

    // Mutators below are crate-private: the only sanctioned way to change
    // a platform after construction is through
    // [`crate::state::PlatformState`], which validates each mutation and
    // versions the result.

    /// Appends an edge unit and returns its id. The speed must already be
    /// validated by the caller.
    pub(crate) fn push_edge(&mut self, speed: f64) -> EdgeId {
        self.edge_speeds.push(speed);
        EdgeId(self.edge_speeds.len() - 1)
    }

    /// Appends a cloud processor (no unavailability windows) and returns
    /// its id. The speed must already be validated by the caller, and
    /// `max_cloud_speed` refreshed afterwards (tombstoned processors must
    /// not count, and only the caller knows liveness).
    pub(crate) fn push_cloud(&mut self, speed: f64) -> CloudId {
        self.cloud_speeds.push(speed);
        self.cloud_unavailability.push(IntervalSet::new());
        CloudId(self.cloud_speeds.len() - 1)
    }

    /// Overwrites edge `j`'s speed. The speed must already be validated.
    pub(crate) fn set_edge_speed(&mut self, j: EdgeId, speed: f64) {
        self.edge_speeds[j.0] = speed;
    }

    /// Overwrites cloud `k`'s speed. The speed must already be validated,
    /// and `max_cloud_speed` refreshed afterwards.
    pub(crate) fn set_cloud_speed(&mut self, k: CloudId, speed: f64) {
        self.cloud_speeds[k.0] = speed;
    }

    /// Overwrites the cached fastest-cloud speed. The stretch denominator
    /// (`Job::min_time`) reads this; [`crate::state::PlatformState`] keeps
    /// it equal to the fastest *live* cloud so that departed processors
    /// stop inflating deadlines of jobs submitted after they left.
    pub(crate) fn set_max_cloud_speed(&mut self, speed: f64) {
        self.max_cloud_speed = speed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_sim::Time;

    #[test]
    fn paper_random_platform() {
        // §VI-A: 20 cloud processors, 10 slow edge (0.1), 10 fast edge (0.5).
        let mut speeds = vec![0.1; 10];
        speeds.extend(vec![0.5; 10]);
        let spec = PlatformSpec::homogeneous_cloud(speeds, 20);
        assert_eq!(spec.num_edge(), 20);
        assert_eq!(spec.num_cloud(), 20);
        assert!(spec.is_cloud_homogeneous());
        assert_eq!(spec.max_cloud_speed(), 1.0);
        assert!((spec.total_speed() - (1.0 + 5.0 + 20.0)).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_cloud() {
        let spec = PlatformSpec::heterogeneous(vec![0.5], vec![1.0, 2.0, 0.5]);
        assert!(!spec.is_cloud_homogeneous());
        assert_eq!(spec.max_cloud_speed(), 2.0);
        assert_eq!(spec.cloud_speed(CloudId(1)), 2.0);
    }

    #[test]
    fn validation_errors() {
        let bad = PlatformSpec {
            edge_speeds: vec![],
            cloud_speeds: vec![1.0],
            cloud_unavailability: vec![IntervalSet::new()],
            max_cloud_speed: 1.0,
        };
        assert_eq!(bad.validate(), Err(SpecError::NoEdgeUnit));

        let bad = PlatformSpec {
            edge_speeds: vec![0.0],
            cloud_speeds: vec![],
            cloud_unavailability: vec![],
            max_cloud_speed: 0.0,
        };
        assert!(matches!(bad.validate(), Err(SpecError::BadSpeed { .. })));
    }

    #[test]
    #[should_panic(expected = "invalid platform spec")]
    fn constructor_panics_on_bad_speed() {
        let _ = PlatformSpec::homogeneous_cloud(vec![-1.0], 1);
    }

    #[test]
    fn unavailability_windows() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 2).with_cloud_unavailability(
            CloudId(1),
            &[Interval::new(Time::new(5.0), Time::new(10.0))],
        );
        assert!(spec.has_unavailability());
        assert!(spec.cloud_unavailability(CloudId(0)).is_empty());
        assert_eq!(spec.cloud_unavailability(CloudId(1)).len(), 1);
    }

    #[test]
    fn id_display() {
        assert_eq!(EdgeId(3).to_string(), "e3");
        assert_eq!(CloudId(0).to_string(), "c0");
    }
}
