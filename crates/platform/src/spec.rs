//! Platform description (paper §III-A).
//!
//! A two-level platform: `P^c` cloud processors (speed 1 in the paper; we
//! also support the heterogeneous-cloud extension mentioned in §II) and
//! `P^e` edge computing units with speeds `s_j ≤ 1`. The §VII future-work
//! extension — cloud processors dynamically unavailable during given time
//! windows — is supported through per-processor unavailability intervals.
//!
//! Beyond the paper, a spec may carry a [`TierTopology`]
//! (edge → fog → … → cloud chain with per-hop link-time factors, ROADMAP
//! item 3); a spec without one is the paper's *flat* platform, which is
//! bit-identical to a one-tier topology with unit hop factors. Specs are
//! built with [`PlatformSpec::builder`]; the positional constructors
//! remain as thin deprecated wrappers for one release.

use crate::tier::TierTopology;
use mmsec_sim::{Interval, IntervalSet};
use std::fmt;

/// Index of an edge computing unit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

/// Index of a cloud processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CloudId(pub usize);

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for CloudId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Errors raised by [`PlatformSpec::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// The platform has no edge unit (jobs need an origin).
    NoEdgeUnit,
    /// A speed is non-positive or non-finite.
    BadSpeed {
        /// Human-readable resource name (`"edge 3"`, `"cloud 0"`).
        which: String,
        /// Offending value.
        speed: f64,
    },
    /// Unavailability windows refer to a cloud processor that does not exist.
    WindowOutOfRange {
        /// Offending cloud index.
        cloud: usize,
    },
    /// A tier hop's link-time factor is non-positive or non-finite (or
    /// the hop chain is empty).
    BadHop {
        /// Offending hop index.
        hop: usize,
        /// Offending value (NaN when the chain itself is empty).
        value: f64,
    },
    /// A cloud unit's tier assignment is out of the topology's range, or
    /// the assignment does not cover every unit.
    TierOutOfRange {
        /// Offending cloud index (or assignment length on a count
        /// mismatch).
        cloud: usize,
        /// Offending tier (0 on a count mismatch).
        tier: usize,
        /// The topology's depth.
        depth: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoEdgeUnit => write!(f, "platform has no edge computing unit"),
            SpecError::BadSpeed { which, speed } => {
                write!(f, "non-positive speed {speed} for {which}")
            }
            SpecError::WindowOutOfRange { cloud } => {
                write!(
                    f,
                    "unavailability window for nonexistent cloud processor {cloud}"
                )
            }
            SpecError::BadHop { hop, value } => {
                write!(f, "tier hop {hop} has invalid link-time factor {value}")
            }
            SpecError::TierOutOfRange { cloud, tier, depth } => {
                write!(
                    f,
                    "cloud unit {cloud} assigned to tier {tier} outside 1..={depth}"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The edge-cloud platform.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformSpec {
    edge_speeds: Vec<f64>,
    cloud_speeds: Vec<f64>,
    /// Per cloud processor: disjoint intervals during which its CPU cannot
    /// compute (§VII extension). Empty sets by default.
    cloud_unavailability: Vec<IntervalSet>,
    max_cloud_speed: f64,
    /// Continuum tier chain; `None` is the paper's flat platform (the
    /// engine's zero-cost fast path).
    tiers: Option<TierTopology>,
}

impl PlatformSpec {
    /// Starts a typed builder: edge units, tiers, cloud units, and
    /// unavailability windows in any mix. See [`SpecBuilder`].
    pub fn builder() -> SpecBuilder {
        SpecBuilder::default()
    }

    /// Paper platform: edge units with the given speeds and `num_cloud`
    /// homogeneous cloud processors at speed 1.
    #[deprecated(
        since = "0.2.0",
        note = "use PlatformSpec::builder().edges(..).cloud_pool(n).build()"
    )]
    pub fn homogeneous_cloud(edge_speeds: Vec<f64>, num_cloud: usize) -> Self {
        Self::from_parts(edge_speeds, vec![1.0; num_cloud], None)
    }

    /// Extension platform with explicit per-cloud speeds (§II notes all
    /// algorithms extend straightforwardly to a fully heterogeneous
    /// platform).
    #[deprecated(
        since = "0.2.0",
        note = "use PlatformSpec::builder().edges(..).clouds(..).build()"
    )]
    pub fn heterogeneous(edge_speeds: Vec<f64>, cloud_speeds: Vec<f64>) -> Self {
        Self::from_parts(edge_speeds, cloud_speeds, None)
    }

    /// The one validated construction path (builder and wrappers both end
    /// here). Panics on an invalid spec, like the historical constructors.
    pub(crate) fn from_parts(
        edge_speeds: Vec<f64>,
        cloud_speeds: Vec<f64>,
        tiers: Option<TierTopology>,
    ) -> Self {
        Self::try_from_parts(edge_speeds, cloud_speeds, tiers).expect("invalid platform spec")
    }

    /// Fallible [`PlatformSpec::from_parts`].
    pub(crate) fn try_from_parts(
        edge_speeds: Vec<f64>,
        cloud_speeds: Vec<f64>,
        mut tiers: Option<TierTopology>,
    ) -> Result<Self, SpecError> {
        let n_cloud = cloud_speeds.len();
        let max_cloud_speed = cloud_speeds.iter().copied().fold(0.0_f64, f64::max);
        if let Some(t) = &mut tiers {
            t.rebuild_classes(&cloud_speeds, &vec![true; n_cloud]);
        }
        let spec = PlatformSpec {
            edge_speeds,
            cloud_speeds,
            cloud_unavailability: vec![IntervalSet::new(); n_cloud],
            max_cloud_speed,
            tiers,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Adds unavailability windows for cloud processor `k` (§VII
    /// extension). Overlapping windows are merged-rejected by
    /// [`IntervalSet`]; panics on overlap.
    pub fn with_cloud_unavailability(mut self, k: CloudId, windows: &[Interval]) -> Self {
        assert!(k.0 < self.cloud_speeds.len(), "cloud index out of range");
        for w in windows {
            self.cloud_unavailability[k.0]
                .insert(*w)
                .expect("overlapping unavailability windows");
        }
        self
    }

    /// Checks the platform invariants.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.edge_speeds.is_empty() {
            return Err(SpecError::NoEdgeUnit);
        }
        for (j, &s) in self.edge_speeds.iter().enumerate() {
            if !(s > 0.0 && s.is_finite()) {
                return Err(SpecError::BadSpeed {
                    which: format!("edge {j}"),
                    speed: s,
                });
            }
        }
        for (k, &s) in self.cloud_speeds.iter().enumerate() {
            if !(s > 0.0 && s.is_finite()) {
                return Err(SpecError::BadSpeed {
                    which: format!("cloud {k}"),
                    speed: s,
                });
            }
        }
        if self.cloud_unavailability.len() != self.cloud_speeds.len() {
            return Err(SpecError::WindowOutOfRange {
                cloud: self.cloud_unavailability.len(),
            });
        }
        if let Some(t) = &self.tiers {
            t.validate(self.cloud_speeds.len())?;
        }
        Ok(())
    }

    /// Number of edge computing units (`P^e`).
    pub fn num_edge(&self) -> usize {
        self.edge_speeds.len()
    }

    /// Number of cloud processors (`P^c`).
    pub fn num_cloud(&self) -> usize {
        self.cloud_speeds.len()
    }

    /// Speed of edge unit `j` (`s_j`).
    pub fn edge_speed(&self, j: EdgeId) -> f64 {
        self.edge_speeds[j.0]
    }

    /// Speed of cloud processor `k` (1 in the paper's model).
    pub fn cloud_speed(&self, k: CloudId) -> f64 {
        self.cloud_speeds[k.0]
    }

    /// Fastest cloud speed (0 when there is no cloud).
    pub fn max_cloud_speed(&self) -> f64 {
        self.max_cloud_speed
    }

    /// Aggregated speed `Σ_j s_j + Σ_k speed_k` (used by the load model,
    /// §VI-A).
    pub fn total_speed(&self) -> f64 {
        self.edge_speeds.iter().sum::<f64>() + self.cloud_speeds.iter().sum::<f64>()
    }

    /// True when every cloud processor runs at speed 1 (paper model).
    pub fn is_cloud_homogeneous(&self) -> bool {
        self.cloud_speeds.iter().all(|&s| s == 1.0)
    }

    /// Iterator over edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edge()).map(EdgeId)
    }

    /// Iterator over cloud ids.
    pub fn clouds(&self) -> impl Iterator<Item = CloudId> {
        (0..self.num_cloud()).map(CloudId)
    }

    /// Unavailability windows of cloud processor `k`.
    pub fn cloud_unavailability(&self, k: CloudId) -> &IntervalSet {
        &self.cloud_unavailability[k.0]
    }

    /// True when any cloud processor has unavailability windows.
    pub fn has_unavailability(&self) -> bool {
        self.cloud_unavailability.iter().any(|w| !w.is_empty())
    }

    // ---- continuum tier accessors ----

    /// The tier topology, when this platform is a multi-tier continuum
    /// (`None` for the paper's flat platform).
    pub fn tier_topology(&self) -> Option<&TierTopology> {
        self.tiers.as_ref()
    }

    /// True when a tier topology is attached.
    pub fn has_tiers(&self) -> bool {
        self.tiers.is_some()
    }

    /// Number of remote tiers: 1 for the flat platform (its single cloud
    /// pool), the topology's depth otherwise.
    pub fn tier_depth(&self) -> usize {
        self.tiers.as_ref().map_or(1, |t| t.depth())
    }

    /// Tier of cloud unit `k` (1 on the flat platform).
    pub fn cloud_tier(&self, k: CloudId) -> usize {
        self.tiers.as_ref().map_or(1, |t| t.tier_of(k))
    }

    /// Uplink path factor toward cloud `k`: a transfer of volume `v`
    /// takes `v * path_up(k)` seconds of link time. Exactly `1.0` on the
    /// flat platform.
    #[inline]
    pub fn path_up(&self, k: CloudId) -> f64 {
        match &self.tiers {
            None => 1.0,
            Some(t) => t.path_up(k),
        }
    }

    /// Downlink path factor from cloud `k` (see [`PlatformSpec::path_up`]).
    #[inline]
    pub fn path_dn(&self, k: CloudId) -> f64 {
        match &self.tiers {
            None => 1.0,
            Some(t) => t.path_dn(k),
        }
    }

    /// Uplink progress rate toward cloud `k` (`1 / path_up`): the volume
    /// a transfer completes per second. Exactly `1.0` on the flat
    /// platform — the engine's historical constant comm rate.
    #[inline]
    pub fn comm_rate_up(&self, k: CloudId) -> f64 {
        match &self.tiers {
            None => 1.0,
            Some(t) => t.rate_up(k),
        }
    }

    /// Downlink progress rate from cloud `k` (`1 / path_dn`).
    #[inline]
    pub fn comm_rate_dn(&self, k: CloudId) -> f64 {
        match &self.tiers {
            None => 1.0,
            Some(t) => t.rate_dn(k),
        }
    }

    // Mutators below are crate-private: the only sanctioned way to change
    // a platform after construction is through
    // [`crate::state::PlatformState`], which validates each mutation and
    // versions the result.

    /// Appends an edge unit and returns its id. The speed must already be
    /// validated by the caller.
    pub(crate) fn push_edge(&mut self, speed: f64) -> EdgeId {
        self.edge_speeds.push(speed);
        EdgeId(self.edge_speeds.len() - 1)
    }

    /// Appends a cloud processor (no unavailability windows) and returns
    /// its id. On a tiered platform the unit joins the deepest tier. The
    /// speed must already be validated by the caller, and
    /// `max_cloud_speed` (plus the tier pricing classes) refreshed
    /// afterwards (tombstoned processors must not count, and only the
    /// caller knows liveness).
    pub(crate) fn push_cloud(&mut self, speed: f64) -> CloudId {
        self.cloud_speeds.push(speed);
        self.cloud_unavailability.push(IntervalSet::new());
        if let Some(t) = &mut self.tiers {
            t.push_cloud_deepest();
        }
        CloudId(self.cloud_speeds.len() - 1)
    }

    /// Overwrites edge `j`'s speed. The speed must already be validated.
    pub(crate) fn set_edge_speed(&mut self, j: EdgeId, speed: f64) {
        self.edge_speeds[j.0] = speed;
    }

    /// Overwrites cloud `k`'s speed. The speed must already be validated,
    /// and `max_cloud_speed` (plus tier classes) refreshed afterwards.
    pub(crate) fn set_cloud_speed(&mut self, k: CloudId, speed: f64) {
        self.cloud_speeds[k.0] = speed;
    }

    /// Overwrites the cached fastest-cloud speed. The stretch denominator
    /// (`Job::min_time`) reads this; [`crate::state::PlatformState`] keeps
    /// it equal to the fastest *live* cloud so that departed processors
    /// stop inflating deadlines of jobs submitted after they left.
    pub(crate) fn set_max_cloud_speed(&mut self, speed: f64) {
        self.max_cloud_speed = speed;
    }

    /// Overwrites hop `t`'s link-time factors. The caller validates the
    /// factors, checks a topology is attached and `t` in range, and
    /// refreshes the pricing classes afterwards.
    pub(crate) fn set_hop(&mut self, t: usize, up: f64, dn: f64) {
        self.tiers
            .as_mut()
            .expect("set_hop on a flat platform")
            .set_hop(t, up, dn);
    }

    /// Rebuilds the tier pricing classes for the given liveness (no-op on
    /// a flat platform). The tiered analogue of
    /// [`PlatformSpec::set_max_cloud_speed`].
    pub(crate) fn refresh_tier_classes(&mut self, live: &[bool]) {
        if let Some(t) = &mut self.tiers {
            t.rebuild_classes(&self.cloud_speeds, live);
        }
    }
}

/// Typed, chainable construction of a [`PlatformSpec`].
///
/// Edge units first, then — for a continuum platform — alternate
/// [`SpecBuilder::tier`] (opening a new remote tier one hop deeper) with
/// cloud units, which attach to the most recently opened tier:
///
/// ```
/// use mmsec_platform::spec::PlatformSpec;
/// // Paper-flat: two edges, three speed-1 cloud processors.
/// let flat = PlatformSpec::builder().edges([0.5, 0.1]).cloud_pool(3).build();
/// assert!(!flat.has_tiers());
/// // Continuum: a fog tier (cheap links) and a cloud tier behind it.
/// let tiered = PlatformSpec::builder()
///     .edge(0.5)
///     .tier(0.5, 0.5)
///     .cloud(0.8)
///     .tier(2.0, 1.5)
///     .cloud_pool(2)
///     .build();
/// assert_eq!(tiered.tier_depth(), 2);
/// ```
///
/// Without any [`SpecBuilder::tier`] call the result is the paper's flat
/// platform (`has_tiers() == false`), bit-identical to the historical
/// positional constructors.
#[derive(Clone, Debug, Default)]
pub struct SpecBuilder {
    edge_speeds: Vec<f64>,
    cloud_speeds: Vec<f64>,
    /// Tier recorded per cloud: the number of `tier()` calls seen so far
    /// at add time (0 = added before any tier ⇒ only valid when the
    /// build stays flat).
    cloud_tiers: Vec<usize>,
    hops: Vec<(f64, f64)>,
    windows: Vec<(usize, Interval)>,
}

impl SpecBuilder {
    /// Adds one edge computing unit with the given speed.
    pub fn edge(mut self, speed: f64) -> Self {
        self.edge_speeds.push(speed);
        self
    }

    /// Adds edge units with the given speeds.
    pub fn edges(mut self, speeds: impl IntoIterator<Item = f64>) -> Self {
        self.edge_speeds.extend(speeds);
        self
    }

    /// Opens a new remote tier one hop deeper, with the given `(up, dn)`
    /// link-time factors for the new hop. Cloud units added afterwards
    /// attach to this tier.
    pub fn tier(mut self, hop_up: f64, hop_dn: f64) -> Self {
        self.hops.push((hop_up, hop_dn));
        self
    }

    /// Adds one cloud processor at the current tier.
    pub fn cloud(mut self, speed: f64) -> Self {
        self.cloud_speeds.push(speed);
        self.cloud_tiers.push(self.hops.len());
        self
    }

    /// Adds cloud processors with the given speeds at the current tier.
    pub fn clouds(mut self, speeds: impl IntoIterator<Item = f64>) -> Self {
        for s in speeds {
            self.cloud_speeds.push(s);
            self.cloud_tiers.push(self.hops.len());
        }
        self
    }

    /// Adds `n` speed-1 cloud processors (the paper's homogeneous pool)
    /// at the current tier.
    pub fn cloud_pool(self, n: usize) -> Self {
        self.clouds(std::iter::repeat(1.0).take(n))
    }

    /// Adds one cloud processor at an *explicit* tier (`1..=depth` once
    /// all `tier()` calls are in), regardless of the current tier cursor.
    /// Use this when unit ids must follow an external order (e.g. a
    /// parsed spec record) that does not group clouds by tier.
    pub fn cloud_at(mut self, speed: f64, tier: usize) -> Self {
        self.cloud_speeds.push(speed);
        self.cloud_tiers.push(tier);
        self
    }

    /// Adds an unavailability window for cloud processor `k` (§VII
    /// extension; indices refer to clouds in add order).
    pub fn unavailability(mut self, k: CloudId, window: Interval) -> Self {
        self.windows.push((k.0, window));
        self
    }

    /// Builds the spec, panicking on an invalid one — the historical
    /// positional-constructor contract.
    pub fn build(self) -> PlatformSpec {
        self.try_build().expect("invalid platform spec")
    }

    /// Builds the spec, returning the typed error on an invalid one.
    pub fn try_build(self) -> Result<PlatformSpec, SpecError> {
        let tiers = if self.hops.is_empty() {
            // `cloud_at` with an explicit tier but no hops would silently
            // build a flat platform — reject instead.
            if let Some((k, &t)) = self.cloud_tiers.iter().enumerate().find(|&(_, &t)| t != 0) {
                return Err(SpecError::TierOutOfRange {
                    cloud: k,
                    tier: t,
                    depth: 0,
                });
            }
            None
        } else {
            for (k, &t) in self.cloud_tiers.iter().enumerate() {
                if t == 0 {
                    return Err(SpecError::TierOutOfRange {
                        cloud: k,
                        tier: 0,
                        depth: self.hops.len(),
                    });
                }
            }
            Some(TierTopology::new(&self.hops, self.cloud_tiers)?)
        };
        let mut spec = PlatformSpec::try_from_parts(self.edge_speeds, self.cloud_speeds, tiers)?;
        for (k, w) in self.windows {
            if k >= spec.num_cloud() {
                return Err(SpecError::WindowOutOfRange { cloud: k });
            }
            spec = spec.with_cloud_unavailability(CloudId(k), &[w]);
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmsec_sim::Time;

    #[test]
    fn paper_random_platform() {
        // §VI-A: 20 cloud processors, 10 slow edge (0.1), 10 fast edge (0.5).
        let mut speeds = vec![0.1; 10];
        speeds.extend(vec![0.5; 10]);
        let spec = PlatformSpec::builder().edges(speeds).cloud_pool(20).build();
        assert_eq!(spec.num_edge(), 20);
        assert_eq!(spec.num_cloud(), 20);
        assert!(spec.is_cloud_homogeneous());
        assert_eq!(spec.max_cloud_speed(), 1.0);
        assert!((spec.total_speed() - (1.0 + 5.0 + 20.0)).abs() < 1e-12);
        assert!(!spec.has_tiers());
        assert_eq!(spec.tier_depth(), 1);
    }

    #[test]
    fn heterogeneous_cloud() {
        let spec = PlatformSpec::builder()
            .edge(0.5)
            .clouds([1.0, 2.0, 0.5])
            .build();
        assert!(!spec.is_cloud_homogeneous());
        assert_eq!(spec.max_cloud_speed(), 2.0);
        assert_eq!(spec.cloud_speed(CloudId(1)), 2.0);
    }

    #[test]
    fn deprecated_wrappers_match_builder() {
        #[allow(deprecated)]
        let old = PlatformSpec::homogeneous_cloud(vec![0.5, 0.1], 2);
        let new = PlatformSpec::builder()
            .edges([0.5, 0.1])
            .cloud_pool(2)
            .build();
        assert_eq!(old, new);
        #[allow(deprecated)]
        let old = PlatformSpec::heterogeneous(vec![0.5], vec![1.0, 2.0]);
        let new = PlatformSpec::builder().edge(0.5).clouds([1.0, 2.0]).build();
        assert_eq!(old, new);
    }

    #[test]
    fn tiered_builder_assigns_paths() {
        let spec = PlatformSpec::builder()
            .edge(0.5)
            .tier(0.5, 0.25)
            .cloud(0.8)
            .tier(2.0, 1.0)
            .cloud_pool(2)
            .build();
        assert!(spec.has_tiers());
        assert_eq!(spec.tier_depth(), 2);
        assert_eq!(spec.cloud_tier(CloudId(0)), 1);
        assert_eq!(spec.cloud_tier(CloudId(2)), 2);
        assert_eq!(spec.path_up(CloudId(0)), 0.5);
        assert_eq!(spec.path_up(CloudId(1)), 2.5);
        assert_eq!(spec.path_dn(CloudId(1)), 1.25);
        assert_eq!(spec.comm_rate_up(CloudId(1)), 1.0 / 2.5);
        // Two pricing classes: (0.8 @ tier 1) and (1.0 @ tier 2).
        assert_eq!(spec.tier_topology().unwrap().classes().len(), 2);
    }

    #[test]
    fn flat_paths_are_exactly_one() {
        let spec = PlatformSpec::builder().edge(1.0).cloud_pool(1).build();
        assert_eq!(spec.path_up(CloudId(0)).to_bits(), 1.0f64.to_bits());
        assert_eq!(spec.comm_rate_dn(CloudId(0)).to_bits(), 1.0f64.to_bits());
        assert_eq!(spec.cloud_tier(CloudId(0)), 1);
    }

    #[test]
    fn cloud_before_first_tier_is_rejected() {
        let err = PlatformSpec::builder()
            .edge(1.0)
            .cloud(1.0)
            .tier(1.0, 1.0)
            .cloud(1.0)
            .try_build()
            .unwrap_err();
        assert!(matches!(err, SpecError::TierOutOfRange { cloud: 0, .. }));
    }

    #[test]
    fn validation_errors() {
        let bad = PlatformSpec {
            edge_speeds: vec![],
            cloud_speeds: vec![1.0],
            cloud_unavailability: vec![IntervalSet::new()],
            max_cloud_speed: 1.0,
            tiers: None,
        };
        assert_eq!(bad.validate(), Err(SpecError::NoEdgeUnit));

        let bad = PlatformSpec {
            edge_speeds: vec![0.0],
            cloud_speeds: vec![],
            cloud_unavailability: vec![],
            max_cloud_speed: 0.0,
            tiers: None,
        };
        assert!(matches!(bad.validate(), Err(SpecError::BadSpeed { .. })));
    }

    #[test]
    #[should_panic(expected = "invalid platform spec")]
    fn constructor_panics_on_bad_speed() {
        let _ = PlatformSpec::builder().edge(-1.0).cloud_pool(1).build();
    }

    #[test]
    fn bad_hop_rejected() {
        let err = PlatformSpec::builder()
            .edge(1.0)
            .tier(0.0, 1.0)
            .cloud(1.0)
            .try_build()
            .unwrap_err();
        assert!(matches!(err, SpecError::BadHop { hop: 0, .. }));
    }

    #[test]
    fn unavailability_windows() {
        let spec = PlatformSpec::builder()
            .edge(1.0)
            .cloud_pool(2)
            .unavailability(CloudId(1), Interval::new(Time::new(5.0), Time::new(10.0)))
            .build();
        assert!(spec.has_unavailability());
        assert!(spec.cloud_unavailability(CloudId(0)).is_empty());
        assert_eq!(spec.cloud_unavailability(CloudId(1)).len(), 1);
    }

    #[test]
    fn id_display() {
        assert_eq!(EdgeId(3).to_string(), "e3");
        assert_eq!(CloudId(0).to_string(), "c0");
    }
}
