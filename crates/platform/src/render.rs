//! ASCII Gantt rendering of schedules — the textual equivalent of the
//! paper's Figure 1, one row per resource.
//!
//! ```text
//! cpu(e0)  |111--44666444|
//! cpu(c0)  |-22223355----|
//! out(e0)  |22-3--5------|
//! ...
//! ```
//!
//! Each column is one time cell; digits identify jobs (job 10 and above
//! wrap through a wider alphabet), `-` is idle time.

use crate::activity::{Phase, Target};
use crate::instance::Instance;
use crate::job::JobId;
use crate::resource::{ResourceId, ResourceIndex};
use crate::schedule::Schedule;
use mmsec_sim::Interval;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Clone, Copy, Debug)]
pub struct GanttOptions {
    /// Total character width of the timeline.
    pub width: usize,
    /// Include abandoned (re-executed) activity, rendered lowercase.
    pub show_abandoned: bool,
    /// Skip resources that are never used.
    pub hide_idle_resources: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        GanttOptions {
            width: 72,
            show_abandoned: true,
            hide_idle_resources: true,
        }
    }
}

/// Symbol used for a job in the chart: `1`–`9`, then letters, then `#`.
fn job_symbol(job: JobId, abandoned: bool) -> char {
    let upper = match job.0 {
        n @ 0..=8 => (b'1' + n as u8) as char,
        n @ 9..=34 => (b'A' + (n - 9) as u8) as char,
        _ => '#',
    };
    if abandoned {
        upper.to_ascii_lowercase()
    } else {
        upper
    }
}

/// Renders a Gantt chart of `schedule` over `instance`'s resources.
pub fn gantt(instance: &Instance, schedule: &Schedule, opts: GanttOptions) -> String {
    let Some(makespan) = schedule_horizon(schedule) else {
        return String::from("(empty schedule)\n");
    };
    let index = ResourceIndex::new(&instance.spec);
    let mut rows: Vec<Vec<char>> = vec![vec!['-'; opts.width]; index.count()];

    let horizon = makespan.max(1e-12);
    let paint = |rows: &mut Vec<Vec<char>>, r: ResourceId, iv: Interval, sym: char| {
        let a = ((iv.start().seconds() / horizon) * opts.width as f64).floor() as usize;
        let b = ((iv.end().seconds() / horizon) * opts.width as f64).ceil() as usize;
        let (a, b) = (a.min(opts.width), b.min(opts.width).max(a + 1));
        let row = &mut rows[index.index(r)];
        for cell in row.iter_mut().take(b.min(opts.width)).skip(a) {
            *cell = sym;
        }
    };

    for (id, job) in instance.iter_jobs() {
        let Some(target) = schedule.alloc[id.0] else {
            continue;
        };
        let sym = job_symbol(id, false);
        for iv in schedule.exec[id.0].iter() {
            for r in Phase::Compute.resources(job, target).iter() {
                paint(&mut rows, r, *iv, sym);
            }
        }
        if let Target::Cloud(_) = target {
            for iv in schedule.up[id.0].iter() {
                for r in Phase::Uplink.resources(job, target).iter() {
                    paint(&mut rows, r, *iv, sym);
                }
            }
            for iv in schedule.dn[id.0].iter() {
                for r in Phase::Downlink.resources(job, target).iter() {
                    paint(&mut rows, r, *iv, sym);
                }
            }
        }
    }
    if opts.show_abandoned {
        for seg in &schedule.abandoned {
            let job = instance.job(seg.job);
            let sym = job_symbol(seg.job, true);
            for r in seg.phase.resources(job, seg.target).iter() {
                paint(&mut rows, r, seg.interval, sym);
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "time 0 .. {makespan:.3}  ({} cells, {:.4} per cell)",
        opts.width,
        horizon / opts.width as f64
    );
    for (ri, row) in rows.iter().enumerate() {
        if opts.hide_idle_resources && row.iter().all(|&c| c == '-') {
            continue;
        }
        let label = index.resource(ri).to_string();
        let _ = writeln!(out, "{label:<9}|{}|", row.iter().collect::<String>());
    }
    out
}

fn schedule_horizon(schedule: &Schedule) -> Option<f64> {
    let mut h: Option<f64> = schedule.makespan().map(|t| t.seconds());
    for seg in &schedule.abandoned {
        let end = seg.interval.end().seconds();
        h = Some(h.map_or(end, |x| x.max(end)));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{OnlineScheduler, Simulation};
    use crate::instance::figure1_instance;
    use crate::view::SimView;
    use crate::DirectiveBuffer;

    struct AllCloud;
    impl OnlineScheduler for AllCloud {
        fn name(&self) -> String {
            "all-cloud".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            for j in view.pending_jobs() {
                out.push(j, Target::Cloud(crate::CloudId(0)));
            }
        }
    }

    struct AllEdge;
    impl OnlineScheduler for AllEdge {
        fn name(&self) -> String {
            "all-edge".into()
        }
        fn decide(&mut self, view: &SimView<'_>, out: &mut DirectiveBuffer) {
            for j in view.pending_jobs() {
                out.push(j, Target::Edge);
            }
        }
    }

    #[test]
    fn renders_figure1_style_chart() {
        let inst = figure1_instance();
        let out = Simulation::of(&inst).policy(&mut AllEdge).run().unwrap();
        let chart = gantt(&inst, &out.schedule, GanttOptions::default());
        // One visible row: the edge CPU; header line present.
        assert!(chart.contains("cpu(e0)"));
        assert!(chart.starts_with("time 0 .."));
        // Every job symbol appears.
        for sym in ['1', '2', '3', '4', '5', '6'] {
            assert!(chart.contains(sym), "missing {sym} in:\n{chart}");
        }
        // No cloud rows (all idle, hidden).
        assert!(!chart.contains("cpu(c0)"));
    }

    #[test]
    fn cloud_rows_and_ports_appear() {
        let inst = figure1_instance();
        let out = Simulation::of(&inst).policy(&mut AllCloud).run().unwrap();
        let chart = gantt(&inst, &out.schedule, GanttOptions::default());
        assert!(chart.contains("cpu(c0)"));
        assert!(chart.contains("out(e0)"));
        assert!(chart.contains("in(e0)"));
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let inst = figure1_instance();
        let empty = crate::schedule::TraceBuilder::new(inst.num_jobs()).finish();
        assert_eq!(
            gantt(&inst, &empty, GanttOptions::default()),
            "(empty schedule)\n"
        );
    }

    #[test]
    fn job_symbols_cycle() {
        assert_eq!(job_symbol(JobId(0), false), '1');
        assert_eq!(job_symbol(JobId(8), false), '9');
        assert_eq!(job_symbol(JobId(9), false), 'A');
        assert_eq!(job_symbol(JobId(34), false), 'Z');
        assert_eq!(job_symbol(JobId(35), false), '#');
        assert_eq!(job_symbol(JobId(9), true), 'a');
    }

    #[test]
    fn idle_resources_can_be_shown() {
        let inst = figure1_instance();
        let out = Simulation::of(&inst).policy(&mut AllEdge).run().unwrap();
        let chart = gantt(
            &inst,
            &out.schedule,
            GanttOptions {
                hide_idle_resources: false,
                ..GanttOptions::default()
            },
        );
        assert!(chart.contains("cpu(c0)"));
        assert!(chart.contains("out(c0)"));
    }
}
