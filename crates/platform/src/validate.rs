//! Full schedule validity checker (paper §III-B).
//!
//! Verifies, for a produced [`Schedule`] against its [`Instance`]:
//!
//! 1. every job completes, at the end of its last activity interval;
//! 2. no activity of a job starts before its release date;
//! 3. volume constraints: `Σ|E_i| ≥ w_i / speed`, `Σ|U_i| ≥ up_i`,
//!    `Σ|D_i| ≥ dn_i` (per the final attempt's allocation);
//! 4. ordering: uplink completes before computation starts, computation
//!    completes before downlink starts;
//! 5. exclusive resources: CPU intervals of jobs sharing a processor are
//!    disjoint, and (one-port model) communication intervals sharing a
//!    sender or receiver port are disjoint — *including* the intervals of
//!    abandoned attempts, which occupied resources too;
//! 6. §VII extension: no computation overlaps a cloud unavailability
//!    window.

use crate::activity::{Phase, Target};
use crate::instance::Instance;
use crate::job::JobId;
use crate::resource::{ResourceId, ResourceIndex};
use crate::schedule::Schedule;
use mmsec_sim::time::approx;
use mmsec_sim::{Interval, IntervalSet};
use std::fmt;

/// Validation knobs.
#[derive(Clone, Copy, Debug)]
pub struct ValidateOptions {
    /// Check one-port exclusivity on communication ports (disable when the
    /// schedule was produced with `EngineOptions::infinite_ports`).
    pub check_ports: bool,
    /// Require every job to have completed.
    pub require_finished: bool,
}

impl Default for ValidateOptions {
    fn default() -> Self {
        ValidateOptions {
            check_ports: true,
            require_finished: true,
        }
    }
}

/// A specific violation of the §III-B constraints.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Job never completed.
    Unfinished(JobId),
    /// Job has no allocation but has completed.
    Unallocated(JobId),
    /// An activity interval starts before the job's release date.
    BeforeRelease {
        /// Offending job.
        job: JobId,
        /// Start of the offending interval (seconds).
        start: f64,
        /// Release date (seconds).
        release: f64,
    },
    /// Total volume of a phase is insufficient.
    MissingVolume {
        /// Offending job.
        job: JobId,
        /// Phase with missing volume.
        phase: Phase,
        /// Required time (seconds).
        required: f64,
        /// Accumulated time (seconds).
        got: f64,
    },
    /// Phase ordering violated (e.g. computation before uplink finished).
    OutOfOrder {
        /// Offending job.
        job: JobId,
        /// Earlier phase that must complete first.
        before: Phase,
        /// Later phase that started too early.
        after: Phase,
    },
    /// A job allocated to the edge has communication intervals.
    SpuriousCommunication(JobId),
    /// Completion time does not match the end of the last activity.
    CompletionMismatch {
        /// Offending job.
        job: JobId,
        /// Recorded completion (seconds).
        recorded: f64,
        /// End of the last activity (seconds).
        actual: f64,
    },
    /// Two activities overlap on an exclusive resource.
    ResourceOverlap {
        /// The contended resource.
        resource: ResourceId,
        /// First job.
        a: JobId,
        /// Second job.
        b: JobId,
        /// Overlap amount (seconds).
        overlap: f64,
    },
    /// A computation overlaps a cloud unavailability window.
    UnavailableCloudUsed {
        /// Offending job.
        job: JobId,
        /// The window that was violated.
        window: Interval,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Unfinished(j) => write!(f, "{j} never completed"),
            Violation::Unallocated(j) => write!(f, "{j} completed without an allocation"),
            Violation::BeforeRelease {
                job,
                start,
                release,
            } => {
                write!(f, "{job} active at {start} before release {release}")
            }
            Violation::MissingVolume {
                job,
                phase,
                required,
                got,
            } => {
                write!(f, "{job} {phase}: needs {required}, got {got}")
            }
            Violation::OutOfOrder { job, before, after } => {
                write!(f, "{job}: {after} starts before {before} completes")
            }
            Violation::SpuriousCommunication(j) => {
                write!(f, "{j} runs on the edge but has communication intervals")
            }
            Violation::CompletionMismatch {
                job,
                recorded,
                actual,
            } => {
                write!(
                    f,
                    "{job}: completion recorded {recorded}, activities end {actual}"
                )
            }
            Violation::ResourceOverlap {
                resource,
                a,
                b,
                overlap,
            } => {
                write!(f, "{a} and {b} overlap by {overlap} on {resource}")
            }
            Violation::UnavailableCloudUsed { job, window } => {
                write!(f, "{job} computes during unavailability window {window:?}")
            }
        }
    }
}

/// Validates `schedule` against `instance` with default options.
pub fn validate(instance: &Instance, schedule: &Schedule) -> Result<(), Vec<Violation>> {
    validate_with(instance, schedule, ValidateOptions::default())
}

/// Validates with explicit options; returns all violations found.
pub fn validate_with(
    instance: &Instance,
    schedule: &Schedule,
    opts: ValidateOptions,
) -> Result<(), Vec<Violation>> {
    let mut v = Vec::new();
    check_jobs(instance, schedule, opts, &mut v);
    check_resources(instance, schedule, opts, &mut v);
    check_windows(instance, schedule, &mut v);
    if v.is_empty() {
        Ok(())
    } else {
        Err(v)
    }
}

fn check_jobs(
    instance: &Instance,
    schedule: &Schedule,
    opts: ValidateOptions,
    v: &mut Vec<Violation>,
) {
    let spec = &instance.spec;
    for (id, job) in instance.iter_jobs() {
        let i = id.0;
        let completion = schedule.completion[i];
        if completion.is_none() {
            if opts.require_finished {
                v.push(Violation::Unfinished(id));
            }
            continue;
        }
        let Some(target) = schedule.alloc[i] else {
            v.push(Violation::Unallocated(id));
            continue;
        };

        // 2. Release dates (final attempt + abandoned attempts).
        let release = job.release.seconds();
        let mut check_release = |start: Option<mmsec_sim::Time>| {
            if let Some(s) = start {
                if approx::lt(s.seconds(), release) {
                    v.push(Violation::BeforeRelease {
                        job: id,
                        start: s.seconds(),
                        release,
                    });
                }
            }
        };
        check_release(schedule.exec[i].min_start());
        check_release(schedule.up[i].min_start());
        check_release(schedule.dn[i].min_start());
        for seg in schedule.abandoned.iter().filter(|s| s.job == id) {
            check_release(Some(seg.interval.start()));
        }

        // 3. Volumes, 4. ordering, and the shape of the allocation.
        let exec_len = schedule.exec[i].total_length().seconds();
        let up_len = schedule.up[i].total_length().seconds();
        let dn_len = schedule.dn[i].total_length().seconds();
        match target {
            Target::Edge => {
                let required = job.work / spec.edge_speed(job.origin);
                if approx::lt(exec_len, required) {
                    v.push(Violation::MissingVolume {
                        job: id,
                        phase: Phase::Compute,
                        required,
                        got: exec_len,
                    });
                }
                if !schedule.up[i].is_empty() || !schedule.dn[i].is_empty() {
                    v.push(Violation::SpuriousCommunication(id));
                }
            }
            Target::Cloud(k) => {
                let required = job.work / spec.cloud_speed(k);
                if approx::lt(exec_len, required) {
                    v.push(Violation::MissingVolume {
                        job: id,
                        phase: Phase::Compute,
                        required,
                        got: exec_len,
                    });
                }
                // Transfers are priced along the tier path: volume ×
                // per-hop link-time factors (exactly the volume on a
                // flat platform, where every path factor is 1.0).
                let required_up = job.up * spec.path_up(k);
                if approx::lt(up_len, required_up) {
                    v.push(Violation::MissingVolume {
                        job: id,
                        phase: Phase::Uplink,
                        required: required_up,
                        got: up_len,
                    });
                }
                let required_dn = job.dn * spec.path_dn(k);
                if approx::lt(dn_len, required_dn) {
                    v.push(Violation::MissingVolume {
                        job: id,
                        phase: Phase::Downlink,
                        required: required_dn,
                        got: dn_len,
                    });
                }
                // max(U_i) ≤ min(E_i), max(E_i) ≤ min(D_i).
                if let (Some(u_end), Some(e_start)) =
                    (schedule.up[i].max_end(), schedule.exec[i].min_start())
                {
                    if approx::gt(u_end.seconds(), e_start.seconds()) {
                        v.push(Violation::OutOfOrder {
                            job: id,
                            before: Phase::Uplink,
                            after: Phase::Compute,
                        });
                    }
                }
                if let (Some(e_end), Some(d_start)) =
                    (schedule.exec[i].max_end(), schedule.dn[i].min_start())
                {
                    if approx::gt(e_end.seconds(), d_start.seconds()) {
                        v.push(Violation::OutOfOrder {
                            job: id,
                            before: Phase::Compute,
                            after: Phase::Downlink,
                        });
                    }
                }
            }
        }

        // 1. Completion = end of the last activity.
        let last_end = [
            schedule.exec[i].max_end(),
            schedule.up[i].max_end(),
            schedule.dn[i].max_end(),
        ]
        .into_iter()
        .flatten()
        .max();
        if let (Some(c), Some(e)) = (completion, last_end) {
            if !c.approx_eq(e) {
                v.push(Violation::CompletionMismatch {
                    job: id,
                    recorded: c.seconds(),
                    actual: e.seconds(),
                });
            }
        }
    }
}

/// All `(interval, job)` uses of every resource, final and abandoned,
/// indexed densely by [`ResourceIndex`]. Shared with the statistics
/// module so the two never diverge.
pub(crate) fn resource_usage(
    instance: &Instance,
    schedule: &Schedule,
) -> Vec<Vec<(Interval, JobId)>> {
    let spec = &instance.spec;
    let index = ResourceIndex::new(spec);
    let mut usage: Vec<Vec<(Interval, JobId)>> = vec![Vec::new(); index.count()];
    let mut add = |job: JobId, phase: Phase, target: Target, iv: Interval| {
        let resources = phase.resources(instance.job(job), target);
        for r in resources.iter() {
            usage[index.index(r)].push((iv, job));
        }
    };
    for (id, _) in instance.iter_jobs() {
        let i = id.0;
        if let Some(target) = schedule.alloc[i] {
            for iv in schedule.exec[i].iter() {
                add(id, Phase::Compute, target, *iv);
            }
            for iv in schedule.up[i].iter() {
                add(id, Phase::Uplink, target, *iv);
            }
            for iv in schedule.dn[i].iter() {
                add(id, Phase::Downlink, target, *iv);
            }
        }
    }
    for seg in &schedule.abandoned {
        add(seg.job, seg.phase, seg.target, seg.interval);
    }
    usage
}

fn check_resources(
    instance: &Instance,
    schedule: &Schedule,
    opts: ValidateOptions,
    v: &mut Vec<Violation>,
) {
    let index = ResourceIndex::new(&instance.spec);
    let mut usage = resource_usage(instance, schedule);
    for (ri, uses) in usage.iter_mut().enumerate() {
        let resource = index.resource(ri);
        let is_port = !matches!(resource, ResourceId::EdgeCpu(_) | ResourceId::CloudCpu(_));
        if is_port && !opts.check_ports {
            continue;
        }
        uses.sort_by_key(|u| u.0);
        for w in uses.windows(2) {
            let ((prev, pj), (next, nj)) = (w[0], w[1]);
            let overlap = prev.end().seconds() - next.start().seconds();
            if approx::gt(prev.end().seconds(), next.start().seconds()) {
                v.push(Violation::ResourceOverlap {
                    resource,
                    a: pj,
                    b: nj,
                    overlap,
                });
            }
        }
    }
}

fn check_windows(instance: &Instance, schedule: &Schedule, v: &mut Vec<Violation>) {
    let spec = &instance.spec;
    if !spec.has_unavailability() {
        return;
    }
    let mut check = |job: JobId, k: crate::spec::CloudId, set: &IntervalSet| {
        for w in spec.cloud_unavailability(k).iter() {
            for iv in set.iter() {
                if let Some(inter) = iv.intersect(w) {
                    if !inter.is_empty() {
                        v.push(Violation::UnavailableCloudUsed { job, window: *w });
                    }
                }
            }
        }
    };
    for (id, _) in instance.iter_jobs() {
        if let Some(Target::Cloud(k)) = schedule.alloc[id.0] {
            check(id, k, &schedule.exec[id.0]);
        }
    }
    for seg in &schedule.abandoned {
        if let (Phase::Compute, Target::Cloud(k)) = (seg.phase, seg.target) {
            let single: IntervalSet = [seg.interval].into_iter().collect();
            check(seg.job, k, &single);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::schedule::TraceBuilder;
    use crate::spec::{CloudId, EdgeId, PlatformSpec};
    use mmsec_sim::Time;

    fn instance_one_cloud() -> Instance {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(1)
            .build();
        Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0)]).unwrap()
    }

    fn iv(a: f64, b: f64) -> Interval {
        Interval::from_secs(a, b)
    }

    #[test]
    fn accepts_correct_cloud_schedule() {
        let inst = instance_one_cloud();
        let mut tb = TraceBuilder::new(1);
        let tgt = Target::Cloud(CloudId(0));
        tb.record(JobId(0), Phase::Uplink, tgt, iv(0.0, 1.0));
        tb.record(JobId(0), Phase::Compute, tgt, iv(1.0, 3.0));
        tb.record(JobId(0), Phase::Downlink, tgt, iv(3.0, 4.0));
        tb.complete(JobId(0), Time::new(4.0));
        assert_eq!(validate(&inst, &tb.finish()), Ok(()));
    }

    #[test]
    fn detects_missing_volume() {
        let inst = instance_one_cloud();
        let mut tb = TraceBuilder::new(1);
        let tgt = Target::Cloud(CloudId(0));
        tb.record(JobId(0), Phase::Uplink, tgt, iv(0.0, 1.0));
        tb.record(JobId(0), Phase::Compute, tgt, iv(1.0, 2.0)); // needs 2, got 1
        tb.record(JobId(0), Phase::Downlink, tgt, iv(2.0, 3.0));
        tb.complete(JobId(0), Time::new(3.0));
        let errs = validate(&inst, &tb.finish()).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            Violation::MissingVolume {
                phase: Phase::Compute,
                ..
            }
        )));
    }

    #[test]
    fn detects_phase_order_violation() {
        let inst = instance_one_cloud();
        let mut tb = TraceBuilder::new(1);
        let tgt = Target::Cloud(CloudId(0));
        // Compute before uplink finishes.
        tb.record(JobId(0), Phase::Compute, tgt, iv(0.0, 2.0));
        tb.record(JobId(0), Phase::Uplink, tgt, iv(2.0, 3.0));
        tb.record(JobId(0), Phase::Downlink, tgt, iv(3.0, 4.0));
        tb.complete(JobId(0), Time::new(4.0));
        let errs = validate(&inst, &tb.finish()).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            Violation::OutOfOrder {
                before: Phase::Uplink,
                after: Phase::Compute,
                ..
            }
        )));
    }

    #[test]
    fn detects_work_before_release() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 5.0, 1.0, 0.0, 0.0)]).unwrap();
        let mut tb = TraceBuilder::new(1);
        tb.record(JobId(0), Phase::Compute, Target::Edge, iv(0.0, 1.0));
        tb.complete(JobId(0), Time::new(1.0));
        let errs = validate(&inst, &tb.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, Violation::BeforeRelease { .. })));
    }

    #[test]
    fn detects_resource_overlap_between_jobs() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut tb = TraceBuilder::new(2);
        // Both run on the single edge CPU at the same time: invalid.
        tb.record(JobId(0), Phase::Compute, Target::Edge, iv(0.0, 2.0));
        tb.record(JobId(1), Phase::Compute, Target::Edge, iv(1.0, 3.0));
        tb.complete(JobId(0), Time::new(2.0));
        tb.complete(JobId(1), Time::new(3.0));
        let errs = validate(&inst, &tb.finish()).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            Violation::ResourceOverlap {
                resource: ResourceId::EdgeCpu(_),
                ..
            }
        )));
    }

    #[test]
    fn detects_one_port_violation_and_option_disables_it() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(2)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 2.0, 0.0),
            Job::new(EdgeId(0), 0.0, 1.0, 2.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut tb = TraceBuilder::new(2);
        // Parallel uplinks from one edge: violates EdgeOut exclusivity.
        tb.record(
            JobId(0),
            Phase::Uplink,
            Target::Cloud(CloudId(0)),
            iv(0.0, 2.0),
        );
        tb.record(
            JobId(1),
            Phase::Uplink,
            Target::Cloud(CloudId(1)),
            iv(0.0, 2.0),
        );
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Cloud(CloudId(0)),
            iv(2.0, 3.0),
        );
        tb.record(
            JobId(1),
            Phase::Compute,
            Target::Cloud(CloudId(1)),
            iv(2.0, 3.0),
        );
        tb.complete(JobId(0), Time::new(3.0));
        tb.complete(JobId(1), Time::new(3.0));
        let schedule = tb.finish();
        let errs = validate(&inst, &schedule).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            Violation::ResourceOverlap {
                resource: ResourceId::EdgeOut(_),
                ..
            }
        )));
        // With port checks disabled (macro-dataflow), the schedule passes.
        let opts = ValidateOptions {
            check_ports: false,
            ..ValidateOptions::default()
        };
        assert_eq!(validate_with(&inst, &schedule, opts), Ok(()));
    }

    #[test]
    fn abandoned_segments_occupy_resources() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
            Job::new(EdgeId(0), 0.0, 2.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let mut tb = TraceBuilder::new(2);
        // J1's abandoned attempt overlaps J2's execution on the edge CPU.
        tb.record(JobId(0), Phase::Compute, Target::Edge, iv(0.0, 1.5));
        tb.abandon(JobId(0));
        tb.record(JobId(0), Phase::Compute, Target::Edge, iv(3.0, 5.0));
        tb.record(JobId(1), Phase::Compute, Target::Edge, iv(1.0, 3.0));
        tb.complete(JobId(0), Time::new(5.0));
        tb.complete(JobId(1), Time::new(3.0));
        let errs = validate(&inst, &tb.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, Violation::ResourceOverlap { .. })));
    }

    #[test]
    fn detects_unfinished_job() {
        let inst = instance_one_cloud();
        let schedule = TraceBuilder::new(1).finish();
        let errs = validate(&inst, &schedule).unwrap_err();
        assert_eq!(errs, vec![Violation::Unfinished(JobId(0))]);
        // ... unless finishing is not required.
        let opts = ValidateOptions {
            require_finished: false,
            ..ValidateOptions::default()
        };
        assert_eq!(validate_with(&inst, &schedule, opts), Ok(()));
    }

    #[test]
    fn detects_completion_mismatch() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(0)
            .build();
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 1.0, 0.0, 0.0)]).unwrap();
        let mut tb = TraceBuilder::new(1);
        tb.record(JobId(0), Phase::Compute, Target::Edge, iv(0.0, 1.0));
        tb.complete(JobId(0), Time::new(2.5));
        let errs = validate(&inst, &tb.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, Violation::CompletionMismatch { .. })));
    }

    #[test]
    fn detects_computation_in_unavailability_window() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build()
            .with_cloud_unavailability(CloudId(0), &[iv(1.0, 2.0)]);
        let inst = Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, 3.0, 0.0, 0.0)]).unwrap();
        let mut tb = TraceBuilder::new(1);
        tb.record(
            JobId(0),
            Phase::Compute,
            Target::Cloud(CloudId(0)),
            iv(0.0, 3.0),
        );
        tb.complete(JobId(0), Time::new(3.0));
        let errs = validate(&inst, &tb.finish()).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, Violation::UnavailableCloudUsed { .. })));
    }

    #[test]
    fn violation_messages_render() {
        let v = Violation::MissingVolume {
            job: JobId(0),
            phase: Phase::Compute,
            required: 2.0,
            got: 1.0,
        };
        assert!(v.to_string().contains("J1"));
        let v = Violation::ResourceOverlap {
            resource: ResourceId::EdgeCpu(EdgeId(0)),
            a: JobId(0),
            b: JobId(1),
            overlap: 0.5,
        };
        assert!(v.to_string().contains("overlap"));
    }
}
