//! Dynamic simulation state: per-job progress ([`JobState`]) and the
//! versioned mutable platform runtime ([`platform::PlatformState`]).
//!
//! The read-only view handed to schedulers ([`crate::view::SimView`]) and
//! the incrementally maintained pending set live in [`crate::view`].

pub mod arena;
pub mod platform;

pub use arena::JobArena;
pub use platform::{PlatformError, PlatformMutation, PlatformState};

use crate::activity::{Phase, Target};
use crate::job::Job;
use crate::spec::PlatformSpec;
use mmsec_sim::time::approx;
use mmsec_sim::Time;

/// Dynamic state of one job during a simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct JobState {
    /// The job has been released (`now ≥ r_i`).
    pub released: bool,
    /// The job has fully completed (result delivered at the origin).
    pub finished: bool,
    /// Completion time `C_i`, once finished.
    pub completion: Option<Time>,
    /// Resource the job is committed to (None before any placement).
    pub committed: Option<Target>,
    /// Uplink time already transferred (time units).
    pub up_done: f64,
    /// Work already computed (work units).
    pub work_done: f64,
    /// Downlink time already transferred (time units).
    pub dn_done: f64,
    /// Phase currently running, if the job holds resources right now.
    pub running: Option<Phase>,
    /// Number of re-executions from scratch this job has suffered.
    pub restarts: u32,
}

impl Default for JobState {
    fn default() -> Self {
        JobState {
            released: false,
            finished: false,
            completion: None,
            committed: None,
            up_done: 0.0,
            work_done: 0.0,
            dn_done: 0.0,
            running: None,
            restarts: 0,
        }
    }
}

impl JobState {
    /// Wipes all progress (re-execution from scratch: "the time spent up to
    /// re-assignment is lost").
    pub fn reset_progress(&mut self) {
        self.up_done = 0.0;
        self.work_done = 0.0;
        self.dn_done = 0.0;
        self.restarts += 1;
    }

    /// Remaining uplink time for `job` if continuing on a cloud target.
    pub fn remaining_up(&self, job: &Job) -> f64 {
        (job.up - self.up_done).max(0.0)
    }

    /// Remaining work (in work units).
    pub fn remaining_work(&self, job: &Job) -> f64 {
        (job.work - self.work_done).max(0.0)
    }

    /// Remaining downlink time.
    pub fn remaining_dn(&self, job: &Job) -> f64 {
        (job.dn - self.dn_done).max(0.0)
    }

    /// The phase the job would run next if (re)activated on `target`,
    /// skipping phases with (approximately) no remaining volume.
    /// Returns `None` when nothing remains — i.e. the job is complete.
    ///
    /// Progress counters are meaningful only if `target` matches the
    /// committed target; callers evaluating a *switch* must treat the job
    /// as starting from scratch on the new target instead.
    pub fn current_phase(&self, job: &Job, target: Target) -> Option<Phase> {
        match target {
            Target::Edge => {
                if approx::positive(self.remaining_work(job)) {
                    Some(Phase::Compute)
                } else {
                    None
                }
            }
            Target::Cloud(_) => {
                if approx::positive(self.remaining_up(job)) {
                    Some(Phase::Uplink)
                } else if approx::positive(self.remaining_work(job)) {
                    Some(Phase::Compute)
                } else if approx::positive(self.remaining_dn(job)) {
                    Some(Phase::Downlink)
                } else {
                    None
                }
            }
        }
    }

    /// Contention-free remaining duration if the job continues on `target`
    /// (same-commitment progress) — the optimistic completion-time
    /// estimate every heuristic of §V builds on.
    pub fn remaining_time_on(&self, job: &Job, target: Target, spec: &PlatformSpec) -> f64 {
        match target {
            Target::Edge => self.remaining_work(job) / spec.edge_speed(job.origin),
            Target::Cloud(k) => {
                self.remaining_up(job) * spec.path_up(k)
                    + self.remaining_work(job) / spec.cloud_speed(k)
                    + self.remaining_dn(job) * spec.path_dn(k)
            }
        }
    }

    /// Contention-free duration if the job *restarts from scratch* on
    /// `target` (used when evaluating a re-execution).
    pub fn fresh_time_on(job: &Job, target: Target, spec: &PlatformSpec) -> f64 {
        match target {
            Target::Edge => job.edge_time(spec),
            Target::Cloud(k) => job.cloud_time_on(spec, k),
        }
    }

    /// Contention-free remaining duration on `target`, accounting for a
    /// reset when `target` differs from the committed one.
    pub fn duration_if_placed(&self, job: &Job, target: Target, spec: &PlatformSpec) -> f64 {
        match self.committed {
            Some(t) if t == target => self.remaining_time_on(job, target, spec),
            _ => Self::fresh_time_on(job, target, spec),
        }
    }

    /// True when the job has been released but not finished.
    pub fn active(&self) -> bool {
        self.released && !self.finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::job::JobId;
    use crate::spec::{CloudId, EdgeId};

    fn fixture() -> (Instance, Job) {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(2)
            .build();
        let job = Job::new(EdgeId(0), 1.0, 4.0, 2.0, 1.0);
        let inst = Instance::new(spec, vec![job]).unwrap();
        (inst, job)
    }

    #[test]
    fn phase_progression_on_cloud() {
        let (_inst, job) = fixture();
        let mut st = JobState::default();
        let tgt = Target::Cloud(CloudId(0));
        assert_eq!(st.current_phase(&job, tgt), Some(Phase::Uplink));
        st.up_done = 2.0;
        assert_eq!(st.current_phase(&job, tgt), Some(Phase::Compute));
        st.work_done = 4.0;
        assert_eq!(st.current_phase(&job, tgt), Some(Phase::Downlink));
        st.dn_done = 1.0;
        assert_eq!(st.current_phase(&job, tgt), None);
    }

    #[test]
    fn phase_skips_zero_volumes() {
        let spec = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(1)
            .build();
        // Kang-style job: no downlink.
        let job = Job::new(EdgeId(0), 0.0, 3.0, 0.0, 0.0);
        let inst = Instance::new(spec, vec![job]).unwrap();
        let st = JobState::default();
        // up = 0 → starts in Compute directly.
        assert_eq!(
            st.current_phase(inst.job(JobId(0)), Target::Cloud(CloudId(0))),
            Some(Phase::Compute)
        );
        let mut done = st.clone();
        done.work_done = 3.0;
        // dn = 0 → complete as soon as work is done.
        assert_eq!(
            done.current_phase(inst.job(JobId(0)), Target::Cloud(CloudId(0))),
            None
        );
    }

    #[test]
    fn remaining_times() {
        let (inst, job) = fixture();
        let spec = &inst.spec;
        let mut st = JobState::default();
        // Fresh: edge 4/0.5 = 8; cloud 2+4+1 = 7.
        assert_eq!(st.remaining_time_on(&job, Target::Edge, spec), 8.0);
        assert_eq!(
            st.remaining_time_on(&job, Target::Cloud(CloudId(0)), spec),
            7.0
        );
        st.up_done = 1.5;
        st.committed = Some(Target::Cloud(CloudId(0)));
        assert_eq!(
            st.duration_if_placed(&job, Target::Cloud(CloudId(0)), spec),
            5.5
        );
        // Switching to the other cloud processor restarts from scratch.
        assert_eq!(
            st.duration_if_placed(&job, Target::Cloud(CloudId(1)), spec),
            7.0
        );
        // Switching to the edge restarts too.
        assert_eq!(st.duration_if_placed(&job, Target::Edge, spec), 8.0);
    }

    #[test]
    fn reset_progress_counts_restarts() {
        let mut st = JobState {
            up_done: 1.0,
            work_done: 2.0,
            dn_done: 0.5,
            ..JobState::default()
        };
        st.reset_progress();
        assert_eq!(st.up_done, 0.0);
        assert_eq!(st.work_done, 0.0);
        assert_eq!(st.dn_done, 0.0);
        assert_eq!(st.restarts, 1);
    }
}
