//! The versioned, mutable platform runtime.
//!
//! [`PlatformState`] is the engine's owned replacement for a borrowed,
//! frozen [`PlatformSpec`]: it carries the spec plus per-unit *liveness*
//! (permanent membership), the fault overlay (temporary Down/Up windows
//! and link factors replayed from a compiled fault plan), and a **version
//! counter** bumped by every permanent mutation. All platform changes —
//! elastic join/leave, speed scaling, link re-provisioning, and fault
//! replay — flow through this one structure, so the engine, the policies
//! (via [`crate::view::SimView`]), and the serve front-end all observe
//! the same composed availability.
//!
//! # Permanent vs. temporary mutations
//!
//! *Permanent* mutations ([`PlatformState::add_edge`],
//! [`PlatformState::remove_edge`], [`PlatformState::add_cloud`],
//! [`PlatformState::remove_cloud`], [`PlatformState::set_link`],
//! [`PlatformState::set_edge_speed`], [`PlatformState::set_cloud_speed`])
//! model elastic platform changes: each one validates its inputs, bumps
//! the platform [version](PlatformState::version), and is verified
//! against the spec invariants before it commits — an invalid mutation
//! is rejected with a typed [`PlatformError`] and the version does not
//! move. *Temporary* mutations (the `fault_*` methods) replay a compiled
//! fault plan's Down/Up windows and link-change boundaries: they flip the
//! fault overlay without versioning, because the platform's permanent
//! shape is unchanged.
//!
//! # Identity and tombstones
//!
//! Unit ids are stable forever: removal *tombstones* a unit (it reports
//! unavailable from then on) instead of renumbering. A tombstoned unit
//! keeps its speed in the spec, so min-time stretch denominators computed
//! before and after a removal stay comparable; policies simply see the
//! unit as permanently down and place around it.

use crate::spec::{CloudId, EdgeId, PlatformSpec, SpecError};
use crate::view::Availability;
use std::fmt;

/// A typed, rejected platform mutation (see [`PlatformState`]).
#[derive(Clone, Debug, PartialEq)]
pub enum PlatformError {
    /// The referenced edge unit was never part of the platform.
    UnknownEdge {
        /// Offending edge index.
        edge: usize,
    },
    /// The referenced cloud processor was never part of the platform.
    UnknownCloud {
        /// Offending cloud index.
        cloud: usize,
    },
    /// The referenced unit exists but was already removed (tombstoned).
    AlreadyRemoved {
        /// Display name of the unit (`"e3"`, `"c0"`).
        unit: String,
    },
    /// A speed must be positive and finite.
    BadSpeed {
        /// Offending value.
        speed: f64,
    },
    /// A link factor must be finite and non-negative.
    BadFactor {
        /// Offending value.
        factor: f64,
    },
    /// The referenced tier hop does not exist (flat platform, or index
    /// beyond the topology's depth).
    UnknownHop {
        /// Offending hop index.
        hop: usize,
    },
    /// A hop link-time factor must be positive and finite (a zero hop
    /// would make transfers instantaneous and the comm rate infinite).
    BadHopFactor {
        /// Offending value.
        value: f64,
    },
    /// Removing the last live edge unit would leave jobs nowhere to
    /// originate.
    LastEdge,
    /// The edge still originates unfinished jobs (reported by the
    /// session layer, which tracks job state).
    OriginInUse {
        /// Offending edge index.
        edge: usize,
        /// Number of unfinished jobs originating there.
        unfinished: usize,
    },
}

impl PlatformError {
    /// A stable kebab-case identifier for this error class, suitable for
    /// machine consumption (the serve protocol's `reject` records carry
    /// it as their `code` field). Codes are part of the wire contract:
    /// add new ones freely, never repurpose an existing one.
    pub fn code(&self) -> &'static str {
        match self {
            PlatformError::UnknownEdge { .. } => "unknown-edge",
            PlatformError::UnknownCloud { .. } => "unknown-cloud",
            PlatformError::AlreadyRemoved { .. } => "already-removed",
            PlatformError::BadSpeed { .. } => "bad-speed",
            PlatformError::BadFactor { .. } => "bad-factor",
            PlatformError::UnknownHop { .. } => "unknown-hop",
            PlatformError::BadHopFactor { .. } => "bad-hop-factor",
            PlatformError::LastEdge => "last-edge",
            PlatformError::OriginInUse { .. } => "origin-in-use",
        }
    }
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownEdge { edge } => write!(f, "unknown edge unit {edge}"),
            PlatformError::UnknownCloud { cloud } => {
                write!(f, "unknown cloud processor {cloud}")
            }
            PlatformError::AlreadyRemoved { unit } => {
                write!(f, "unit {unit} was already removed")
            }
            PlatformError::BadSpeed { speed } => {
                write!(f, "speed must be positive and finite, got {speed}")
            }
            PlatformError::BadFactor { factor } => {
                write!(f, "link factor must be finite and >= 0, got {factor}")
            }
            PlatformError::UnknownHop { hop } => write!(f, "unknown tier hop {hop}"),
            PlatformError::BadHopFactor { value } => {
                write!(f, "hop factor must be positive and finite, got {value}")
            }
            PlatformError::LastEdge => write!(f, "cannot remove the last live edge unit"),
            PlatformError::OriginInUse { edge, unfinished } => {
                write!(
                    f,
                    "edge unit {edge} still originates {unfinished} unfinished job(s)"
                )
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// One permanent platform mutation, as a value (the typed form behind the
/// [`PlatformState`] methods; useful for logging, replay, and the serve
/// protocol's `platform` records).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlatformMutation {
    /// A new edge unit joins with the given speed (link factor 1).
    AddEdge {
        /// Speed of the joining unit (`s_j`).
        speed: f64,
    },
    /// Edge unit `edge` leaves permanently (tombstoned).
    RemoveEdge {
        /// The leaving unit.
        edge: EdgeId,
    },
    /// A new cloud processor joins with the given speed.
    AddCloud {
        /// Speed of the joining processor.
        speed: f64,
    },
    /// Cloud processor `cloud` leaves permanently (tombstoned).
    RemoveCloud {
        /// The leaving processor.
        cloud: CloudId,
    },
    /// Edge `edge`'s link is re-provisioned to the given base capacity
    /// factor (`1.0` nominal; composed multiplicatively with any fault
    /// window's factor).
    SetLink {
        /// Affected edge.
        edge: EdgeId,
        /// New base capacity factor.
        factor: f64,
    },
    /// Edge `edge` is re-provisioned to a new speed.
    SetEdgeSpeed {
        /// Affected edge.
        edge: EdgeId,
        /// New speed.
        speed: f64,
    },
    /// Cloud `cloud` is re-provisioned to a new speed.
    SetCloudSpeed {
        /// Affected processor.
        cloud: CloudId,
        /// New speed.
        speed: f64,
    },
    /// Tier hop `hop`'s link-time factors are re-provisioned (continuum
    /// platforms only; repriced for every unit behind the hop).
    SetHop {
        /// Affected hop index (`0` connects the edge tier to tier 1).
        hop: usize,
        /// New upload link-time factor.
        up: f64,
        /// New download link-time factor.
        dn: f64,
    },
}

impl PlatformMutation {
    /// Stable kebab-case operation name (used by obs events and the serve
    /// protocol).
    pub fn op(&self) -> &'static str {
        match self {
            PlatformMutation::AddEdge { .. } => "add-edge",
            PlatformMutation::RemoveEdge { .. } => "remove-edge",
            PlatformMutation::AddCloud { .. } => "add-cloud",
            PlatformMutation::RemoveCloud { .. } => "remove-cloud",
            PlatformMutation::SetLink { .. } => "set-link",
            PlatformMutation::SetEdgeSpeed { .. } => "set-edge-speed",
            PlatformMutation::SetCloudSpeed { .. } => "set-cloud-speed",
            PlatformMutation::SetHop { .. } => "set-hop",
        }
    }
}

/// The owned, versioned platform a [`crate::engine::Session`] runs on.
///
/// See the [module docs](self) for the mutation model. The composed
/// availability a unit reports is `live && fault-up`; the composed link
/// factor of an edge is `base · fault` (so a half-capacity provisioned
/// link inside a half-capacity fault window runs at a quarter).
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformState {
    spec: PlatformSpec,
    /// Permanent membership, indexed by [`EdgeId`] / [`CloudId`]. False
    /// means tombstoned: the id stays valid but the unit never comes back.
    edge_live: Vec<bool>,
    cloud_live: Vec<bool>,
    /// Fault overlay (temporary): up flags and link factors replayed from
    /// a compiled fault plan.
    edge_fault_up: Vec<bool>,
    cloud_fault_up: Vec<bool>,
    fault_link: Vec<f64>,
    /// Permanent per-edge link capacity factor ([`PlatformState::set_link`]).
    base_link: Vec<f64>,
    /// Composed availability the engine and the policies read.
    avail: Availability,
    /// Bumped by every committed permanent mutation; starts at 1.
    version: u64,
    /// False until the platform needs an availability overlay at all: a
    /// never-mutated, fault-free platform takes the engine's static fast
    /// path (no overlay attached, no per-step blocking scan).
    dynamic: bool,
}

impl PlatformState {
    /// Wraps a frozen spec: version 1, everything live and up, nominal
    /// links, static (fast-path) until the first mutation or fault.
    pub fn new(spec: PlatformSpec) -> Self {
        let ne = spec.num_edge();
        let nc = spec.num_cloud();
        PlatformState {
            spec,
            edge_live: vec![true; ne],
            cloud_live: vec![true; nc],
            edge_fault_up: vec![true; ne],
            cloud_fault_up: vec![true; nc],
            fault_link: vec![1.0; ne],
            base_link: vec![1.0; ne],
            avail: Availability::all_up(ne, nc),
            version: 1,
            dynamic: false,
        }
    }

    /// The platform spec as of the current version. Tombstoned units keep
    /// their last speed (see the module docs on identity).
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Current platform version: 1 at construction, +1 per committed
    /// permanent mutation. Fault replay does not version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True once the platform needs an availability overlay (a fault plan
    /// is attached or a mutation happened). While false, the engine takes
    /// the exact static-platform fast path.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// Marks the platform dynamic without changing anything else (the
    /// session does this when a fault plan is attached).
    pub fn mark_dynamic(&mut self) {
        self.dynamic = true;
    }

    /// The composed availability overlay, `None` on the static fast path.
    pub fn overlay(&self) -> Option<&Availability> {
        self.dynamic.then_some(&self.avail)
    }

    /// The composed availability, regardless of dynamism.
    pub fn availability(&self) -> &Availability {
        &self.avail
    }

    /// True when edge `j` is a live (non-tombstoned) member.
    pub fn edge_live(&self, j: EdgeId) -> bool {
        self.edge_live.get(j.0).copied().unwrap_or(false)
    }

    /// True when cloud `k` is a live (non-tombstoned) member.
    pub fn cloud_live(&self, k: CloudId) -> bool {
        self.cloud_live.get(k.0).copied().unwrap_or(false)
    }

    /// Number of live edge units.
    pub fn num_edges_live(&self) -> usize {
        self.edge_live.iter().filter(|&&b| b).count()
    }

    /// Number of live cloud processors.
    pub fn num_clouds_live(&self) -> usize {
        self.cloud_live.iter().filter(|&&b| b).count()
    }

    /// Checks the per-version invariants: a valid spec, consistent
    /// per-unit table sizes, at least one live edge, and finite
    /// non-negative link factors. Run after every committed mutation
    /// (every version is born validated).
    pub fn validate(&self) -> Result<(), SpecError> {
        self.spec.validate()?;
        let ne = self.spec.num_edge();
        let nc = self.spec.num_cloud();
        let sized = self.edge_live.len() == ne
            && self.edge_fault_up.len() == ne
            && self.fault_link.len() == ne
            && self.base_link.len() == ne
            && self.avail.edge_up.len() == ne
            && self.avail.link_factor.len() == ne
            && self.cloud_live.len() == nc
            && self.cloud_fault_up.len() == nc
            && self.avail.cloud_up.len() == nc;
        if !sized {
            return Err(SpecError::WindowOutOfRange { cloud: nc });
        }
        if !self.edge_live.iter().any(|&b| b) {
            return Err(SpecError::NoEdgeUnit);
        }
        for (j, &f) in self.base_link.iter().enumerate() {
            if !(f.is_finite() && f >= 0.0) {
                return Err(SpecError::BadSpeed {
                    which: format!("edge {j} link"),
                    speed: f,
                });
            }
        }
        Ok(())
    }

    /// Applies one permanent mutation by value (the method forms below
    /// are equivalent); returns the new version.
    pub fn apply(&mut self, m: PlatformMutation) -> Result<u64, PlatformError> {
        match m {
            PlatformMutation::AddEdge { speed } => self.add_edge(speed).map(|_| self.version),
            PlatformMutation::RemoveEdge { edge } => self.remove_edge(edge),
            PlatformMutation::AddCloud { speed } => self.add_cloud(speed).map(|_| self.version),
            PlatformMutation::RemoveCloud { cloud } => self.remove_cloud(cloud),
            PlatformMutation::SetLink { edge, factor } => self.set_link(edge, factor),
            PlatformMutation::SetEdgeSpeed { edge, speed } => self.set_edge_speed(edge, speed),
            PlatformMutation::SetCloudSpeed { cloud, speed } => self.set_cloud_speed(cloud, speed),
            PlatformMutation::SetHop { hop, up, dn } => self.set_hop(hop, up, dn),
        }
    }

    /// A new edge unit joins (speed `s_j`, nominal link). Returns its id.
    pub fn add_edge(&mut self, speed: f64) -> Result<EdgeId, PlatformError> {
        check_speed(speed)?;
        let id = self.spec.push_edge(speed);
        self.edge_live.push(true);
        self.edge_fault_up.push(true);
        self.fault_link.push(1.0);
        self.base_link.push(1.0);
        self.avail.edge_up.push(true);
        self.avail.link_factor.push(1.0);
        self.commit();
        Ok(id)
    }

    /// Edge `j` leaves permanently. Its id stays valid (tombstone); the
    /// unit reports unavailable forever after. Returns the new version.
    pub fn remove_edge(&mut self, j: EdgeId) -> Result<u64, PlatformError> {
        self.check_edge(j)?;
        if self.num_edges_live() == 1 {
            return Err(PlatformError::LastEdge);
        }
        self.edge_live[j.0] = false;
        self.recompute_edge(j);
        self.commit();
        Ok(self.version)
    }

    /// A new cloud processor joins. Returns its id.
    pub fn add_cloud(&mut self, speed: f64) -> Result<CloudId, PlatformError> {
        check_speed(speed)?;
        let id = self.spec.push_cloud(speed);
        self.cloud_live.push(true);
        self.cloud_fault_up.push(true);
        self.avail.cloud_up.push(true);
        self.refresh_max_cloud_speed();
        self.refresh_tier_classes();
        self.commit();
        Ok(id)
    }

    /// Cloud `k` leaves permanently (tombstone). Returns the new version.
    pub fn remove_cloud(&mut self, k: CloudId) -> Result<u64, PlatformError> {
        self.check_cloud(k)?;
        self.cloud_live[k.0] = false;
        self.recompute_cloud(k);
        self.refresh_max_cloud_speed();
        self.refresh_tier_classes();
        self.commit();
        Ok(self.version)
    }

    /// Re-provisions edge `j`'s link to base capacity `factor` (composed
    /// multiplicatively with fault windows). Returns the new version.
    pub fn set_link(&mut self, j: EdgeId, factor: f64) -> Result<u64, PlatformError> {
        self.check_edge(j)?;
        if !(factor.is_finite() && factor >= 0.0) {
            return Err(PlatformError::BadFactor { factor });
        }
        self.base_link[j.0] = factor;
        self.recompute_edge(j);
        self.commit();
        Ok(self.version)
    }

    /// Re-provisions edge `j` to a new speed. Returns the new version.
    pub fn set_edge_speed(&mut self, j: EdgeId, speed: f64) -> Result<u64, PlatformError> {
        self.check_edge(j)?;
        check_speed(speed)?;
        self.spec.set_edge_speed(j, speed);
        self.commit();
        Ok(self.version)
    }

    /// Re-provisions cloud `k` to a new speed. Returns the new version.
    pub fn set_cloud_speed(&mut self, k: CloudId, speed: f64) -> Result<u64, PlatformError> {
        self.check_cloud(k)?;
        check_speed(speed)?;
        self.spec.set_cloud_speed(k, speed);
        self.refresh_max_cloud_speed();
        self.refresh_tier_classes();
        self.commit();
        Ok(self.version)
    }

    /// Re-provisions tier hop `hop`'s link-time factors (continuum
    /// platforms only): every unit behind the hop is repriced, both in
    /// the engine's comm rates and in the stretch-denominator pricing
    /// classes. Returns the new version.
    pub fn set_hop(&mut self, hop: usize, up: f64, dn: f64) -> Result<u64, PlatformError> {
        let depth = match self.spec.tier_topology() {
            Some(t) => t.depth(),
            None => return Err(PlatformError::UnknownHop { hop }),
        };
        if hop >= depth {
            return Err(PlatformError::UnknownHop { hop });
        }
        for v in [up, dn] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(PlatformError::BadHopFactor { value: v });
            }
        }
        self.spec.set_hop(hop, up, dn);
        self.refresh_tier_classes();
        self.commit();
        Ok(self.version)
    }

    // ---- temporary (fault-replay) mutations: overlay only, no version ----

    /// Fault replay: edge `j` crashes. A no-op for units the plan covers
    /// but that have not joined (yet): plans may be compiled for a shape
    /// the platform only grows into.
    pub fn fault_edge_down(&mut self, j: EdgeId) {
        if j.0 >= self.spec.num_edge() {
            return;
        }
        self.edge_fault_up[j.0] = false;
        self.recompute_edge(j);
    }

    /// Fault replay: edge `j` recovers (no-op for units not joined yet).
    pub fn fault_edge_up(&mut self, j: EdgeId) {
        if j.0 >= self.spec.num_edge() {
            return;
        }
        self.edge_fault_up[j.0] = true;
        self.recompute_edge(j);
    }

    /// Fault replay: cloud `k` crashes (no-op for units not joined yet).
    pub fn fault_cloud_down(&mut self, k: CloudId) {
        if k.0 >= self.spec.num_cloud() {
            return;
        }
        self.cloud_fault_up[k.0] = false;
        self.recompute_cloud(k);
    }

    /// Fault replay: cloud `k` recovers (no-op for units not joined yet).
    pub fn fault_cloud_up(&mut self, k: CloudId) {
        if k.0 >= self.spec.num_cloud() {
            return;
        }
        self.cloud_fault_up[k.0] = true;
        self.recompute_cloud(k);
    }

    /// Fault replay: edge `j`'s link window factor becomes `f`. Returns
    /// true when the factor actually changed (the engine demotes the
    /// event's epoch bump otherwise); false for units not joined yet.
    pub fn fault_set_link(&mut self, j: EdgeId, f: f64) -> bool {
        if j.0 >= self.spec.num_edge() || self.fault_link[j.0] == f {
            return false;
        }
        self.fault_link[j.0] = f;
        self.recompute_edge(j);
        true
    }

    fn check_edge(&self, j: EdgeId) -> Result<(), PlatformError> {
        if j.0 >= self.spec.num_edge() {
            return Err(PlatformError::UnknownEdge { edge: j.0 });
        }
        if !self.edge_live[j.0] {
            return Err(PlatformError::AlreadyRemoved {
                unit: j.to_string(),
            });
        }
        Ok(())
    }

    fn check_cloud(&self, k: CloudId) -> Result<(), PlatformError> {
        if k.0 >= self.spec.num_cloud() {
            return Err(PlatformError::UnknownCloud { cloud: k.0 });
        }
        if !self.cloud_live[k.0] {
            return Err(PlatformError::AlreadyRemoved {
                unit: k.to_string(),
            });
        }
        Ok(())
    }

    fn recompute_edge(&mut self, j: EdgeId) {
        self.avail.edge_up[j.0] = self.edge_live[j.0] && self.edge_fault_up[j.0];
        self.avail.link_factor[j.0] = self.base_link[j.0] * self.fault_link[j.0];
    }

    fn recompute_cloud(&mut self, k: CloudId) {
        self.avail.cloud_up[k.0] = self.cloud_live[k.0] && self.cloud_fault_up[k.0];
    }

    /// Keeps the spec's cached fastest-cloud speed equal to the fastest
    /// *live* cloud: `Job::min_time` (the stretch denominator) must not
    /// count processors that have permanently left.
    fn refresh_max_cloud_speed(&mut self) {
        let m = self
            .spec
            .clouds()
            .filter(|k| self.cloud_live[k.0])
            .map(|k| self.spec.cloud_speed(k))
            .fold(0.0_f64, f64::max);
        self.spec.set_max_cloud_speed(m);
    }

    /// Keeps the tier pricing classes in sync with live membership (the
    /// continuum analogue of [`PlatformState::refresh_max_cloud_speed`];
    /// a no-op on flat platforms).
    fn refresh_tier_classes(&mut self) {
        self.spec.refresh_tier_classes(&self.cloud_live);
    }

    /// Seals a permanent mutation: versions it, leaves the static fast
    /// path, and (cheaply — mutations are rare) verifies the new
    /// version's invariants.
    fn commit(&mut self) {
        self.version += 1;
        self.dynamic = true;
        debug_assert!(
            self.validate().is_ok(),
            "mutation committed an invalid platform"
        );
    }
}

fn check_speed(speed: f64) -> Result<(), PlatformError> {
    if speed > 0.0 && speed.is_finite() {
        Ok(())
    } else {
        Err(PlatformError::BadSpeed { speed })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PlatformState {
        PlatformState::new(
            PlatformSpec::builder()
                .edges(vec![0.5, 0.25])
                .cloud_pool(2)
                .build(),
        )
    }

    #[test]
    fn static_until_first_mutation() {
        let mut p = base();
        assert_eq!(p.version(), 1);
        assert!(!p.is_dynamic());
        assert!(p.overlay().is_none());
        p.add_cloud(1.0).unwrap();
        assert_eq!(p.version(), 2);
        assert!(p.is_dynamic());
        assert!(p.overlay().is_some());
    }

    #[test]
    fn add_units_grow_every_table() {
        let mut p = base();
        let j = p.add_edge(0.75).unwrap();
        let k = p.add_cloud(2.0).unwrap();
        assert_eq!(j, EdgeId(2));
        assert_eq!(k, CloudId(2));
        assert_eq!(p.spec().num_edge(), 3);
        assert_eq!(p.spec().num_cloud(), 3);
        assert_eq!(p.spec().edge_speed(j), 0.75);
        assert_eq!(p.spec().cloud_speed(k), 2.0);
        assert_eq!(p.spec().max_cloud_speed(), 2.0);
        assert!(p.availability().edge_up[2]);
        assert!(p.availability().cloud_up[2]);
        assert_eq!(p.version(), 3);
        p.validate().unwrap();
    }

    #[test]
    fn tombstones_are_permanent_and_typed() {
        let mut p = base();
        p.remove_edge(EdgeId(1)).unwrap();
        assert!(!p.edge_live(EdgeId(1)));
        assert!(!p.availability().edge_up[1]);
        // Ids never shift: edge 0 is untouched.
        assert!(p.availability().edge_up[0]);
        assert_eq!(
            p.remove_edge(EdgeId(1)),
            Err(PlatformError::AlreadyRemoved { unit: "e1".into() })
        );
        assert_eq!(
            p.set_edge_speed(EdgeId(1), 1.0),
            Err(PlatformError::AlreadyRemoved { unit: "e1".into() })
        );
        assert_eq!(
            p.remove_edge(EdgeId(7)),
            Err(PlatformError::UnknownEdge { edge: 7 })
        );
        // The last live edge cannot leave.
        assert_eq!(p.remove_edge(EdgeId(0)), Err(PlatformError::LastEdge));
        // A fault recovery cannot resurrect a tombstone.
        p.fault_edge_up(EdgeId(1));
        assert!(!p.availability().edge_up[1]);
        p.validate().unwrap();
    }

    #[test]
    fn rejected_mutations_do_not_version() {
        let mut p = base();
        assert_eq!(
            p.add_edge(-1.0),
            Err(PlatformError::BadSpeed { speed: -1.0 })
        );
        assert!(matches!(
            p.add_cloud(f64::NAN).unwrap_err(),
            PlatformError::BadSpeed { .. }
        ));
        assert_eq!(
            p.set_link(EdgeId(0), -0.5),
            Err(PlatformError::BadFactor { factor: -0.5 })
        );
        assert_eq!(
            p.remove_cloud(CloudId(9)),
            Err(PlatformError::UnknownCloud { cloud: 9 })
        );
        assert_eq!(p.version(), 1);
        assert!(!p.is_dynamic());
    }

    #[test]
    fn link_composes_base_and_fault() {
        let mut p = base();
        p.set_link(EdgeId(0), 0.5).unwrap();
        assert_eq!(p.availability().link_factor[0], 0.5);
        assert!(p.fault_set_link(EdgeId(0), 0.5));
        assert_eq!(p.availability().link_factor[0], 0.25);
        // Unchanged fault factor reports no change.
        assert!(!p.fault_set_link(EdgeId(0), 0.5));
        assert!(p.fault_set_link(EdgeId(0), 1.0));
        assert_eq!(p.availability().link_factor[0], 0.5);
    }

    #[test]
    fn fault_overlay_composes_with_liveness() {
        let mut p = base();
        p.fault_edge_down(EdgeId(0));
        // Fault replay marks nothing dynamic by itself (the session does,
        // once, when attaching a plan) and never versions.
        assert_eq!(p.version(), 1);
        p.mark_dynamic();
        assert!(!p.availability().edge_up[0]);
        p.fault_edge_up(EdgeId(0));
        assert!(p.availability().edge_up[0]);
        p.fault_cloud_down(CloudId(1));
        assert!(!p.availability().cloud_up[1]);
        p.fault_cloud_up(CloudId(1));
        assert!(p.availability().cloud_up[1]);
        // Remove while fault-up: composed availability goes down.
        p.remove_cloud(CloudId(1)).unwrap();
        assert!(!p.availability().cloud_up[1]);
        assert_eq!(p.num_clouds_live(), 1);
    }

    #[test]
    fn apply_matches_method_forms() {
        let mut a = base();
        let mut b = base();
        let muts = [
            PlatformMutation::AddEdge { speed: 0.75 },
            PlatformMutation::AddCloud { speed: 2.0 },
            PlatformMutation::SetLink {
                edge: EdgeId(0),
                factor: 0.5,
            },
            PlatformMutation::SetEdgeSpeed {
                edge: EdgeId(1),
                speed: 0.9,
            },
            PlatformMutation::SetCloudSpeed {
                cloud: CloudId(0),
                speed: 1.5,
            },
            PlatformMutation::RemoveEdge { edge: EdgeId(1) },
            PlatformMutation::RemoveCloud { cloud: CloudId(1) },
        ];
        for m in muts {
            a.apply(m).unwrap();
        }
        b.add_edge(0.75).unwrap();
        b.add_cloud(2.0).unwrap();
        b.set_link(EdgeId(0), 0.5).unwrap();
        b.set_edge_speed(EdgeId(1), 0.9).unwrap();
        b.set_cloud_speed(CloudId(0), 1.5).unwrap();
        b.remove_edge(EdgeId(1)).unwrap();
        b.remove_cloud(CloudId(1)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.version(), 8);
    }

    #[test]
    fn set_hop_reprices_the_subtree_behind_it() {
        let mut p = PlatformState::new(
            PlatformSpec::builder()
                .edges(vec![1.0])
                .tier(1.0, 1.0)
                .cloud(1.0)
                .tier(2.0, 3.0)
                .cloud(1.0)
                .build(),
        );
        // Paths sum the hop factors along the route: 1 + 2 up, 1 + 3 dn.
        assert_eq!(p.spec().path_up(CloudId(1)), 3.0);
        assert_eq!(p.spec().path_dn(CloudId(1)), 4.0);
        let v = p.set_hop(1, 4.0, 0.5).unwrap();
        assert_eq!(v, 2);
        assert!(p.is_dynamic());
        // The deep cloud is repriced; the tier-1 cloud is untouched.
        assert_eq!(p.spec().path_up(CloudId(1)), 5.0);
        assert_eq!(p.spec().path_dn(CloudId(1)), 1.5);
        assert_eq!(p.spec().path_up(CloudId(0)), 1.0);
        // The pricing classes follow the retune (two distinct classes).
        let t = p.spec().tier_topology().unwrap();
        assert_eq!(t.classes().len(), 2);
        p.validate().unwrap();
    }

    #[test]
    fn set_hop_rejects_bad_inputs_without_versioning() {
        let mut p = PlatformState::new(
            PlatformSpec::builder()
                .edges(vec![1.0])
                .tier(1.5, 1.5)
                .cloud_pool(2)
                .build(),
        );
        assert_eq!(
            p.set_hop(1, 1.0, 1.0),
            Err(PlatformError::UnknownHop { hop: 1 })
        );
        assert_eq!(
            p.set_hop(0, 0.0, 1.0),
            Err(PlatformError::BadHopFactor { value: 0.0 })
        );
        assert_eq!(
            p.set_hop(0, 1.0, f64::INFINITY),
            Err(PlatformError::BadHopFactor {
                value: f64::INFINITY
            })
        );
        assert_eq!(p.version(), 1);
        assert!(!p.is_dynamic());
        // A flat platform has no hops at all.
        let mut flat = base();
        assert_eq!(
            flat.set_hop(0, 1.0, 1.0),
            Err(PlatformError::UnknownHop { hop: 0 })
        );
    }

    #[test]
    fn set_hop_apply_matches_method_form() {
        let tiered = || {
            PlatformState::new(
                PlatformSpec::builder()
                    .edges(vec![1.0])
                    .tier(1.0, 1.0)
                    .cloud_pool(1)
                    .build(),
            )
        };
        let mut a = tiered();
        let mut b = tiered();
        a.apply(PlatformMutation::SetHop {
            hop: 0,
            up: 2.5,
            dn: 1.25,
        })
        .unwrap();
        b.set_hop(0, 2.5, 1.25).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            PlatformMutation::SetHop {
                hop: 0,
                up: 2.5,
                dn: 1.25
            }
            .op(),
            "set-hop"
        );
    }

    #[test]
    fn mutation_op_names_are_stable() {
        assert_eq!(PlatformMutation::AddEdge { speed: 1.0 }.op(), "add-edge");
        assert_eq!(
            PlatformMutation::RemoveCloud { cloud: CloudId(0) }.op(),
            "remove-cloud"
        );
        assert_eq!(
            PlatformMutation::SetLink {
                edge: EdgeId(0),
                factor: 1.0
            }
            .op(),
            "set-link"
        );
    }
}
