//! Struct-of-arrays storage for per-job dynamic state.
//!
//! The engine's hot loops — the decide-time pending scan, the grant walk,
//! and the progress-accrual sweep — each touch one or two fields of *many*
//! jobs, not many fields of one job. [`JobArena`] therefore stores each
//! [`JobState`] field in its own dense [`Vec`] indexed by raw
//! [`JobId`](crate::JobId) value, so a sweep over `running` or `finished`
//! walks contiguous memory instead of striding over 80-byte structs.
//!
//! The arena also caches the *stretch denominator* `min(tᵉᵢ, tᶜᵢ)` of
//! every job ([`JobArena::min_time`]), an `O(num_clouds)` fold over cloud
//! speeds that the stretch/deadline helpers would otherwise recompute on
//! every query. The cache is keyed to the platform spec the owning engine
//! currently reports: the engine recomputes it whenever a committed
//! platform mutation changes speeds or membership
//! ([`JobArena::recompute_min_times`]), so reads are always coherent with
//! [`SimView::spec`](crate::SimView::spec) — and bit-identical to an
//! uncached recomputation, since the cached value is produced by the very
//! same fold.
//!
//! [`JobState`] remains the one-job AoS snapshot type (tests, traces, and
//! tools keep building and matching on plain structs); [`JobArena`]
//! converts losslessly in both directions.

use super::JobState;
use crate::activity::{Phase, Target};
use crate::instance::Instance;
use crate::job::Job;
use crate::spec::PlatformSpec;
use mmsec_sim::time::approx;
use mmsec_sim::Time;

/// Dense struct-of-arrays job state, indexed by raw job id.
///
/// Every column has the same length; [`JobArena::push`] grows them in
/// lock-step. Columns are public for direct indexed access on hot paths
/// (mirroring the public fields of [`JobState`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobArena {
    /// The job has been released (`now ≥ r_i`).
    pub released: Vec<bool>,
    /// The job has fully completed (result delivered at the origin).
    pub finished: Vec<bool>,
    /// Completion time `C_i`, once finished.
    pub completion: Vec<Option<Time>>,
    /// Resource the job is committed to (None before any placement).
    pub committed: Vec<Option<Target>>,
    /// Uplink time already transferred (time units).
    pub up_done: Vec<f64>,
    /// Work already computed (work units).
    pub work_done: Vec<f64>,
    /// Downlink time already transferred (time units).
    pub dn_done: Vec<f64>,
    /// Phase currently running, if the job holds resources right now.
    pub running: Vec<Option<Phase>>,
    /// Number of re-executions from scratch this job has suffered.
    pub restarts: Vec<u32>,
    /// Cached stretch denominator `min(tᵉᵢ, tᶜᵢ)` under the spec the
    /// owning engine currently reports (see the module docs).
    pub min_time: Vec<f64>,
}

impl JobArena {
    /// An empty arena.
    pub fn new() -> Self {
        JobArena::default()
    }

    /// Fresh (default) state for every job of `instance`, with the
    /// min-time cache computed under `spec`.
    pub fn fresh(instance: &Instance, spec: &PlatformSpec) -> Self {
        let mut arena = JobArena::new();
        for (_, job) in instance.iter_jobs() {
            arena.push(JobState::default(), job.min_time(spec));
        }
        arena
    }

    /// Builds an arena from per-job snapshot structs, computing the
    /// min-time cache from the instance's frozen spec — the convenience
    /// constructor for ad-hoc views in tests and tools.
    pub fn from_states(instance: &Instance, states: &[JobState]) -> Self {
        assert_eq!(states.len(), instance.num_jobs(), "one state per job");
        let mut arena = JobArena::new();
        for (st, (_, job)) in states.iter().zip(instance.iter_jobs()) {
            arena.push(st.clone(), job.min_time(&instance.spec));
        }
        arena
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.released.len()
    }

    /// True when the arena holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.released.is_empty()
    }

    /// Appends one job's state (all columns in lock-step); `min_time` is
    /// its stretch denominator under the current spec.
    pub fn push(&mut self, st: JobState, min_time: f64) {
        self.released.push(st.released);
        self.finished.push(st.finished);
        self.completion.push(st.completion);
        self.committed.push(st.committed);
        self.up_done.push(st.up_done);
        self.work_done.push(st.work_done);
        self.dn_done.push(st.dn_done);
        self.running.push(st.running);
        self.restarts.push(st.restarts);
        self.min_time.push(min_time);
    }

    /// One job's state gathered back into the AoS snapshot struct.
    pub fn snapshot(&self, i: usize) -> JobState {
        JobState {
            released: self.released[i],
            finished: self.finished[i],
            completion: self.completion[i],
            committed: self.committed[i],
            up_done: self.up_done[i],
            work_done: self.work_done[i],
            dn_done: self.dn_done[i],
            running: self.running[i],
            restarts: self.restarts[i],
        }
    }

    /// Recomputes the min-time cache for every job under `spec`. Called by
    /// the engine after each committed platform mutation (speed changes
    /// and unit membership both move the denominators).
    pub fn recompute_min_times(&mut self, instance: &Instance, spec: &PlatformSpec) {
        for (id, job) in instance.iter_jobs() {
            self.min_time[id.0] = job.min_time(spec);
        }
    }

    /// True when job `i` has been released but not finished.
    #[inline]
    pub fn active(&self, i: usize) -> bool {
        self.released[i] && !self.finished[i]
    }

    /// Wipes job `i`'s progress (re-execution from scratch).
    pub fn reset_progress(&mut self, i: usize) {
        self.up_done[i] = 0.0;
        self.work_done[i] = 0.0;
        self.dn_done[i] = 0.0;
        self.restarts[i] += 1;
    }

    /// Remaining uplink time for job `i` if continuing on a cloud target.
    #[inline]
    pub fn remaining_up(&self, i: usize, job: &Job) -> f64 {
        (job.up - self.up_done[i]).max(0.0)
    }

    /// Remaining work (in work units) for job `i`.
    #[inline]
    pub fn remaining_work(&self, i: usize, job: &Job) -> f64 {
        (job.work - self.work_done[i]).max(0.0)
    }

    /// Remaining downlink time for job `i`.
    #[inline]
    pub fn remaining_dn(&self, i: usize, job: &Job) -> f64 {
        (job.dn - self.dn_done[i]).max(0.0)
    }

    /// The phase job `i` would run next if (re)activated on `target` (see
    /// [`JobState::current_phase`] for the progress-validity caveat).
    #[inline]
    pub fn current_phase(&self, i: usize, job: &Job, target: Target) -> Option<Phase> {
        match target {
            Target::Edge => {
                if approx::positive(self.remaining_work(i, job)) {
                    Some(Phase::Compute)
                } else {
                    None
                }
            }
            Target::Cloud(_) => {
                if approx::positive(self.remaining_up(i, job)) {
                    Some(Phase::Uplink)
                } else if approx::positive(self.remaining_work(i, job)) {
                    Some(Phase::Compute)
                } else if approx::positive(self.remaining_dn(i, job)) {
                    Some(Phase::Downlink)
                } else {
                    None
                }
            }
        }
    }

    /// Contention-free remaining duration if job `i` continues on `target`
    /// (same-commitment progress).
    #[inline]
    pub fn remaining_time_on(
        &self,
        i: usize,
        job: &Job,
        target: Target,
        spec: &PlatformSpec,
    ) -> f64 {
        match target {
            Target::Edge => self.remaining_work(i, job) / spec.edge_speed(job.origin),
            Target::Cloud(k) => {
                self.remaining_up(i, job) * spec.path_up(k)
                    + self.remaining_work(i, job) / spec.cloud_speed(k)
                    + self.remaining_dn(i, job) * spec.path_dn(k)
            }
        }
    }

    /// Contention-free remaining duration of job `i` on `target`,
    /// accounting for a from-scratch reset when `target` differs from the
    /// committed one.
    #[inline]
    pub fn duration_if_placed(
        &self,
        i: usize,
        job: &Job,
        target: Target,
        spec: &PlatformSpec,
    ) -> f64 {
        match self.committed[i] {
            Some(t) if t == target => self.remaining_time_on(i, job, target, spec),
            _ => JobState::fresh_time_on(job, target, spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::spec::{CloudId, EdgeId};

    fn fixture() -> Instance {
        let spec = PlatformSpec::builder()
            .edges(vec![0.5])
            .cloud_pool(2)
            .build();
        let job = Job::new(EdgeId(0), 1.0, 4.0, 2.0, 1.0);
        Instance::new(spec, vec![job]).unwrap()
    }

    #[test]
    fn round_trips_job_state() {
        let inst = fixture();
        let st = JobState {
            released: true,
            up_done: 1.5,
            committed: Some(Target::Cloud(CloudId(0))),
            restarts: 2,
            ..JobState::default()
        };
        let arena = JobArena::from_states(&inst, std::slice::from_ref(&st));
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.snapshot(0), st);
        // min_time = min(4/0.5, 2+4+1) = 7 under the frozen spec.
        assert!((arena.min_time[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn columns_grow_in_lock_step_and_agree_with_job_state() {
        let inst = fixture();
        let job = inst.job(JobId(0));
        let mut arena = JobArena::fresh(&inst, &inst.spec);
        assert!(!arena.active(0));
        arena.released[0] = true;
        assert!(arena.active(0));
        arena.up_done[0] = 2.0;
        let tgt = Target::Cloud(CloudId(0));
        assert_eq!(arena.current_phase(0, job, tgt), Some(Phase::Compute));
        assert_eq!(
            arena.current_phase(0, job, tgt),
            arena.snapshot(0).current_phase(job, tgt)
        );
        assert_eq!(
            arena.remaining_time_on(0, job, tgt, &inst.spec),
            arena.snapshot(0).remaining_time_on(job, tgt, &inst.spec)
        );
        arena.committed[0] = Some(tgt);
        assert_eq!(
            arena.duration_if_placed(0, job, Target::Edge, &inst.spec),
            arena
                .snapshot(0)
                .duration_if_placed(job, Target::Edge, &inst.spec)
        );
        arena.reset_progress(0);
        assert_eq!(arena.up_done[0], 0.0);
        assert_eq!(arena.restarts[0], 1);
    }

    #[test]
    fn recompute_min_times_tracks_the_spec() {
        let inst = fixture();
        let mut arena = JobArena::fresh(&inst, &inst.spec);
        assert!((arena.min_time[0] - 7.0).abs() < 1e-12);
        // A faster platform shrinks the denominator.
        let faster = PlatformSpec::builder()
            .edges(vec![1.0])
            .cloud_pool(2)
            .build();
        arena.recompute_min_times(&inst, &faster);
        assert!((arena.min_time[0] - 4.0).abs() < 1e-12);
    }
}
