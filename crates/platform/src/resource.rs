//! Resources of the one-port full-duplex communication model (§III-A).
//!
//! Six resource families:
//! * `EdgeCpu(j)` — the computing unit of edge `j`;
//! * `CloudCpu(k)` — cloud processor `k`;
//! * `EdgeOut(j)` / `EdgeIn(j)` — send / receive port of edge `j`
//!   (full-duplex: distinct resources, so a send and a receive may overlap);
//! * `CloudIn(k)` / `CloudOut(k)` — receive / send port of cloud `k`.
//!
//! An uplink of job `i` to cloud `k` occupies `{EdgeOut(o_i), CloudIn(k)}`;
//! the downlink occupies `{CloudOut(k), EdgeIn(o_i)}`. One-port: each port
//! carries at most one message at a time; messages are preemptible.

use crate::spec::{CloudId, EdgeId, PlatformSpec};
use std::fmt;
use std::ops::{Index, IndexMut};

/// One exclusive resource of the platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceId {
    /// Computing unit of an edge.
    EdgeCpu(EdgeId),
    /// A cloud processor.
    CloudCpu(CloudId),
    /// Send (uplink) port of an edge unit.
    EdgeOut(EdgeId),
    /// Receive (downlink) port of an edge unit.
    EdgeIn(EdgeId),
    /// Receive (uplink) port of a cloud processor.
    CloudIn(CloudId),
    /// Send (downlink) port of a cloud processor.
    CloudOut(CloudId),
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::EdgeCpu(j) => write!(f, "cpu({j})"),
            ResourceId::CloudCpu(k) => write!(f, "cpu({k})"),
            ResourceId::EdgeOut(j) => write!(f, "out({j})"),
            ResourceId::EdgeIn(j) => write!(f, "in({j})"),
            ResourceId::CloudIn(k) => write!(f, "in({k})"),
            ResourceId::CloudOut(k) => write!(f, "out({k})"),
        }
    }
}

/// Dense indexing of all resources of a platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceIndex {
    num_edge: usize,
    num_cloud: usize,
}

impl ResourceIndex {
    /// Builds the index for a platform.
    pub fn new(spec: &PlatformSpec) -> Self {
        ResourceIndex {
            num_edge: spec.num_edge(),
            num_cloud: spec.num_cloud(),
        }
    }

    /// Total number of resources: `3·P^e + 3·P^c`.
    pub fn count(&self) -> usize {
        3 * self.num_edge + 3 * self.num_cloud
    }

    /// Dense index of a resource. Layout: edge CPUs, cloud CPUs, edge out,
    /// edge in, cloud in, cloud out.
    pub fn index(&self, r: ResourceId) -> usize {
        let (e, c) = (self.num_edge, self.num_cloud);
        match r {
            ResourceId::EdgeCpu(EdgeId(j)) => {
                debug_assert!(j < e);
                j
            }
            ResourceId::CloudCpu(CloudId(k)) => {
                debug_assert!(k < c);
                e + k
            }
            ResourceId::EdgeOut(EdgeId(j)) => e + c + j,
            ResourceId::EdgeIn(EdgeId(j)) => e + c + e + j,
            ResourceId::CloudIn(CloudId(k)) => e + c + 2 * e + k,
            ResourceId::CloudOut(CloudId(k)) => e + c + 2 * e + c + k,
        }
    }

    /// Inverse of [`ResourceIndex::index`].
    pub fn resource(&self, mut i: usize) -> ResourceId {
        let (e, c) = (self.num_edge, self.num_cloud);
        if i < e {
            return ResourceId::EdgeCpu(EdgeId(i));
        }
        i -= e;
        if i < c {
            return ResourceId::CloudCpu(CloudId(i));
        }
        i -= c;
        if i < e {
            return ResourceId::EdgeOut(EdgeId(i));
        }
        i -= e;
        if i < e {
            return ResourceId::EdgeIn(EdgeId(i));
        }
        i -= e;
        if i < c {
            return ResourceId::CloudIn(CloudId(i));
        }
        i -= c;
        debug_assert!(i < c, "resource index out of range");
        ResourceId::CloudOut(CloudId(i))
    }

    /// Iterator over every resource.
    pub fn all(&self) -> impl Iterator<Item = ResourceId> + '_ {
        (0..self.count()).map(move |i| self.resource(i))
    }
}

/// A dense map from resources to values of type `T`.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceMap<T> {
    index: ResourceIndex,
    data: Vec<T>,
}

impl<T: Clone> ResourceMap<T> {
    /// Creates a map with every resource bound to `init`.
    pub fn new(spec: &PlatformSpec, init: T) -> Self {
        let index = ResourceIndex::new(spec);
        ResourceMap {
            index,
            data: vec![init; index.count()],
        }
    }

    /// Resets every entry to `value`.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }

    /// Re-keys the map to `spec` and resets every entry to `value`,
    /// reusing the existing storage (a platform mutation resizes the
    /// resource space; the backing vector only grows when the new spec
    /// needs more slots than any seen before).
    pub fn reset_for(&mut self, spec: &PlatformSpec, value: T) {
        self.index = ResourceIndex::new(spec);
        self.data.clear();
        self.data.resize(self.index.count(), value);
    }
}

impl<T> ResourceMap<T> {
    /// The underlying index.
    pub fn index_scheme(&self) -> ResourceIndex {
        self.index
    }

    /// Iterates over `(resource, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ResourceId, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(|(i, v)| (self.index.resource(i), v))
    }
}

impl<T> Index<ResourceId> for ResourceMap<T> {
    type Output = T;
    fn index(&self, r: ResourceId) -> &T {
        &self.data[self.index.index(r)]
    }
}

impl<T> IndexMut<ResourceId> for ResourceMap<T> {
    fn index_mut(&mut self, r: ResourceId) -> &mut T {
        &mut self.data[self.index.index(r)]
    }
}

/// The (at most two) resources an activity occupies simultaneously.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourcePair {
    /// Main resource (CPU for computations, sender port for messages).
    pub primary: ResourceId,
    /// Second resource for communications (the receiving port).
    pub secondary: Option<ResourceId>,
}

impl ResourcePair {
    /// A single-resource activity (computation).
    pub fn single(r: ResourceId) -> Self {
        ResourcePair {
            primary: r,
            secondary: None,
        }
    }

    /// A two-resource activity (communication).
    pub fn pair(a: ResourceId, b: ResourceId) -> Self {
        ResourcePair {
            primary: a,
            secondary: Some(b),
        }
    }

    /// Iterates over the occupied resources.
    pub fn iter(&self) -> impl Iterator<Item = ResourceId> {
        std::iter::once(self.primary).chain(self.secondary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PlatformSpec {
        PlatformSpec::builder()
            .edges(vec![0.5, 0.1, 0.9])
            .cloud_pool(2)
            .build()
    }

    #[test]
    fn index_roundtrip() {
        let idx = ResourceIndex::new(&spec());
        assert_eq!(idx.count(), 3 * 3 + 3 * 2);
        for i in 0..idx.count() {
            let r = idx.resource(i);
            assert_eq!(idx.index(r), i, "roundtrip failed for {r}");
        }
    }

    #[test]
    fn all_resources_unique() {
        let idx = ResourceIndex::new(&spec());
        let all: Vec<_> = idx.all().collect();
        assert_eq!(all.len(), idx.count());
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len());
    }

    #[test]
    fn map_indexing() {
        let s = spec();
        let mut m = ResourceMap::new(&s, 0u32);
        m[ResourceId::EdgeCpu(EdgeId(1))] = 7;
        m[ResourceId::CloudOut(CloudId(1))] = 9;
        assert_eq!(m[ResourceId::EdgeCpu(EdgeId(1))], 7);
        assert_eq!(m[ResourceId::CloudOut(CloudId(1))], 9);
        assert_eq!(m[ResourceId::EdgeCpu(EdgeId(0))], 0);
        m.fill(1);
        assert!(m.iter().all(|(_, &v)| v == 1));
    }

    #[test]
    fn pair_iteration() {
        let p = ResourcePair::pair(
            ResourceId::EdgeOut(EdgeId(0)),
            ResourceId::CloudIn(CloudId(0)),
        );
        assert_eq!(p.iter().count(), 2);
        let s = ResourcePair::single(ResourceId::EdgeCpu(EdgeId(0)));
        assert_eq!(s.iter().count(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(ResourceId::EdgeOut(EdgeId(2)).to_string(), "out(e2)");
        assert_eq!(ResourceId::CloudCpu(CloudId(1)).to_string(), "cpu(c1)");
    }
}
