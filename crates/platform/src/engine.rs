//! Event-driven simulation engine.
//!
//! The engine realizes the execution model of §III and the event-based
//! decision structure of §V: decisions are (re)taken only when an event
//! occurs — a job release, an uplink/downlink completion, or an execution
//! completion (plus, for the §VII extension, a cloud availability-window
//! boundary). At each event the scheduler returns a *prioritized directive
//! list* `(job → target)`; the engine walks it in order and activates each
//! job's current phase iff every resource it needs is free. Between two
//! events the assignment of activities to resources is constant.
//!
//! Semantics enforced here:
//! * **preemption** — a job that is not granted resources at an event
//!   simply pauses (progress kept) and may resume later;
//! * **no migration, re-execution allowed** — when a directive changes a
//!   job's committed target, all progress is wiped and the abandoned
//!   activity is recorded (it occupied resources but is lost);
//! * **one-port full-duplex** — communications claim the sender and
//!   receiver ports exclusively (unless the macro-dataflow ablation
//!   `infinite_ports` is enabled).

use crate::activity::{Directive, Phase, Target};
use crate::instance::Instance;
use crate::job::JobId;
use crate::resource::{ResourceId, ResourceMap, ResourcePair};
use crate::schedule::{Schedule, TraceBuilder};
use crate::state::{JobState, SimView};
use mmsec_obs::{Event as ObsEvent, Observer, ObserverHandle, PhaseKind, Unit};
use mmsec_sim::{EventQueue, Interval, Time};
use std::fmt;
use std::time::{Duration, Instant};

/// An online scheduling policy (the object of study of paper §V).
pub trait OnlineScheduler {
    /// Human-readable policy name (used in reports).
    fn name(&self) -> String;

    /// Called once before the simulation starts.
    fn on_start(&mut self, _instance: &Instance) {}

    /// Called at every event. Returns the prioritized directive list; jobs
    /// omitted from the list stay paused (keeping progress), jobs whose
    /// target changed are re-executed from scratch.
    fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive>;

    /// Offers the policy an observer for its internal events (e.g. SSF-EDF
    /// reports its stretch binary-search probes). The default keeps none;
    /// policies that emit must store the handle. Called by the run wiring
    /// (not the engine) before the simulation starts.
    fn attach_observer(&mut self, _observer: ObserverHandle) {}
}

/// Engine knobs. Defaults reproduce the paper's model exactly; the other
/// settings drive the ablation experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineOptions {
    /// Disable the one-port model: communications do not contend for ports
    /// (the "macro-dataflow" model the paper argues against in §II).
    pub infinite_ports: bool,
    /// Allow pausing a started activity (paper: true).
    pub allow_preemption: bool,
    /// Allow restarting a job from scratch on another resource (paper: true).
    pub allow_reexecution: bool,
    /// Hard cap on decision events (guards against livelocking policies).
    /// `None` picks `1000 + 64·n` automatically.
    pub max_events: Option<u64>,
    /// Record a per-event log (time, pending count, activations) in
    /// [`RunOutcome::event_log`] — for debugging and the CLI's `--trace`.
    pub record_events: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            infinite_ports: false,
            allow_preemption: true,
            allow_reexecution: true,
            max_events: None,
            record_events: false,
        }
    }
}

/// One entry of the optional event log.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Virtual time of the decision.
    pub time: Time,
    /// Number of released, unfinished jobs at the decision.
    pub pending: usize,
    /// Activities granted until the next event.
    pub activations: Vec<(JobId, Phase, Target)>,
}

/// Failure modes of a simulation run.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// No activity and no future event, yet jobs are unfinished: the
    /// scheduler stopped scheduling them.
    Stalled {
        /// Virtual time of the stall.
        time: Time,
        /// Jobs that can never finish.
        pending: Vec<JobId>,
    },
    /// The event cap was exceeded (scheduler livelock).
    EventLimit {
        /// The cap that was hit.
        limit: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stalled { time, pending } => write!(
                f,
                "simulation stalled at t={time}: {} job(s) unscheduled",
                pending.len()
            ),
            EngineError::EventLimit { limit } => {
                write!(f, "event limit {limit} exceeded (livelocked scheduler?)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Run statistics, including the scheduling-time measurements of §VI-B.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Number of decision events.
    pub events: u64,
    /// Total wall-clock time spent inside `scheduler.decide`.
    pub decide_time: Duration,
    /// Total wall-clock time of the simulation.
    pub total_time: Duration,
    /// Total number of job re-executions.
    pub restarts: u64,
}

/// A successful simulation run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// The produced schedule.
    pub schedule: Schedule,
    /// Statistics.
    pub stats: RunStats,
    /// Per-event log, present iff `EngineOptions::record_events`.
    pub event_log: Option<Vec<EventRecord>>,
}

/// An activity granted resources until the next event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Activation {
    /// The job being advanced.
    pub job: JobId,
    /// Its committed target.
    pub target: Target,
    /// The phase being run.
    pub phase: Phase,
    /// Progress rate (volume units per second).
    pub rate: f64,
    /// Resources held.
    pub resources: ResourcePair,
}

/// Remaining volume (time units for communications, work units for
/// computations) of `phase` for a job in state `st`.
pub fn remaining_volume(st: &JobState, job: &crate::job::Job, phase: Phase) -> f64 {
    match phase {
        Phase::Uplink => st.remaining_up(job),
        Phase::Compute => st.remaining_work(job),
        Phase::Downlink => st.remaining_dn(job),
    }
}

/// Greedy list allocation shared by the engine and by schedulers that want
/// to predict it: walk `directives` in priority order and activate each
/// job's current phase iff its resources are unblocked. Claimed resources
/// are marked in `blocked`.
pub fn greedy_allocate(
    view: &SimView<'_>,
    directives: &[Directive],
    blocked: &mut ResourceMap<bool>,
    skip: &[bool],
    infinite_ports: bool,
) -> Vec<Activation> {
    let spec = view.spec();
    let mut out = Vec::new();
    for d in directives {
        let st = &view.jobs[d.job.0];
        if skip.get(d.job.0).copied().unwrap_or(false) || !st.active() {
            continue;
        }
        debug_assert_eq!(
            st.committed,
            Some(d.target),
            "allocation must follow commitment"
        );
        let job = view.instance.job(d.job);
        let Some(phase) = st.current_phase(job, d.target) else {
            continue;
        };
        let resources = phase.resources(job, d.target);
        let needs_exclusive = |r: ResourceId| -> bool {
            !infinite_ports || matches!(r, ResourceId::EdgeCpu(_) | ResourceId::CloudCpu(_))
        };
        if resources.iter().any(|r| needs_exclusive(r) && blocked[r]) {
            continue;
        }
        for r in resources.iter() {
            if needs_exclusive(r) {
                blocked[r] = true;
            }
        }
        out.push(Activation {
            job: d.job,
            target: d.target,
            phase,
            rate: phase.rate(job, d.target, spec),
            resources,
        });
    }
    out
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EngineEvent {
    Release(JobId),
    /// Cloud availability-window boundary: a pure decision point.
    Boundary,
}

const RANK_BOUNDARY: u8 = 0;
const RANK_RELEASE: u8 = 1;

/// Simulates `instance` under `scheduler` with the paper's default model.
pub fn simulate(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<RunOutcome, EngineError> {
    simulate_with(instance, scheduler, EngineOptions::default())
}

/// Simulates `instance` under `scheduler` with explicit engine options.
pub fn simulate_with(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
) -> Result<RunOutcome, EngineError> {
    simulate_impl(instance, scheduler, opts, None)
}

/// Simulates `instance` while streaming typed [`ObsEvent`]s to `observer`.
///
/// The observer sees the full engine-side taxonomy (releases, decide
/// start/end with wall-clock latency, placed intervals, restarts,
/// completions, run start/end). Policy-internal events (binary-search
/// probes) additionally require handing the policy a clone of the same
/// observer via [`OnlineScheduler::attach_observer`] *before* calling
/// this — typically through [`mmsec_obs::Shared`].
pub fn simulate_observed(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
    observer: &mut dyn Observer,
) -> Result<RunOutcome, EngineError> {
    simulate_impl(instance, scheduler, opts, Some(observer))
}

/// Resource a `phase` of a job occupies, in observer terms: communications
/// are attributed to the origin edge's ports, computations to the unit
/// that executes them.
fn obs_unit(origin: crate::spec::EdgeId, target: Target, phase: Phase) -> Unit {
    match (phase, target) {
        (Phase::Compute, Target::Cloud(k)) => Unit::Cloud(k.0),
        (Phase::Compute, Target::Edge) => Unit::Edge(origin.0),
        (Phase::Uplink | Phase::Downlink, _) => Unit::Edge(origin.0),
    }
}

fn obs_phase(phase: Phase) -> PhaseKind {
    match phase {
        Phase::Uplink => PhaseKind::Uplink,
        Phase::Compute => PhaseKind::Compute,
        Phase::Downlink => PhaseKind::Downlink,
    }
}

fn simulate_impl(
    instance: &Instance,
    scheduler: &mut dyn OnlineScheduler,
    opts: EngineOptions,
    mut observer: Option<&mut dyn Observer>,
) -> Result<RunOutcome, EngineError> {
    // Evaluates the event expression only when an observer is attached:
    // an unobserved run pays one branch per emission point and nothing
    // else (no allocation, no formatting).
    macro_rules! emit {
        ($ev:expr) => {
            if let Some(o) = observer.as_deref_mut() {
                o.on_event(&$ev);
            }
        };
    }
    let started = Instant::now();
    let spec = &instance.spec;
    assert!(
        !spec.has_unavailability() || opts.allow_preemption,
        "cloud availability windows require preemption"
    );
    let n = instance.num_jobs();
    let limit = opts
        .max_events
        .unwrap_or(1000 + 64 * n as u64 + 8 * total_windows(instance) as u64);

    let mut jobs = vec![JobState::default(); n];
    let mut queue: EventQueue<EngineEvent> = EventQueue::new();
    for (id, job) in instance.iter_jobs() {
        queue.push(job.release, RANK_RELEASE, EngineEvent::Release(id));
    }
    for k in spec.clouds() {
        for w in spec.cloud_unavailability(k).iter() {
            queue.push(w.start(), RANK_BOUNDARY, EngineEvent::Boundary);
            queue.push(w.end(), RANK_BOUNDARY, EngineEvent::Boundary);
        }
    }

    let mut trace = TraceBuilder::new(n);
    let mut stats = RunStats::default();
    let mut event_log: Option<Vec<EventRecord>> = opts.record_events.then(Vec::new);
    let mut now = queue.peek_time().unwrap_or(Time::ZERO);
    scheduler.on_start(instance);
    emit!(ObsEvent::RunStart {
        policy: scheduler.name(),
        jobs: n,
        edges: spec.num_edge(),
        clouds: spec.num_cloud(),
    });

    loop {
        // 1. Fire all events at (approximately) the current instant.
        while let Some(t) = queue.peek_time() {
            if t.approx_le(now) {
                let (_, ev) = queue.pop().expect("peeked");
                if let EngineEvent::Release(id) = ev {
                    jobs[id.0].released = true;
                    emit!(ObsEvent::JobReleased { t: now, job: id.0 });
                }
            } else {
                break;
            }
        }

        if jobs.iter().all(|s| s.finished) {
            break;
        }

        stats.events += 1;
        if stats.events > limit {
            return Err(EngineError::EventLimit { limit });
        }

        // 2. Ask the policy for directives.
        let directives = {
            let view = SimView {
                instance,
                now,
                jobs: &jobs,
            };
            emit!(ObsEvent::DecideStart {
                t: now,
                pending: view.num_pending(),
            });
            let t0 = Instant::now();
            let raw = scheduler.decide(&view);
            let wall = t0.elapsed();
            stats.decide_time += wall;
            let clean = sanitize(raw, &jobs);
            emit!(ObsEvent::DecideEnd {
                t: now,
                wall,
                directives: clean.len(),
            });
            clean
        };

        // 3. Apply commitments / re-executions.
        let mut directives = directives;
        for d in &mut directives {
            let st = &mut jobs[d.job.0];
            match st.committed {
                None => st.committed = Some(d.target),
                Some(t) if t == d.target => {}
                Some(t) => {
                    let has_progress = st.up_done + st.work_done + st.dn_done > 0.0;
                    let pinned = !opts.allow_preemption && st.running.is_some();
                    if !has_progress && !pinned {
                        // Nothing executed yet: re-commitment is free.
                        st.committed = Some(d.target);
                    } else if opts.allow_reexecution && !pinned {
                        st.reset_progress();
                        stats.restarts += 1;
                        trace.abandon(d.job);
                        emit!(ObsEvent::Restarted {
                            t: now,
                            job: d.job.0,
                            from: obs_unit(instance.job(d.job).origin, t, Phase::Compute),
                            to: obs_unit(instance.job(d.job).origin, d.target, Phase::Compute),
                        });
                        st.committed = Some(d.target);
                    } else {
                        // Retarget refused: keep the old commitment.
                        d.target = t;
                    }
                }
            }
        }

        // 4. Block resources: unavailability windows, then pinned
        //    (non-preemptable) running activities.
        let mut blocked = ResourceMap::new(spec, false);
        for k in spec.clouds() {
            if spec.cloud_unavailability(k).iter().any(|w| w.contains(now)) {
                blocked[ResourceId::CloudCpu(k)] = true;
            }
        }
        let mut skip = vec![false; n];
        let mut activations: Vec<Activation> = Vec::new();
        if !opts.allow_preemption {
            for (i, st) in jobs.iter().enumerate() {
                let (Some(phase), Some(target)) = (st.running, st.committed) else {
                    continue;
                };
                if st.finished {
                    continue;
                }
                let job = instance.job(JobId(i));
                // Still the same phase? (A completed phase unpins the job.)
                if st.current_phase(job, target) != Some(phase) {
                    continue;
                }
                let resources = phase.resources(job, target);
                for r in resources.iter() {
                    blocked[r] = true;
                }
                skip[i] = true;
                activations.push(Activation {
                    job: JobId(i),
                    target,
                    phase,
                    rate: phase.rate(job, target, spec),
                    resources,
                });
            }
        }

        {
            let view = SimView {
                instance,
                now,
                jobs: &jobs,
            };
            activations.extend(greedy_allocate(
                &view,
                &directives,
                &mut blocked,
                &skip,
                opts.infinite_ports,
            ));
        }

        for st in jobs.iter_mut() {
            st.running = None;
        }
        for act in &activations {
            jobs[act.job.0].running = Some(act.phase);
        }

        if let Some(log) = event_log.as_mut() {
            log.push(EventRecord {
                time: now,
                pending: jobs.iter().filter(|s| s.active()).count(),
                activations: activations
                    .iter()
                    .map(|a| (a.job, a.phase, a.target))
                    .collect(),
            });
        }

        // 5. Find the next event horizon.
        let mut t_next = queue.peek_time();
        for act in &activations {
            let st = &jobs[act.job.0];
            let job = instance.job(act.job);
            let rem = remaining_volume(st, job, act.phase) / act.rate;
            let fin = now + Time::new(rem);
            t_next = Some(t_next.map_or(fin, |t| t.min(fin)));
        }
        let Some(t_next) = t_next else {
            let pending = jobs
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.finished)
                .map(|(i, _)| JobId(i))
                .collect();
            return Err(EngineError::Stalled { time: now, pending });
        };

        // 6. Advance time, accrue progress, record the trace.
        let t_next = t_next.max(now);
        let dt = (t_next - now).seconds();
        if dt > 0.0 {
            for act in &activations {
                let st = &mut jobs[act.job.0];
                let amount = act.rate * dt;
                match act.phase {
                    Phase::Uplink => st.up_done += amount,
                    Phase::Compute => st.work_done += amount,
                    Phase::Downlink => st.dn_done += amount,
                }
                trace.record(act.job, act.phase, act.target, Interval::new(now, t_next));
                emit!(ObsEvent::Placed {
                    job: act.job.0,
                    origin: instance.job(act.job).origin.0,
                    target: obs_unit(instance.job(act.job).origin, act.target, act.phase),
                    phase: obs_phase(act.phase),
                    interval: Interval::new(now, t_next),
                    volume: if act.phase == Phase::Compute {
                        0.0
                    } else {
                        amount
                    },
                });
            }
        }
        now = t_next;

        // 7. Job completions (phase transitions become visible to the next
        //    decision automatically).
        for act in &activations {
            let st = &mut jobs[act.job.0];
            if st.finished {
                continue;
            }
            let job = instance.job(act.job);
            if st.current_phase(job, act.target).is_none() {
                st.finished = true;
                st.completion = Some(now);
                st.running = None;
                trace.complete(act.job, now);
                emit!(ObsEvent::Completed {
                    t: now,
                    job: act.job.0,
                    response: (now - job.release).seconds(),
                });
            }
        }
    }

    emit!(ObsEvent::RunEnd { makespan: now });
    stats.total_time = started.elapsed();
    Ok(RunOutcome {
        schedule: trace.finish(),
        stats,
        event_log,
    })
}

/// Keeps the first directive per job; drops unreleased/finished jobs.
fn sanitize(directives: Vec<Directive>, jobs: &[JobState]) -> Vec<Directive> {
    let mut seen = vec![false; jobs.len()];
    directives
        .into_iter()
        .filter(|d| {
            let ok = d.job.0 < jobs.len() && jobs[d.job.0].active() && !seen[d.job.0];
            if ok {
                seen[d.job.0] = true;
            }
            ok
        })
        .collect()
}

fn total_windows(instance: &Instance) -> usize {
    instance
        .spec
        .clouds()
        .map(|k| instance.spec.cloud_unavailability(k).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::figure1_instance;
    use crate::job::Job;
    use crate::spec::{CloudId, EdgeId, PlatformSpec};

    /// Sends every job to the cloud processor 0, FIFO priority.
    struct AllCloudFifo;
    impl OnlineScheduler for AllCloudFifo {
        fn name(&self) -> String {
            "all-cloud-fifo".into()
        }
        fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
            view.pending_jobs()
                .map(|j| Directive::new(j, Target::Cloud(CloudId(0))))
                .collect()
        }
    }

    /// Runs every job locally, FIFO priority.
    struct AllEdgeFifo;
    impl OnlineScheduler for AllEdgeFifo {
        fn name(&self) -> String {
            "all-edge-fifo".into()
        }
        fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
            view.pending_jobs()
                .map(|j| Directive::new(j, Target::Edge))
                .collect()
        }
    }

    /// Never schedules anything.
    struct DoNothing;
    impl OnlineScheduler for DoNothing {
        fn name(&self) -> String {
            "do-nothing".into()
        }
        fn decide(&mut self, _view: &SimView<'_>) -> Vec<Directive> {
            Vec::new()
        }
    }

    fn single_job_instance(work: f64, up: f64, dn: f64) -> Instance {
        let spec = PlatformSpec::homogeneous_cloud(vec![0.5], 1);
        Instance::new(spec, vec![Job::new(EdgeId(0), 0.0, work, up, dn)]).unwrap()
    }

    #[test]
    fn single_cloud_job_timing() {
        let inst = single_job_instance(3.0, 1.0, 2.0);
        let out = simulate(&inst, &mut AllCloudFifo).unwrap();
        // up 1 + work 3 + dn 2 = 6.
        assert_eq!(out.schedule.completion[0], Some(Time::new(6.0)));
        assert_eq!(out.schedule.alloc[0], Some(Target::Cloud(CloudId(0))));
        assert_eq!(out.schedule.up[0].total_length(), Time::new(1.0));
        assert_eq!(out.schedule.exec[0].total_length(), Time::new(3.0));
        assert_eq!(out.schedule.dn[0].total_length(), Time::new(2.0));
        assert!(out.stats.events <= 8);
    }

    #[test]
    fn single_edge_job_timing() {
        let inst = single_job_instance(3.0, 1.0, 2.0);
        let out = simulate(&inst, &mut AllEdgeFifo).unwrap();
        // 3 work at speed 0.5 → 6 seconds.
        assert_eq!(out.schedule.completion[0], Some(Time::new(6.0)));
        assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
        assert!(out.schedule.up[0].is_empty());
    }

    #[test]
    fn zero_comm_job_skips_phases() {
        let inst = single_job_instance(4.0, 0.0, 0.0);
        let out = simulate(&inst, &mut AllCloudFifo).unwrap();
        assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
        assert!(out.schedule.up[0].is_empty());
        assert!(out.schedule.dn[0].is_empty());
    }

    #[test]
    fn release_dates_are_respected() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
        let jobs = vec![Job::new(EdgeId(0), 5.0, 2.0, 0.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = simulate(&inst, &mut AllEdgeFifo).unwrap();
        assert_eq!(out.schedule.exec[0].min_start(), Some(Time::new(5.0)));
        assert_eq!(out.schedule.completion[0], Some(Time::new(7.0)));
    }

    #[test]
    fn cloud_serializes_two_jobs() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
            Job::new(EdgeId(0), 0.0, 2.0, 1.0, 1.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = simulate(&inst, &mut AllCloudFifo).unwrap();
        // J1: up [0,1), exec [1,3), dn [3,4). J2's uplink must wait for the
        // edge send port: up [1,2), exec [3,5), dn [5,6).
        assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
        assert_eq!(out.schedule.completion[1], Some(Time::new(6.0)));
        assert_eq!(out.schedule.up[1].min_start(), Some(Time::new(1.0)));
    }

    #[test]
    fn stalled_scheduler_reports_error() {
        let inst = single_job_instance(1.0, 0.0, 0.0);
        let err = simulate(&inst, &mut DoNothing).unwrap_err();
        assert!(matches!(err, EngineError::Stalled { pending, .. } if pending.len() == 1));
    }

    #[test]
    fn infinite_ports_allow_parallel_uplinks() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 2);
        // Two jobs from the same edge, each to a different cloud processor.
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 1.0, 2.0, 0.0),
            Job::new(EdgeId(0), 0.0, 1.0, 2.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();

        struct SpreadCloud;
        impl OnlineScheduler for SpreadCloud {
            fn name(&self) -> String {
                "spread".into()
            }
            fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
                view.pending_jobs()
                    .map(|j| Directive::new(j, Target::Cloud(CloudId(j.0 % 2))))
                    .collect()
            }
        }

        // One-port: second uplink waits → completions 3 and 5.
        let strict = simulate(&inst, &mut SpreadCloud).unwrap();
        assert_eq!(strict.schedule.completion[0], Some(Time::new(3.0)));
        assert_eq!(strict.schedule.completion[1], Some(Time::new(5.0)));

        // Macro-dataflow ablation: both uplinks in parallel → both at 3.
        let loose = simulate_with(
            &inst,
            &mut SpreadCloud,
            EngineOptions {
                infinite_ports: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(loose.schedule.completion[0], Some(Time::new(3.0)));
        assert_eq!(loose.schedule.completion[1], Some(Time::new(3.0)));
    }

    #[test]
    fn reexecution_wipes_progress() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
        let jobs = vec![Job::new(EdgeId(0), 0.0, 4.0, 1.0, 1.0)];
        let inst = Instance::new(spec, jobs).unwrap();

        /// Starts the job on the edge, then retargets it to the cloud at
        /// the second decision (after 4 work-seconds would be too late, so
        /// we force an artificial event via a second job's release).
        struct Flip {
            calls: u32,
        }
        impl OnlineScheduler for Flip {
            fn name(&self) -> String {
                "flip".into()
            }
            fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
                self.calls += 1;
                let tgt = if self.calls == 1 {
                    Target::Edge
                } else {
                    Target::Cloud(CloudId(0))
                };
                view.pending_jobs()
                    .map(|j| Directive::new(j, tgt))
                    .collect()
            }
        }

        // Add a decoy job released at t=2 to create a mid-flight event.
        let mut jobs2 = inst.jobs.clone();
        jobs2.push(Job::new(EdgeId(0), 2.0, 0.5, 10.0, 10.0));
        let inst2 = Instance::new(inst.spec.clone(), jobs2).unwrap();
        let out = simulate(&inst2, &mut Flip { calls: 0 }).unwrap();
        // J1 runs on edge [0,2) (2 of 4 work done), then restarts on the
        // cloud at t=2: up [2,3), exec [3,7), dn [7,8).
        assert_eq!(out.schedule.completion[0], Some(Time::new(8.0)));
        assert_eq!(out.schedule.restarts[0], 1);
        assert_eq!(out.schedule.wasted_time(), Time::new(2.0));
        assert_eq!(out.stats.restarts, 1);
        assert_eq!(out.schedule.alloc[0], Some(Target::Cloud(CloudId(0))));
    }

    #[test]
    fn reexecution_can_be_disabled() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1);
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 4.0, 1.0, 1.0),
            Job::new(EdgeId(0), 2.0, 0.5, 10.0, 10.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();

        struct Flip {
            calls: u32,
        }
        impl OnlineScheduler for Flip {
            fn name(&self) -> String {
                "flip".into()
            }
            fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
                self.calls += 1;
                let tgt = if self.calls == 1 {
                    Target::Edge
                } else {
                    Target::Cloud(CloudId(0))
                };
                view.pending_jobs()
                    .map(|j| Directive::new(j, tgt))
                    .collect()
            }
        }

        let out = simulate_with(
            &inst,
            &mut Flip { calls: 0 },
            EngineOptions {
                allow_reexecution: false,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        // The retarget is refused: J1 stays on the edge, finishing at 4.
        assert_eq!(out.schedule.completion[0], Some(Time::new(4.0)));
        assert_eq!(out.schedule.restarts[0], 0);
        assert_eq!(out.schedule.alloc[0], Some(Target::Edge));
    }

    #[test]
    fn non_preemptive_mode_pins_activities() {
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 0);
        // Long job first, short job released mid-flight. LIFO priority
        // would preempt; non-preemptive mode must refuse.
        let jobs = vec![
            Job::new(EdgeId(0), 0.0, 10.0, 0.0, 0.0),
            Job::new(EdgeId(0), 1.0, 1.0, 0.0, 0.0),
        ];
        let inst = Instance::new(spec, jobs).unwrap();

        struct Lifo;
        impl OnlineScheduler for Lifo {
            fn name(&self) -> String {
                "lifo".into()
            }
            fn decide(&mut self, view: &SimView<'_>) -> Vec<Directive> {
                let mut v: Vec<_> = view
                    .pending_jobs()
                    .map(|j| Directive::new(j, Target::Edge))
                    .collect();
                v.reverse();
                v
            }
        }

        let preemptive = simulate(&inst, &mut Lifo).unwrap();
        assert_eq!(preemptive.schedule.completion[1], Some(Time::new(2.0)));
        assert_eq!(preemptive.schedule.completion[0], Some(Time::new(11.0)));

        let nonpre = simulate_with(
            &inst,
            &mut Lifo,
            EngineOptions {
                allow_preemption: false,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(nonpre.schedule.completion[0], Some(Time::new(10.0)));
        assert_eq!(nonpre.schedule.completion[1], Some(Time::new(11.0)));
    }

    #[test]
    fn unavailability_window_pauses_cloud_compute() {
        use mmsec_sim::Interval;
        let spec = PlatformSpec::homogeneous_cloud(vec![1.0], 1)
            .with_cloud_unavailability(CloudId(0), &[Interval::from_secs(2.0, 5.0)]);
        let jobs = vec![Job::new(EdgeId(0), 0.0, 4.0, 1.0, 0.0)];
        let inst = Instance::new(spec, jobs).unwrap();
        let out = simulate(&inst, &mut AllCloudFifo).unwrap();
        // up [0,1), exec [1,2) then paused during [2,5), exec [5,8).
        assert_eq!(out.schedule.completion[0], Some(Time::new(8.0)));
        assert_eq!(out.schedule.exec[0].total_length(), Time::new(4.0));
        assert_eq!(out.schedule.exec[0].len(), 2);
    }

    #[test]
    fn figure1_runs_under_fifo_policies() {
        let inst = figure1_instance();
        let out = simulate(&inst, &mut AllEdgeFifo).unwrap();
        assert!(out.schedule.all_finished());
        let out = simulate(&inst, &mut AllCloudFifo).unwrap();
        assert!(out.schedule.all_finished());
    }

    #[test]
    fn event_log_records_decisions() {
        let inst = single_job_instance(3.0, 1.0, 2.0);
        let out = simulate_with(
            &inst,
            &mut AllCloudFifo,
            EngineOptions {
                record_events: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let log = out.event_log.expect("log recorded");
        assert!(!log.is_empty());
        // First decision at t = 0 activates the uplink.
        assert_eq!(log[0].time, Time::ZERO);
        assert_eq!(log[0].pending, 1);
        assert_eq!(
            log[0].activations,
            vec![(JobId(0), Phase::Uplink, Target::Cloud(CloudId(0)))]
        );
        // Times are non-decreasing; phases progress up → exec → down.
        for w in log.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Without the option, no log is produced.
        let out = simulate(&inst, &mut AllCloudFifo).unwrap();
        assert!(out.event_log.is_none());
    }

    #[test]
    fn observed_run_emits_a_well_formed_event_stream() {
        struct Capture(Vec<String>, usize, usize);
        impl Observer for Capture {
            fn on_event(&mut self, event: &ObsEvent) {
                self.0.push(event.tag().to_string());
                match event {
                    ObsEvent::Placed { interval, .. } => {
                        assert!(interval.length() > Time::ZERO);
                        self.1 += 1;
                    }
                    ObsEvent::Completed { response, .. } => {
                        assert!(*response > 0.0);
                        self.2 += 1;
                    }
                    _ => {}
                }
            }
        }
        let inst = figure1_instance();
        let mut cap = Capture(Vec::new(), 0, 0);
        let out = simulate_observed(&inst, &mut AllCloudFifo, EngineOptions::default(), &mut cap)
            .unwrap();
        let Capture(tags, placed, completed) = cap;
        assert_eq!(tags.first().map(String::as_str), Some("run-start"));
        assert_eq!(tags.last().map(String::as_str), Some("run-end"));
        assert_eq!(tags.iter().filter(|t| *t == "job-released").count(), 6);
        assert_eq!(completed, 6);
        // Each cloud job contributes at least uplink + compute + downlink.
        assert!(placed >= 3 * 6, "only {placed} placements observed");
        // Every decide-start is eventually closed by a decide-end.
        assert_eq!(
            tags.iter().filter(|t| *t == "decide-start").count(),
            tags.iter().filter(|t| *t == "decide-end").count()
        );
        // The observed run produces the same schedule as the plain one.
        let plain = simulate(&inst, &mut AllCloudFifo).unwrap();
        assert_eq!(out.schedule, plain.schedule);
    }

    #[test]
    fn event_limit_guards_against_livelock() {
        let inst = single_job_instance(1e9, 0.0, 0.0);
        let err = simulate_with(
            &inst,
            &mut AllEdgeFifo,
            EngineOptions {
                max_events: Some(0),
                ..EngineOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, EngineError::EventLimit { limit: 0 });
    }
}
